//! Quickstart: parse a litmus program, enumerate all outcomes under the
//! operational model, and cross-check the axiomatic semantics.
//!
//! Run with `cargo run --example quickstart`.

use bdrst::axiomatic::{check_equivalence, EnumLimits};
use bdrst::lang::Program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Program::parse(
        "nonatomic data; atomic flag;
         thread writer { data = 42; flag = 1; }
         thread reader { r0 = flag; if (r0 == 1) { r1 = data; } }",
    )?;
    println!("program:\n{program}");

    let outcomes = program.outcomes(Default::default())?;
    println!("operational outcomes ({}):", outcomes.len());
    print!("{outcomes}");

    // flag observed ⇒ payload observed: local DRF in action.
    assert!(outcomes.all(|o| {
        o.reg_named("reader", "r0") != Some(1) || o.reg_named("reader", "r1") == Some(42)
    }));
    println!("\npublication works: flag = 1 implies data = 42");

    // Theorems 15/16, observably: the axiomatic semantics agrees exactly.
    let report = check_equivalence(&program, Default::default(), EnumLimits::default())?;
    assert!(report.holds());
    println!(
        "operational and axiomatic semantics agree on all {} outcomes",
        report.operational.len()
    );
    Ok(())
}
