//! Explore a litmus program from the command line (or run the built-in
//! corpus): prints all outcomes under the operational and axiomatic
//! semantics and flags any disagreement.
//!
//! Run with `cargo run --example litmus_explorer -- 'nonatomic a; thread P0 { a = 1; } thread P1 { r0 = a; }'`
//! or with no argument for the corpus summary.

use bdrst::axiomatic::{check_equivalence, EnumLimits};
use bdrst::lang::Program;
use bdrst::litmus::{all_tests, run_test, RunConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    match std::env::args().nth(1) {
        Some(src) => {
            let p = Program::parse(&src)?;
            println!("{p}");
            let outcomes = p.outcomes(Default::default())?;
            println!("operational outcomes ({}):", outcomes.len());
            print!("{outcomes}");
            let eq = check_equivalence(&p, Default::default(), EnumLimits::default())?;
            println!(
                "axiomatic agreement: {}",
                if eq.holds() {
                    "exact"
                } else {
                    "MISMATCH (bug!)"
                }
            );
        }
        None => {
            for t in all_tests() {
                let rep = run_test(t, RunConfig::default())?;
                println!(
                    "{:<10} {:<62} {}",
                    rep.name,
                    t.description,
                    if rep.passes() { "ok" } else { "MISMATCH" }
                );
            }
        }
    }
    Ok(())
}
