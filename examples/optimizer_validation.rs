//! §7.1 end to end: derive the classic optimisations from legal
//! reorderings + peepholes, reject the illegal one, and double-check a
//! pass by translation validation against the operational model.
//!
//! Run with `cargo run --example optimizer_validation`.

use bdrst::lang::Program;
use bdrst::opt::{attempt_redundant_store_elimination, cse_loads, validate_in_context};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // CSE: r1 = a*2; r2 = b; r3 = a*2 — legal (poRR may relax).
    let p = Program::parse(
        "nonatomic a b;
         thread P0 { r1 = a * 2; r2 = b; r3 = a * 2; }
         thread P1 { a = 1; b = 1; a = 2; }",
    )?;
    let subject = p.threads[0].body.clone();
    let optimised = cse_loads(&p.locs, &subject).expect("CSE derivation exists");
    println!("CSE derived via reorder (poRR) + Redundant Load");

    // Translation validation in the racy context of thread P1.
    let context = vec![p.threads[1].body.clone()];
    let report = validate_in_context(&p.locs, &subject, &optimised, &context, Default::default())?;
    assert!(report.refines());
    println!(
        "validated: {} transformed outcomes ⊆ {} original outcomes (racy context)",
        report.transformed.len(),
        report.original.len()
    );

    // Redundant store elimination: rejected on poRW, as §7.1 requires.
    let rse = Program::parse("nonatomic a b c; thread P0 { r1 = a; b = c; a = r1; }")?;
    let violation = attempt_redundant_store_elimination(&rse.locs, &rse.threads[0].body)
        .expect_err("must be rejected");
    println!("redundant store elimination rejected: {violation}");
    Ok(())
}
