//! The §5 reasoning patterns, executed: the three §2 examples verified
//! with the local-DRF machinery (outcome sets, L-stability, Theorem 13).
//!
//! Run with `cargo run --example local_drf_demo`.

use bdrst::core::explore::ExploreConfig;
use bdrst::core::localdrf::{check_local_drf, is_l_stable_for_prefix};
use bdrst::core::trace::LocPredicate;
use bdrst::lang::Program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 1 (§2.1): a data race on c may not corrupt b = a + 10.
    let ex1 = Program::parse(
        "nonatomic a b c;
         thread P0 { c = a + 10; b = a + 10; }
         thread P1 { c = 1; }",
    )?;
    let outcomes = ex1.outcomes(ExploreConfig::default())?;
    assert!(outcomes.all(|o| o.mem_named("b") == Some(10)));
    println!("Example 1: b = a + 10 holds in every outcome (races bounded in space)");

    // §5's rule of thumb: take L = the locations the fragment accesses.
    let l: LocPredicate = [
        ex1.locs.by_name("a").unwrap(),
        ex1.locs.by_name("b").unwrap(),
    ]
    .into_iter()
    .collect();
    // The initial state is L-stable (empty prefix: nothing races yet)…
    assert!(is_l_stable_for_prefix(
        &ex1.locs,
        &[],
        ex1.initial_machine(),
        &l,
        Default::default()
    )?);
    // …so Theorem 13 guarantees L-sequential behaviour:
    let stats = check_local_drf(&ex1.locs, ex1.initial_machine(), &l, Default::default())
        .map_err(|e| format!("{e}"))?;
    println!(
        "Theorem 13 verified for L = {{a, b}} over {} L-sequential prefixes",
        stats.visited
    );

    // Example 3 (§2.2): a *future* race cannot reach back in time.
    let ex3 = Program::parse(
        "nonatomic x g out;
         thread P0 { x = 42; out = x; g = 1; }
         thread P1 { r = g; if (r == 1) { x = 7; } }",
    )?;
    let outcomes = ex3.outcomes(ExploreConfig::default())?;
    assert!(outcomes.all(|o| o.mem_named("out") == Some(42)));
    println!("Example 3: the fragment reads 42 despite the future race on x");
    Ok(())
}
