//! Inspect the compilation schemes (Tables 1, 2a, 2b) and watch the
//! soundness checker separate the sound schemes from the naive one on the
//! load-buffering test (§7.3).
//!
//! Run with `cargo run --example compile_inspect`.

use bdrst::hw::{check_compilation, x86_sequence, AccessKind, Target, BAL, FBS, NAIVE};
use bdrst::lang::Program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("x86 (Table 1):");
    for kind in AccessKind::ALL {
        let seq: Vec<String> = x86_sequence(kind).iter().map(|i| i.to_string()).collect();
        println!("  {kind:<16} {}", seq.join("; "));
    }
    println!("ARMv8 BAL (Table 2a):");
    for kind in AccessKind::ALL {
        let seq: Vec<String> = BAL.sequence(kind).iter().map(|i| i.to_string()).collect();
        println!("  {kind:<16} {}", seq.join("; "));
    }

    let lb = Program::parse(
        "nonatomic a b;
         thread P0 { r0 = a; b = 1; }
         thread P1 { r1 = b; a = 1; }",
    )?;
    for (name, t) in [
        ("x86", Target::X86),
        ("ARM BAL", Target::Arm(BAL)),
        ("ARM FBS", Target::Arm(FBS)),
        ("ARM naive", Target::Arm(NAIVE)),
    ] {
        let verdict = check_compilation(&lb, t, Default::default())?;
        println!(
            "LB under {name:<10}: {}",
            if verdict.is_sound() {
                "sound"
            } else {
                "UNSOUND (admits load buffering)"
            }
        );
    }
    Ok(())
}
