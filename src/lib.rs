//! # bdrst — Bounding Data Races in Space and Time, in Rust
//!
//! A full reproduction of Dolan, Sivaramakrishnan and Madhavapeddy's
//! PLDI 2018 paper (the memory model adopted by multicore OCaml), as a
//! workspace of executable semantics:
//!
//! * [`core`] — the operational model: histories, frontiers, dense
//!   rational timestamps, weak transitions, happens-before, data races,
//!   exhaustive exploration, and the local/global DRF theorem checkers;
//! * [`lang`] — the litmus language (parser, small-step semantics);
//! * [`axiomatic`] — candidate/consistent executions, `|Σ|`, and the
//!   operational↔axiomatic equivalence checkers (Theorems 15–18);
//! * [`hw`] — x86-TSO and ARMv8 hardware models, the compilation schemes
//!   of Tables 1/2, and empirical soundness checking (Theorems 19/20);
//! * [`opt`] — §7.1's optimisation legality: reorderings, peepholes,
//!   derived passes, and translation validation;
//! * [`litmus`] — the test corpus and multi-model runner;
//! * [`race`] — dynamic race detection: vector-clock happens-before over
//!   live and recorded traces, space/time-bounded witnesses, and a
//!   ddmin witness shrinker;
//! * [`sim`] — the §8 performance evaluation on simulated AArch64/POWER
//!   cores (Figures 5a/5b/5c).
//!
//! ## Quickstart
//!
//! ```
//! use bdrst::lang::Program;
//!
//! // Message passing: an atomic flag publishes a nonatomic payload.
//! let p = Program::parse(
//!     "nonatomic data; atomic flag;
//!      thread writer { data = 42; flag = 1; }
//!      thread reader { r0 = flag; if (r0 == 1) { r1 = data; } }",
//! )?;
//! let outcomes = p.outcomes(Default::default())?;
//! // Local DRF at work: the reader never sees a torn payload.
//! assert!(outcomes.all(|o| {
//!     o.reg_named("reader", "r0") != Some(1) || o.reg_named("reader", "r1") == Some(42)
//! }));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use bdrst_axiomatic as axiomatic;
pub use bdrst_core as core;
pub use bdrst_hw as hw;
pub use bdrst_lang as lang;
pub use bdrst_litmus as litmus;
pub use bdrst_opt as opt;
pub use bdrst_race as race;
pub use bdrst_sim as sim;
