/root/repo/target/release/examples/__verify_engine-4fb2b96b801247f7.d: examples/__verify_engine.rs

/root/repo/target/release/examples/__verify_engine-4fb2b96b801247f7: examples/__verify_engine.rs

examples/__verify_engine.rs:
