/root/repo/target/release/examples/litmus_explorer-cbcd06b2d6add467.d: examples/litmus_explorer.rs

/root/repo/target/release/examples/litmus_explorer-cbcd06b2d6add467: examples/litmus_explorer.rs

examples/litmus_explorer.rs:
