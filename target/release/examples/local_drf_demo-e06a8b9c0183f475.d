/root/repo/target/release/examples/local_drf_demo-e06a8b9c0183f475.d: examples/local_drf_demo.rs

/root/repo/target/release/examples/local_drf_demo-e06a8b9c0183f475: examples/local_drf_demo.rs

examples/local_drf_demo.rs:
