/root/repo/target/release/deps/opts-c3d7115763c701dd.d: crates/bench/src/bin/opts.rs

/root/repo/target/release/deps/opts-c3d7115763c701dd: crates/bench/src/bin/opts.rs

crates/bench/src/bin/opts.rs:
