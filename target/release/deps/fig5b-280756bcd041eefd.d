/root/repo/target/release/deps/fig5b-280756bcd041eefd.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/release/deps/fig5b-280756bcd041eefd: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:
