/root/repo/target/release/deps/bdrst_axiomatic-a58954e06ba9177f.d: crates/axiomatic/src/lib.rs crates/axiomatic/src/enumerate.rs crates/axiomatic/src/equiv.rs crates/axiomatic/src/event.rs crates/axiomatic/src/exec.rs crates/axiomatic/src/generate.rs

/root/repo/target/release/deps/libbdrst_axiomatic-a58954e06ba9177f.rlib: crates/axiomatic/src/lib.rs crates/axiomatic/src/enumerate.rs crates/axiomatic/src/equiv.rs crates/axiomatic/src/event.rs crates/axiomatic/src/exec.rs crates/axiomatic/src/generate.rs

/root/repo/target/release/deps/libbdrst_axiomatic-a58954e06ba9177f.rmeta: crates/axiomatic/src/lib.rs crates/axiomatic/src/enumerate.rs crates/axiomatic/src/equiv.rs crates/axiomatic/src/event.rs crates/axiomatic/src/exec.rs crates/axiomatic/src/generate.rs

crates/axiomatic/src/lib.rs:
crates/axiomatic/src/enumerate.rs:
crates/axiomatic/src/equiv.rs:
crates/axiomatic/src/event.rs:
crates/axiomatic/src/exec.rs:
crates/axiomatic/src/generate.rs:
