/root/repo/target/release/deps/paper_examples-e7e131e48d9fe2e1.d: crates/bench/src/bin/paper_examples.rs

/root/repo/target/release/deps/paper_examples-e7e131e48d9fe2e1: crates/bench/src/bin/paper_examples.rs

crates/bench/src/bin/paper_examples.rs:
