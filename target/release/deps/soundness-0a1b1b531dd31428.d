/root/repo/target/release/deps/soundness-0a1b1b531dd31428.d: crates/bench/src/bin/soundness.rs

/root/repo/target/release/deps/soundness-0a1b1b531dd31428: crates/bench/src/bin/soundness.rs

crates/bench/src/bin/soundness.rs:
