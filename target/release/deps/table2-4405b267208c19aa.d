/root/repo/target/release/deps/table2-4405b267208c19aa.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-4405b267208c19aa: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
