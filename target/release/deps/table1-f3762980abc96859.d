/root/repo/target/release/deps/table1-f3762980abc96859.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-f3762980abc96859: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
