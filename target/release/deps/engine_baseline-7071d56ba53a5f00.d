/root/repo/target/release/deps/engine_baseline-7071d56ba53a5f00.d: crates/bench/src/bin/engine_baseline.rs

/root/repo/target/release/deps/engine_baseline-7071d56ba53a5f00: crates/bench/src/bin/engine_baseline.rs

crates/bench/src/bin/engine_baseline.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
