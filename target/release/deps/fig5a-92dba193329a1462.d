/root/repo/target/release/deps/fig5a-92dba193329a1462.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/release/deps/fig5a-92dba193329a1462: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:
