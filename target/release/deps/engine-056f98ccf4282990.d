/root/repo/target/release/deps/engine-056f98ccf4282990.d: crates/bench/benches/engine.rs

/root/repo/target/release/deps/engine-056f98ccf4282990: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
