/root/repo/target/release/deps/bdrst_sim-de52622398c41b84.d: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

/root/repo/target/release/deps/libbdrst_sim-de52622398c41b84.rlib: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

/root/repo/target/release/deps/libbdrst_sim-de52622398c41b84.rmeta: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

crates/sim/src/lib.rs:
crates/sim/src/cpu.rs:
crates/sim/src/harness.rs:
crates/sim/src/schemes.rs:
crates/sim/src/workloads.rs:
