/root/repo/target/release/deps/bdrst_bench-9854abe0bced868a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbdrst_bench-9854abe0bced868a.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbdrst_bench-9854abe0bced868a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
