/root/repo/target/release/deps/__probe-a81023885a7413d2.d: crates/bench/src/bin/__probe.rs

/root/repo/target/release/deps/__probe-a81023885a7413d2: crates/bench/src/bin/__probe.rs

crates/bench/src/bin/__probe.rs:
