/root/repo/target/release/deps/litmus-86c1a119a3c6c31c.d: crates/bench/src/bin/litmus.rs

/root/repo/target/release/deps/litmus-86c1a119a3c6c31c: crates/bench/src/bin/litmus.rs

crates/bench/src/bin/litmus.rs:
