/root/repo/target/release/deps/bdrst_lang-2402089c60148706.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

/root/repo/target/release/deps/libbdrst_lang-2402089c60148706.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

/root/repo/target/release/deps/libbdrst_lang-2402089c60148706.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/parser.rs:
crates/lang/src/program.rs:
crates/lang/src/semantics.rs:
