/root/repo/target/release/deps/bdrst_hw-799381fb4f3fd683.d: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

/root/repo/target/release/deps/libbdrst_hw-799381fb4f3fd683.rlib: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

/root/repo/target/release/deps/libbdrst_hw-799381fb4f3fd683.rmeta: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

crates/hw/src/lib.rs:
crates/hw/src/arm.rs:
crates/hw/src/compile.rs:
crates/hw/src/exec.rs:
crates/hw/src/isa.rs:
crates/hw/src/soundness.rs:
crates/hw/src/x86.rs:
