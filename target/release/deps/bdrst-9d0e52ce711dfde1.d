/root/repo/target/release/deps/bdrst-9d0e52ce711dfde1.d: src/lib.rs

/root/repo/target/release/deps/libbdrst-9d0e52ce711dfde1.rlib: src/lib.rs

/root/repo/target/release/deps/libbdrst-9d0e52ce711dfde1.rmeta: src/lib.rs

src/lib.rs:
