/root/repo/target/release/deps/bdrst_opt-74c75068aa500755.d: crates/opt/src/lib.rs crates/opt/src/ir.rs crates/opt/src/passes.rs crates/opt/src/peephole.rs crates/opt/src/reorder.rs crates/opt/src/validate.rs

/root/repo/target/release/deps/libbdrst_opt-74c75068aa500755.rlib: crates/opt/src/lib.rs crates/opt/src/ir.rs crates/opt/src/passes.rs crates/opt/src/peephole.rs crates/opt/src/reorder.rs crates/opt/src/validate.rs

/root/repo/target/release/deps/libbdrst_opt-74c75068aa500755.rmeta: crates/opt/src/lib.rs crates/opt/src/ir.rs crates/opt/src/passes.rs crates/opt/src/peephole.rs crates/opt/src/reorder.rs crates/opt/src/validate.rs

crates/opt/src/lib.rs:
crates/opt/src/ir.rs:
crates/opt/src/passes.rs:
crates/opt/src/peephole.rs:
crates/opt/src/reorder.rs:
crates/opt/src/validate.rs:
