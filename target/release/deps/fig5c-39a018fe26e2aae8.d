/root/repo/target/release/deps/fig5c-39a018fe26e2aae8.d: crates/bench/src/bin/fig5c.rs

/root/repo/target/release/deps/fig5c-39a018fe26e2aae8: crates/bench/src/bin/fig5c.rs

crates/bench/src/bin/fig5c.rs:
