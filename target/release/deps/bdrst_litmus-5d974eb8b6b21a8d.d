/root/repo/target/release/deps/bdrst_litmus-5d974eb8b6b21a8d.d: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

/root/repo/target/release/deps/libbdrst_litmus-5d974eb8b6b21a8d.rlib: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

/root/repo/target/release/deps/libbdrst_litmus-5d974eb8b6b21a8d.rmeta: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

crates/litmus/src/lib.rs:
crates/litmus/src/corpus.rs:
crates/litmus/src/runner.rs:
