/root/repo/target/debug/deps/fig5c-a9306e171c833c2c.d: crates/bench/src/bin/fig5c.rs

/root/repo/target/debug/deps/fig5c-a9306e171c833c2c: crates/bench/src/bin/fig5c.rs

crates/bench/src/bin/fig5c.rs:
