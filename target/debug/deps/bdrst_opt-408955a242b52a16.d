/root/repo/target/debug/deps/bdrst_opt-408955a242b52a16.d: crates/opt/src/lib.rs crates/opt/src/ir.rs crates/opt/src/passes.rs crates/opt/src/peephole.rs crates/opt/src/reorder.rs crates/opt/src/validate.rs

/root/repo/target/debug/deps/libbdrst_opt-408955a242b52a16.rlib: crates/opt/src/lib.rs crates/opt/src/ir.rs crates/opt/src/passes.rs crates/opt/src/peephole.rs crates/opt/src/reorder.rs crates/opt/src/validate.rs

/root/repo/target/debug/deps/libbdrst_opt-408955a242b52a16.rmeta: crates/opt/src/lib.rs crates/opt/src/ir.rs crates/opt/src/passes.rs crates/opt/src/peephole.rs crates/opt/src/reorder.rs crates/opt/src/validate.rs

crates/opt/src/lib.rs:
crates/opt/src/ir.rs:
crates/opt/src/passes.rs:
crates/opt/src/peephole.rs:
crates/opt/src/reorder.rs:
crates/opt/src/validate.rs:
