/root/repo/target/debug/deps/table1-5cbdaa375e680a81.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-5cbdaa375e680a81.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
