/root/repo/target/debug/deps/opts-87d2d1cfd99f29ea.d: crates/bench/src/bin/opts.rs

/root/repo/target/debug/deps/libopts-87d2d1cfd99f29ea.rmeta: crates/bench/src/bin/opts.rs

crates/bench/src/bin/opts.rs:
