/root/repo/target/debug/deps/theorems-1c5b9288230aa630.d: tests/theorems.rs Cargo.toml

/root/repo/target/debug/deps/libtheorems-1c5b9288230aa630.rmeta: tests/theorems.rs Cargo.toml

tests/theorems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
