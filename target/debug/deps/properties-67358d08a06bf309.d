/root/repo/target/debug/deps/properties-67358d08a06bf309.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-67358d08a06bf309.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
