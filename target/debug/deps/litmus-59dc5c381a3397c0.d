/root/repo/target/debug/deps/litmus-59dc5c381a3397c0.d: crates/bench/src/bin/litmus.rs

/root/repo/target/debug/deps/liblitmus-59dc5c381a3397c0.rmeta: crates/bench/src/bin/litmus.rs

crates/bench/src/bin/litmus.rs:
