/root/repo/target/debug/deps/engine-79238971273c2d8e.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-79238971273c2d8e.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
