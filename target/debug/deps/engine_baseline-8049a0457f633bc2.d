/root/repo/target/debug/deps/engine_baseline-8049a0457f633bc2.d: crates/bench/src/bin/engine_baseline.rs

/root/repo/target/debug/deps/libengine_baseline-8049a0457f633bc2.rmeta: crates/bench/src/bin/engine_baseline.rs

crates/bench/src/bin/engine_baseline.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
