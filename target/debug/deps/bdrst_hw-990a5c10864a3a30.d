/root/repo/target/debug/deps/bdrst_hw-990a5c10864a3a30.d: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

/root/repo/target/debug/deps/libbdrst_hw-990a5c10864a3a30.rlib: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

/root/repo/target/debug/deps/libbdrst_hw-990a5c10864a3a30.rmeta: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

crates/hw/src/lib.rs:
crates/hw/src/arm.rs:
crates/hw/src/compile.rs:
crates/hw/src/exec.rs:
crates/hw/src/isa.rs:
crates/hw/src/soundness.rs:
crates/hw/src/x86.rs:
