/root/repo/target/debug/deps/bdrst_bench-5752a98ebe6c13c1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bdrst_bench-5752a98ebe6c13c1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
