/root/repo/target/debug/deps/rand-8f2bce50277267c8.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8f2bce50277267c8.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
