/root/repo/target/debug/deps/bdrst_bench-708eabe93584e7ff.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbdrst_bench-708eabe93584e7ff.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
