/root/repo/target/debug/deps/table1-725dff573e1b32da.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-725dff573e1b32da: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
