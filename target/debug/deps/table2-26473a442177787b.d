/root/repo/target/debug/deps/table2-26473a442177787b.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-26473a442177787b: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
