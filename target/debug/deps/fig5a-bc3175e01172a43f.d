/root/repo/target/debug/deps/fig5a-bc3175e01172a43f.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-bc3175e01172a43f: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:
