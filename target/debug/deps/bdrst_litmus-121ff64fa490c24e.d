/root/repo/target/debug/deps/bdrst_litmus-121ff64fa490c24e.d: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

/root/repo/target/debug/deps/libbdrst_litmus-121ff64fa490c24e.rlib: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

/root/repo/target/debug/deps/libbdrst_litmus-121ff64fa490c24e.rmeta: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

crates/litmus/src/lib.rs:
crates/litmus/src/corpus.rs:
crates/litmus/src/runner.rs:
