/root/repo/target/debug/deps/fig5a-63887cd3f97cc57e.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/fig5a-63887cd3f97cc57e: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:
