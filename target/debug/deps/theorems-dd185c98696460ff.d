/root/repo/target/debug/deps/theorems-dd185c98696460ff.d: tests/theorems.rs

/root/repo/target/debug/deps/theorems-dd185c98696460ff: tests/theorems.rs

tests/theorems.rs:
