/root/repo/target/debug/deps/soundness-ba2f4121dc12b1f6.d: crates/bench/src/bin/soundness.rs

/root/repo/target/debug/deps/libsoundness-ba2f4121dc12b1f6.rmeta: crates/bench/src/bin/soundness.rs

crates/bench/src/bin/soundness.rs:
