/root/repo/target/debug/deps/criterion-1d7b9c16dc9fc231.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-1d7b9c16dc9fc231.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-1d7b9c16dc9fc231.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
