/root/repo/target/debug/deps/paper_examples-c700624b2d86426a.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-c700624b2d86426a: tests/paper_examples.rs

tests/paper_examples.rs:
