/root/repo/target/debug/deps/bdrst_lang-7a7027b6b5e98998.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

/root/repo/target/debug/deps/bdrst_lang-7a7027b6b5e98998: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/parser.rs:
crates/lang/src/program.rs:
crates/lang/src/semantics.rs:
