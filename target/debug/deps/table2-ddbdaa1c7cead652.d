/root/repo/target/debug/deps/table2-ddbdaa1c7cead652.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-ddbdaa1c7cead652: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
