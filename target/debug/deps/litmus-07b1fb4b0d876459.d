/root/repo/target/debug/deps/litmus-07b1fb4b0d876459.d: crates/bench/src/bin/litmus.rs

/root/repo/target/debug/deps/liblitmus-07b1fb4b0d876459.rmeta: crates/bench/src/bin/litmus.rs

crates/bench/src/bin/litmus.rs:
