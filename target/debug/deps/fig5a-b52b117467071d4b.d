/root/repo/target/debug/deps/fig5a-b52b117467071d4b.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/libfig5a-b52b117467071d4b.rmeta: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:
