/root/repo/target/debug/deps/bdrst_axiomatic-6fb61511d3061222.d: crates/axiomatic/src/lib.rs crates/axiomatic/src/enumerate.rs crates/axiomatic/src/equiv.rs crates/axiomatic/src/event.rs crates/axiomatic/src/exec.rs crates/axiomatic/src/generate.rs

/root/repo/target/debug/deps/libbdrst_axiomatic-6fb61511d3061222.rmeta: crates/axiomatic/src/lib.rs crates/axiomatic/src/enumerate.rs crates/axiomatic/src/equiv.rs crates/axiomatic/src/event.rs crates/axiomatic/src/exec.rs crates/axiomatic/src/generate.rs

crates/axiomatic/src/lib.rs:
crates/axiomatic/src/enumerate.rs:
crates/axiomatic/src/equiv.rs:
crates/axiomatic/src/event.rs:
crates/axiomatic/src/exec.rs:
crates/axiomatic/src/generate.rs:
