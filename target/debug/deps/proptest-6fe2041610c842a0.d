/root/repo/target/debug/deps/proptest-6fe2041610c842a0.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-6fe2041610c842a0: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
