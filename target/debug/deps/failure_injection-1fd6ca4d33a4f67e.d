/root/repo/target/debug/deps/failure_injection-1fd6ca4d33a4f67e.d: crates/core/tests/failure_injection.rs

/root/repo/target/debug/deps/libfailure_injection-1fd6ca4d33a4f67e.rmeta: crates/core/tests/failure_injection.rs

crates/core/tests/failure_injection.rs:
