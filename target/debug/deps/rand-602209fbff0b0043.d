/root/repo/target/debug/deps/rand-602209fbff0b0043.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-602209fbff0b0043: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
