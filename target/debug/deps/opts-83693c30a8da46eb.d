/root/repo/target/debug/deps/opts-83693c30a8da46eb.d: crates/bench/src/bin/opts.rs

/root/repo/target/debug/deps/libopts-83693c30a8da46eb.rmeta: crates/bench/src/bin/opts.rs

crates/bench/src/bin/opts.rs:
