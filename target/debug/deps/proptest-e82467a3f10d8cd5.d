/root/repo/target/debug/deps/proptest-e82467a3f10d8cd5.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e82467a3f10d8cd5.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
