/root/repo/target/debug/deps/bdrst_bench-5d8ae5e7f48b0ee7.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbdrst_bench-5d8ae5e7f48b0ee7.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
