/root/repo/target/debug/deps/proptest-ebc7bfd87474b54b.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ebc7bfd87474b54b.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ebc7bfd87474b54b.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
