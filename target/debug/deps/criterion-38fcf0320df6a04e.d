/root/repo/target/debug/deps/criterion-38fcf0320df6a04e.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-38fcf0320df6a04e.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-38fcf0320df6a04e.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
