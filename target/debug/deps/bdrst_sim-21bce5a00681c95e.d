/root/repo/target/debug/deps/bdrst_sim-21bce5a00681c95e.d: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

/root/repo/target/debug/deps/libbdrst_sim-21bce5a00681c95e.rlib: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

/root/repo/target/debug/deps/libbdrst_sim-21bce5a00681c95e.rmeta: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

crates/sim/src/lib.rs:
crates/sim/src/cpu.rs:
crates/sim/src/harness.rs:
crates/sim/src/schemes.rs:
crates/sim/src/workloads.rs:
