/root/repo/target/debug/deps/fig5b-a09f1eafe11e572f.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-a09f1eafe11e572f: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:
