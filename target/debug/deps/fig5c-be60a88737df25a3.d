/root/repo/target/debug/deps/fig5c-be60a88737df25a3.d: crates/bench/src/bin/fig5c.rs

/root/repo/target/debug/deps/libfig5c-be60a88737df25a3.rmeta: crates/bench/src/bin/fig5c.rs

crates/bench/src/bin/fig5c.rs:
