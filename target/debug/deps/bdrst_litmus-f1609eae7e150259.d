/root/repo/target/debug/deps/bdrst_litmus-f1609eae7e150259.d: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libbdrst_litmus-f1609eae7e150259.rmeta: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs Cargo.toml

crates/litmus/src/lib.rs:
crates/litmus/src/corpus.rs:
crates/litmus/src/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
