/root/repo/target/debug/deps/compilation-de3149b5298eac55.d: tests/compilation.rs Cargo.toml

/root/repo/target/debug/deps/libcompilation-de3149b5298eac55.rmeta: tests/compilation.rs Cargo.toml

tests/compilation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
