/root/repo/target/debug/deps/opts-9785c1f31c2e9eb9.d: crates/bench/src/bin/opts.rs

/root/repo/target/debug/deps/opts-9785c1f31c2e9eb9: crates/bench/src/bin/opts.rs

crates/bench/src/bin/opts.rs:
