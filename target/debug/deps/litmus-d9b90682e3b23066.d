/root/repo/target/debug/deps/litmus-d9b90682e3b23066.d: crates/bench/src/bin/litmus.rs Cargo.toml

/root/repo/target/debug/deps/liblitmus-d9b90682e3b23066.rmeta: crates/bench/src/bin/litmus.rs Cargo.toml

crates/bench/src/bin/litmus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
