/root/repo/target/debug/deps/properties-3466018912bb342b.d: tests/properties.rs

/root/repo/target/debug/deps/properties-3466018912bb342b: tests/properties.rs

tests/properties.rs:
