/root/repo/target/debug/deps/paper_examples-ce88151e8cd3ffc6.d: crates/bench/src/bin/paper_examples.rs

/root/repo/target/debug/deps/libpaper_examples-ce88151e8cd3ffc6.rmeta: crates/bench/src/bin/paper_examples.rs

crates/bench/src/bin/paper_examples.rs:
