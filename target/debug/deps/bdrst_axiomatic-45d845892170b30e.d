/root/repo/target/debug/deps/bdrst_axiomatic-45d845892170b30e.d: crates/axiomatic/src/lib.rs crates/axiomatic/src/enumerate.rs crates/axiomatic/src/equiv.rs crates/axiomatic/src/event.rs crates/axiomatic/src/exec.rs crates/axiomatic/src/generate.rs

/root/repo/target/debug/deps/libbdrst_axiomatic-45d845892170b30e.rmeta: crates/axiomatic/src/lib.rs crates/axiomatic/src/enumerate.rs crates/axiomatic/src/equiv.rs crates/axiomatic/src/event.rs crates/axiomatic/src/exec.rs crates/axiomatic/src/generate.rs

crates/axiomatic/src/lib.rs:
crates/axiomatic/src/enumerate.rs:
crates/axiomatic/src/equiv.rs:
crates/axiomatic/src/event.rs:
crates/axiomatic/src/exec.rs:
crates/axiomatic/src/generate.rs:
