/root/repo/target/debug/deps/litmus-6e4488646d19e4d3.d: crates/bench/src/bin/litmus.rs

/root/repo/target/debug/deps/litmus-6e4488646d19e4d3: crates/bench/src/bin/litmus.rs

crates/bench/src/bin/litmus.rs:
