/root/repo/target/debug/deps/bdrst-0f906c249637d1bc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbdrst-0f906c249637d1bc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
