/root/repo/target/debug/deps/failure_injection-7e09bd3ef7e9f7d2.d: crates/core/tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-7e09bd3ef7e9f7d2.rmeta: crates/core/tests/failure_injection.rs Cargo.toml

crates/core/tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
