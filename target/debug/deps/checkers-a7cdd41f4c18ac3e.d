/root/repo/target/debug/deps/checkers-a7cdd41f4c18ac3e.d: crates/bench/benches/checkers.rs

/root/repo/target/debug/deps/libcheckers-a7cdd41f4c18ac3e.rmeta: crates/bench/benches/checkers.rs

crates/bench/benches/checkers.rs:
