/root/repo/target/debug/deps/engine-27e41acb5e95e514.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/libengine-27e41acb5e95e514.rmeta: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
