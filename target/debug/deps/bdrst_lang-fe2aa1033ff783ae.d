/root/repo/target/debug/deps/bdrst_lang-fe2aa1033ff783ae.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

/root/repo/target/debug/deps/libbdrst_lang-fe2aa1033ff783ae.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

/root/repo/target/debug/deps/libbdrst_lang-fe2aa1033ff783ae.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/parser.rs:
crates/lang/src/program.rs:
crates/lang/src/semantics.rs:
