/root/repo/target/debug/deps/rand-1ce6480412fe8a8c.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-1ce6480412fe8a8c.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
