/root/repo/target/debug/deps/paper_examples-8a5ab71676057066.d: crates/bench/src/bin/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-8a5ab71676057066.rmeta: crates/bench/src/bin/paper_examples.rs Cargo.toml

crates/bench/src/bin/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
