/root/repo/target/debug/deps/soundness-af1d607c71e5a911.d: crates/bench/src/bin/soundness.rs Cargo.toml

/root/repo/target/debug/deps/libsoundness-af1d607c71e5a911.rmeta: crates/bench/src/bin/soundness.rs Cargo.toml

crates/bench/src/bin/soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
