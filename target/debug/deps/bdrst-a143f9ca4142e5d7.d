/root/repo/target/debug/deps/bdrst-a143f9ca4142e5d7.d: src/lib.rs

/root/repo/target/debug/deps/libbdrst-a143f9ca4142e5d7.rmeta: src/lib.rs

src/lib.rs:
