/root/repo/target/debug/deps/bdrst_litmus-6c60f08863dac872.d: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

/root/repo/target/debug/deps/bdrst_litmus-6c60f08863dac872: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

crates/litmus/src/lib.rs:
crates/litmus/src/corpus.rs:
crates/litmus/src/runner.rs:
