/root/repo/target/debug/deps/bdrst_sim-e72dc9e90ec2c5e6.d: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

/root/repo/target/debug/deps/libbdrst_sim-e72dc9e90ec2c5e6.rmeta: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

crates/sim/src/lib.rs:
crates/sim/src/cpu.rs:
crates/sim/src/harness.rs:
crates/sim/src/schemes.rs:
crates/sim/src/workloads.rs:
