/root/repo/target/debug/deps/paper_examples-ffb5dc702b1f2848.d: tests/paper_examples.rs

/root/repo/target/debug/deps/libpaper_examples-ffb5dc702b1f2848.rmeta: tests/paper_examples.rs

tests/paper_examples.rs:
