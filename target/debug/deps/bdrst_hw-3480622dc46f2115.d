/root/repo/target/debug/deps/bdrst_hw-3480622dc46f2115.d: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

/root/repo/target/debug/deps/libbdrst_hw-3480622dc46f2115.rmeta: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

crates/hw/src/lib.rs:
crates/hw/src/arm.rs:
crates/hw/src/compile.rs:
crates/hw/src/exec.rs:
crates/hw/src/isa.rs:
crates/hw/src/soundness.rs:
crates/hw/src/x86.rs:
