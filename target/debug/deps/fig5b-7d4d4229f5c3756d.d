/root/repo/target/debug/deps/fig5b-7d4d4229f5c3756d.d: crates/bench/src/bin/fig5b.rs Cargo.toml

/root/repo/target/debug/deps/libfig5b-7d4d4229f5c3756d.rmeta: crates/bench/src/bin/fig5b.rs Cargo.toml

crates/bench/src/bin/fig5b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
