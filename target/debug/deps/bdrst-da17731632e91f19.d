/root/repo/target/debug/deps/bdrst-da17731632e91f19.d: src/lib.rs

/root/repo/target/debug/deps/libbdrst-da17731632e91f19.rmeta: src/lib.rs

src/lib.rs:
