/root/repo/target/debug/deps/soundness-a39f63f56d1938c9.d: crates/bench/src/bin/soundness.rs

/root/repo/target/debug/deps/soundness-a39f63f56d1938c9: crates/bench/src/bin/soundness.rs

crates/bench/src/bin/soundness.rs:
