/root/repo/target/debug/deps/bdrst-e6dda1cf6b7f474b.d: src/lib.rs

/root/repo/target/debug/deps/bdrst-e6dda1cf6b7f474b: src/lib.rs

src/lib.rs:
