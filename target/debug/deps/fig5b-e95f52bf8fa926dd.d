/root/repo/target/debug/deps/fig5b-e95f52bf8fa926dd.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/fig5b-e95f52bf8fa926dd: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:
