/root/repo/target/debug/deps/proptest-c8cabf15b7f8ad1d.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-c8cabf15b7f8ad1d.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
