/root/repo/target/debug/deps/proptest-ea26d22776c3734e.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-ea26d22776c3734e.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
