/root/repo/target/debug/deps/bdrst_litmus-3055cf3a8e810239.d: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

/root/repo/target/debug/deps/libbdrst_litmus-3055cf3a8e810239.rlib: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

/root/repo/target/debug/deps/libbdrst_litmus-3055cf3a8e810239.rmeta: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

crates/litmus/src/lib.rs:
crates/litmus/src/corpus.rs:
crates/litmus/src/runner.rs:
