/root/repo/target/debug/deps/bdrst_bench-b5bc50a730adc695.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbdrst_bench-b5bc50a730adc695.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbdrst_bench-b5bc50a730adc695.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
