/root/repo/target/debug/deps/engine_baseline-517462b9ca0436e9.d: crates/bench/src/bin/engine_baseline.rs

/root/repo/target/debug/deps/libengine_baseline-517462b9ca0436e9.rmeta: crates/bench/src/bin/engine_baseline.rs

crates/bench/src/bin/engine_baseline.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
