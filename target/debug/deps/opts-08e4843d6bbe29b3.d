/root/repo/target/debug/deps/opts-08e4843d6bbe29b3.d: crates/bench/src/bin/opts.rs Cargo.toml

/root/repo/target/debug/deps/libopts-08e4843d6bbe29b3.rmeta: crates/bench/src/bin/opts.rs Cargo.toml

crates/bench/src/bin/opts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
