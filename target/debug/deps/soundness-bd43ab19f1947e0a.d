/root/repo/target/debug/deps/soundness-bd43ab19f1947e0a.d: crates/bench/src/bin/soundness.rs Cargo.toml

/root/repo/target/debug/deps/libsoundness-bd43ab19f1947e0a.rmeta: crates/bench/src/bin/soundness.rs Cargo.toml

crates/bench/src/bin/soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
