/root/repo/target/debug/deps/litmus-aad1d2f24bbcce92.d: crates/bench/src/bin/litmus.rs Cargo.toml

/root/repo/target/debug/deps/liblitmus-aad1d2f24bbcce92.rmeta: crates/bench/src/bin/litmus.rs Cargo.toml

crates/bench/src/bin/litmus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
