/root/repo/target/debug/deps/soundness-205077c44f692c6d.d: crates/bench/src/bin/soundness.rs

/root/repo/target/debug/deps/libsoundness-205077c44f692c6d.rmeta: crates/bench/src/bin/soundness.rs

crates/bench/src/bin/soundness.rs:
