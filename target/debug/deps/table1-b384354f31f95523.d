/root/repo/target/debug/deps/table1-b384354f31f95523.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-b384354f31f95523: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
