/root/repo/target/debug/deps/opts-e4fe9eb4e3f8096b.d: crates/bench/src/bin/opts.rs

/root/repo/target/debug/deps/opts-e4fe9eb4e3f8096b: crates/bench/src/bin/opts.rs

crates/bench/src/bin/opts.rs:
