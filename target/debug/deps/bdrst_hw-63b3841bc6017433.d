/root/repo/target/debug/deps/bdrst_hw-63b3841bc6017433.d: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

/root/repo/target/debug/deps/libbdrst_hw-63b3841bc6017433.rlib: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

/root/repo/target/debug/deps/libbdrst_hw-63b3841bc6017433.rmeta: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

crates/hw/src/lib.rs:
crates/hw/src/arm.rs:
crates/hw/src/compile.rs:
crates/hw/src/exec.rs:
crates/hw/src/isa.rs:
crates/hw/src/soundness.rs:
crates/hw/src/x86.rs:
