/root/repo/target/debug/deps/bdrst_axiomatic-56e0a2f3cedcf8a9.d: crates/axiomatic/src/lib.rs crates/axiomatic/src/enumerate.rs crates/axiomatic/src/equiv.rs crates/axiomatic/src/event.rs crates/axiomatic/src/exec.rs crates/axiomatic/src/generate.rs Cargo.toml

/root/repo/target/debug/deps/libbdrst_axiomatic-56e0a2f3cedcf8a9.rmeta: crates/axiomatic/src/lib.rs crates/axiomatic/src/enumerate.rs crates/axiomatic/src/equiv.rs crates/axiomatic/src/event.rs crates/axiomatic/src/exec.rs crates/axiomatic/src/generate.rs Cargo.toml

crates/axiomatic/src/lib.rs:
crates/axiomatic/src/enumerate.rs:
crates/axiomatic/src/equiv.rs:
crates/axiomatic/src/event.rs:
crates/axiomatic/src/exec.rs:
crates/axiomatic/src/generate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
