/root/repo/target/debug/deps/fig5c-06db416d29b06d5f.d: crates/bench/src/bin/fig5c.rs

/root/repo/target/debug/deps/fig5c-06db416d29b06d5f: crates/bench/src/bin/fig5c.rs

crates/bench/src/bin/fig5c.rs:
