/root/repo/target/debug/deps/fig5b-7707b5458dfedc0f.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/libfig5b-7707b5458dfedc0f.rmeta: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:
