/root/repo/target/debug/deps/bdrst_sim-0f07b05f49ee82a5.d: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

/root/repo/target/debug/deps/libbdrst_sim-0f07b05f49ee82a5.rlib: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

/root/repo/target/debug/deps/libbdrst_sim-0f07b05f49ee82a5.rmeta: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

crates/sim/src/lib.rs:
crates/sim/src/cpu.rs:
crates/sim/src/harness.rs:
crates/sim/src/schemes.rs:
crates/sim/src/workloads.rs:
