/root/repo/target/debug/deps/engine_baseline-b4a9b680632dbb99.d: crates/bench/src/bin/engine_baseline.rs

/root/repo/target/debug/deps/engine_baseline-b4a9b680632dbb99: crates/bench/src/bin/engine_baseline.rs

crates/bench/src/bin/engine_baseline.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
