/root/repo/target/debug/deps/table1-920d92bf540da870.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-920d92bf540da870.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
