/root/repo/target/debug/deps/fig5b-e9b65a2db3c1975a.d: crates/bench/src/bin/fig5b.rs Cargo.toml

/root/repo/target/debug/deps/libfig5b-e9b65a2db3c1975a.rmeta: crates/bench/src/bin/fig5b.rs Cargo.toml

crates/bench/src/bin/fig5b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
