/root/repo/target/debug/deps/criterion-c0efc99803e2847a.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c0efc99803e2847a.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
