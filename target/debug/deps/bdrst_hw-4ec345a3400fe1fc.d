/root/repo/target/debug/deps/bdrst_hw-4ec345a3400fe1fc.d: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs Cargo.toml

/root/repo/target/debug/deps/libbdrst_hw-4ec345a3400fe1fc.rmeta: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/arm.rs:
crates/hw/src/compile.rs:
crates/hw/src/exec.rs:
crates/hw/src/isa.rs:
crates/hw/src/soundness.rs:
crates/hw/src/x86.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
