/root/repo/target/debug/deps/bdrst_litmus-2bd9c390ded8b654.d: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

/root/repo/target/debug/deps/libbdrst_litmus-2bd9c390ded8b654.rmeta: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

crates/litmus/src/lib.rs:
crates/litmus/src/corpus.rs:
crates/litmus/src/runner.rs:
