/root/repo/target/debug/deps/fig5c-7cf211d7009eda8a.d: crates/bench/src/bin/fig5c.rs Cargo.toml

/root/repo/target/debug/deps/libfig5c-7cf211d7009eda8a.rmeta: crates/bench/src/bin/fig5c.rs Cargo.toml

crates/bench/src/bin/fig5c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
