/root/repo/target/debug/deps/engine-81f5b3a9f826fc65.d: crates/core/tests/engine.rs

/root/repo/target/debug/deps/engine-81f5b3a9f826fc65: crates/core/tests/engine.rs

crates/core/tests/engine.rs:
