/root/repo/target/debug/deps/compilation-ecb1bf78b8971a49.d: tests/compilation.rs

/root/repo/target/debug/deps/compilation-ecb1bf78b8971a49: tests/compilation.rs

tests/compilation.rs:
