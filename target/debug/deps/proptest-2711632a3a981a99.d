/root/repo/target/debug/deps/proptest-2711632a3a981a99.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2711632a3a981a99.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2711632a3a981a99.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
