/root/repo/target/debug/deps/bdrst_lang-c55bb9ed890253e0.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

/root/repo/target/debug/deps/libbdrst_lang-c55bb9ed890253e0.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/parser.rs:
crates/lang/src/program.rs:
crates/lang/src/semantics.rs:
