/root/repo/target/debug/deps/bdrst-3e34336b3547bc5f.d: src/lib.rs

/root/repo/target/debug/deps/libbdrst-3e34336b3547bc5f.rlib: src/lib.rs

/root/repo/target/debug/deps/libbdrst-3e34336b3547bc5f.rmeta: src/lib.rs

src/lib.rs:
