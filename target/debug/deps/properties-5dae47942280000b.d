/root/repo/target/debug/deps/properties-5dae47942280000b.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-5dae47942280000b.rmeta: tests/properties.rs

tests/properties.rs:
