/root/repo/target/debug/deps/soundness-a2efaa447d7a8dbb.d: crates/bench/src/bin/soundness.rs

/root/repo/target/debug/deps/soundness-a2efaa447d7a8dbb: crates/bench/src/bin/soundness.rs

crates/bench/src/bin/soundness.rs:
