/root/repo/target/debug/deps/fig5a-ae34713bb2fa155a.d: crates/bench/src/bin/fig5a.rs

/root/repo/target/debug/deps/libfig5a-ae34713bb2fa155a.rmeta: crates/bench/src/bin/fig5a.rs

crates/bench/src/bin/fig5a.rs:
