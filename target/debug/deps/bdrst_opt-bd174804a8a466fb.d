/root/repo/target/debug/deps/bdrst_opt-bd174804a8a466fb.d: crates/opt/src/lib.rs crates/opt/src/ir.rs crates/opt/src/passes.rs crates/opt/src/peephole.rs crates/opt/src/reorder.rs crates/opt/src/validate.rs

/root/repo/target/debug/deps/bdrst_opt-bd174804a8a466fb: crates/opt/src/lib.rs crates/opt/src/ir.rs crates/opt/src/passes.rs crates/opt/src/peephole.rs crates/opt/src/reorder.rs crates/opt/src/validate.rs

crates/opt/src/lib.rs:
crates/opt/src/ir.rs:
crates/opt/src/passes.rs:
crates/opt/src/peephole.rs:
crates/opt/src/reorder.rs:
crates/opt/src/validate.rs:
