/root/repo/target/debug/deps/fig5b-8d246e47f7a6ef1c.d: crates/bench/src/bin/fig5b.rs

/root/repo/target/debug/deps/libfig5b-8d246e47f7a6ef1c.rmeta: crates/bench/src/bin/fig5b.rs

crates/bench/src/bin/fig5b.rs:
