/root/repo/target/debug/deps/proptest-b4791706ef75ba38.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-b4791706ef75ba38.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
