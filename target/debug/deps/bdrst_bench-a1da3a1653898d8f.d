/root/repo/target/debug/deps/bdrst_bench-a1da3a1653898d8f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbdrst_bench-a1da3a1653898d8f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbdrst_bench-a1da3a1653898d8f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
