/root/repo/target/debug/deps/fig5-c5b208e220b572de.d: crates/bench/benches/fig5.rs

/root/repo/target/debug/deps/libfig5-c5b208e220b572de.rmeta: crates/bench/benches/fig5.rs

crates/bench/benches/fig5.rs:
