/root/repo/target/debug/deps/rand-204219e051d65987.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-204219e051d65987.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-204219e051d65987.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
