/root/repo/target/debug/deps/bdrst_lang-278f862a27f26c72.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libbdrst_lang-278f862a27f26c72.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs Cargo.toml

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/parser.rs:
crates/lang/src/program.rs:
crates/lang/src/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
