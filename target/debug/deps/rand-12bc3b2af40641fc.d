/root/repo/target/debug/deps/rand-12bc3b2af40641fc.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-12bc3b2af40641fc.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-12bc3b2af40641fc.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
