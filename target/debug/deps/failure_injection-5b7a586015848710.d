/root/repo/target/debug/deps/failure_injection-5b7a586015848710.d: crates/core/tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-5b7a586015848710: crates/core/tests/failure_injection.rs

crates/core/tests/failure_injection.rs:
