/root/repo/target/debug/deps/bdrst_lang-3d9525fb77e3073b.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

/root/repo/target/debug/deps/libbdrst_lang-3d9525fb77e3073b.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

/root/repo/target/debug/deps/libbdrst_lang-3d9525fb77e3073b.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/parser.rs:
crates/lang/src/program.rs:
crates/lang/src/semantics.rs:
