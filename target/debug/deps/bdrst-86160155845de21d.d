/root/repo/target/debug/deps/bdrst-86160155845de21d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbdrst-86160155845de21d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
