/root/repo/target/debug/deps/bdrst_hw-12ca9e15bafb9a4f.d: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

/root/repo/target/debug/deps/bdrst_hw-12ca9e15bafb9a4f: crates/hw/src/lib.rs crates/hw/src/arm.rs crates/hw/src/compile.rs crates/hw/src/exec.rs crates/hw/src/isa.rs crates/hw/src/soundness.rs crates/hw/src/x86.rs

crates/hw/src/lib.rs:
crates/hw/src/arm.rs:
crates/hw/src/compile.rs:
crates/hw/src/exec.rs:
crates/hw/src/isa.rs:
crates/hw/src/soundness.rs:
crates/hw/src/x86.rs:
