/root/repo/target/debug/deps/bdrst-c08cbf4da37d4c14.d: src/lib.rs

/root/repo/target/debug/deps/libbdrst-c08cbf4da37d4c14.rlib: src/lib.rs

/root/repo/target/debug/deps/libbdrst-c08cbf4da37d4c14.rmeta: src/lib.rs

src/lib.rs:
