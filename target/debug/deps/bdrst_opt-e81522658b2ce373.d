/root/repo/target/debug/deps/bdrst_opt-e81522658b2ce373.d: crates/opt/src/lib.rs crates/opt/src/ir.rs crates/opt/src/passes.rs crates/opt/src/peephole.rs crates/opt/src/reorder.rs crates/opt/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libbdrst_opt-e81522658b2ce373.rmeta: crates/opt/src/lib.rs crates/opt/src/ir.rs crates/opt/src/passes.rs crates/opt/src/peephole.rs crates/opt/src/reorder.rs crates/opt/src/validate.rs Cargo.toml

crates/opt/src/lib.rs:
crates/opt/src/ir.rs:
crates/opt/src/passes.rs:
crates/opt/src/peephole.rs:
crates/opt/src/reorder.rs:
crates/opt/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
