/root/repo/target/debug/deps/engine_baseline-ced25f65577b1390.d: crates/bench/src/bin/engine_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libengine_baseline-ced25f65577b1390.rmeta: crates/bench/src/bin/engine_baseline.rs Cargo.toml

crates/bench/src/bin/engine_baseline.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
