/root/repo/target/debug/deps/table2-0aac2f68323b6061.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-0aac2f68323b6061.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
