/root/repo/target/debug/deps/table2-8afe7eb1ab08607d.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-8afe7eb1ab08607d.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
