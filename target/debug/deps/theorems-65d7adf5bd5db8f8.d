/root/repo/target/debug/deps/theorems-65d7adf5bd5db8f8.d: tests/theorems.rs

/root/repo/target/debug/deps/libtheorems-65d7adf5bd5db8f8.rmeta: tests/theorems.rs

tests/theorems.rs:
