/root/repo/target/debug/deps/bdrst_axiomatic-8ecebfb132ca219f.d: crates/axiomatic/src/lib.rs crates/axiomatic/src/enumerate.rs crates/axiomatic/src/equiv.rs crates/axiomatic/src/event.rs crates/axiomatic/src/exec.rs crates/axiomatic/src/generate.rs

/root/repo/target/debug/deps/libbdrst_axiomatic-8ecebfb132ca219f.rlib: crates/axiomatic/src/lib.rs crates/axiomatic/src/enumerate.rs crates/axiomatic/src/equiv.rs crates/axiomatic/src/event.rs crates/axiomatic/src/exec.rs crates/axiomatic/src/generate.rs

/root/repo/target/debug/deps/libbdrst_axiomatic-8ecebfb132ca219f.rmeta: crates/axiomatic/src/lib.rs crates/axiomatic/src/enumerate.rs crates/axiomatic/src/equiv.rs crates/axiomatic/src/event.rs crates/axiomatic/src/exec.rs crates/axiomatic/src/generate.rs

crates/axiomatic/src/lib.rs:
crates/axiomatic/src/enumerate.rs:
crates/axiomatic/src/equiv.rs:
crates/axiomatic/src/event.rs:
crates/axiomatic/src/exec.rs:
crates/axiomatic/src/generate.rs:
