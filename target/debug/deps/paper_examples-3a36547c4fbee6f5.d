/root/repo/target/debug/deps/paper_examples-3a36547c4fbee6f5.d: crates/bench/src/bin/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-3a36547c4fbee6f5: crates/bench/src/bin/paper_examples.rs

crates/bench/src/bin/paper_examples.rs:
