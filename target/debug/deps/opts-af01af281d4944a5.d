/root/repo/target/debug/deps/opts-af01af281d4944a5.d: crates/bench/src/bin/opts.rs Cargo.toml

/root/repo/target/debug/deps/libopts-af01af281d4944a5.rmeta: crates/bench/src/bin/opts.rs Cargo.toml

crates/bench/src/bin/opts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
