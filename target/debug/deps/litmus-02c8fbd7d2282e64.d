/root/repo/target/debug/deps/litmus-02c8fbd7d2282e64.d: crates/bench/src/bin/litmus.rs

/root/repo/target/debug/deps/litmus-02c8fbd7d2282e64: crates/bench/src/bin/litmus.rs

crates/bench/src/bin/litmus.rs:
