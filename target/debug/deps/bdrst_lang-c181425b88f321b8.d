/root/repo/target/debug/deps/bdrst_lang-c181425b88f321b8.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

/root/repo/target/debug/deps/libbdrst_lang-c181425b88f321b8.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/parser.rs crates/lang/src/program.rs crates/lang/src/semantics.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/parser.rs:
crates/lang/src/program.rs:
crates/lang/src/semantics.rs:
