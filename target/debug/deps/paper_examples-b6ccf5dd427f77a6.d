/root/repo/target/debug/deps/paper_examples-b6ccf5dd427f77a6.d: crates/bench/src/bin/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-b6ccf5dd427f77a6: crates/bench/src/bin/paper_examples.rs

crates/bench/src/bin/paper_examples.rs:
