/root/repo/target/debug/deps/fig5c-14d4019b3b1e99f3.d: crates/bench/src/bin/fig5c.rs

/root/repo/target/debug/deps/libfig5c-14d4019b3b1e99f3.rmeta: crates/bench/src/bin/fig5c.rs

crates/bench/src/bin/fig5c.rs:
