/root/repo/target/debug/deps/criterion-cc8ca03e0cb71ac7.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-cc8ca03e0cb71ac7: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
