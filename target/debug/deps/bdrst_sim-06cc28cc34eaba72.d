/root/repo/target/debug/deps/bdrst_sim-06cc28cc34eaba72.d: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libbdrst_sim-06cc28cc34eaba72.rmeta: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cpu.rs:
crates/sim/src/harness.rs:
crates/sim/src/schemes.rs:
crates/sim/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
