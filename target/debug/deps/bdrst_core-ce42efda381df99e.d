/root/repo/target/debug/deps/bdrst_core-ce42efda381df99e.d: crates/core/src/lib.rs crates/core/src/engine/mod.rs crates/core/src/engine/canon.rs crates/core/src/engine/intern.rs crates/core/src/engine/parallel.rs crates/core/src/engine/worklist.rs crates/core/src/explore.rs crates/core/src/frontier.rs crates/core/src/history.rs crates/core/src/loc.rs crates/core/src/localdrf.rs crates/core/src/machine.rs crates/core/src/memop.rs crates/core/src/relation.rs crates/core/src/store.rs crates/core/src/timestamp.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libbdrst_core-ce42efda381df99e.rlib: crates/core/src/lib.rs crates/core/src/engine/mod.rs crates/core/src/engine/canon.rs crates/core/src/engine/intern.rs crates/core/src/engine/parallel.rs crates/core/src/engine/worklist.rs crates/core/src/explore.rs crates/core/src/frontier.rs crates/core/src/history.rs crates/core/src/loc.rs crates/core/src/localdrf.rs crates/core/src/machine.rs crates/core/src/memop.rs crates/core/src/relation.rs crates/core/src/store.rs crates/core/src/timestamp.rs crates/core/src/trace.rs

/root/repo/target/debug/deps/libbdrst_core-ce42efda381df99e.rmeta: crates/core/src/lib.rs crates/core/src/engine/mod.rs crates/core/src/engine/canon.rs crates/core/src/engine/intern.rs crates/core/src/engine/parallel.rs crates/core/src/engine/worklist.rs crates/core/src/explore.rs crates/core/src/frontier.rs crates/core/src/history.rs crates/core/src/loc.rs crates/core/src/localdrf.rs crates/core/src/machine.rs crates/core/src/memop.rs crates/core/src/relation.rs crates/core/src/store.rs crates/core/src/timestamp.rs crates/core/src/trace.rs

crates/core/src/lib.rs:
crates/core/src/engine/mod.rs:
crates/core/src/engine/canon.rs:
crates/core/src/engine/intern.rs:
crates/core/src/engine/parallel.rs:
crates/core/src/engine/worklist.rs:
crates/core/src/explore.rs:
crates/core/src/frontier.rs:
crates/core/src/history.rs:
crates/core/src/loc.rs:
crates/core/src/localdrf.rs:
crates/core/src/machine.rs:
crates/core/src/memop.rs:
crates/core/src/relation.rs:
crates/core/src/store.rs:
crates/core/src/timestamp.rs:
crates/core/src/trace.rs:
