/root/repo/target/debug/deps/compilation-6017f66e07d134cf.d: tests/compilation.rs

/root/repo/target/debug/deps/libcompilation-6017f66e07d134cf.rmeta: tests/compilation.rs

tests/compilation.rs:
