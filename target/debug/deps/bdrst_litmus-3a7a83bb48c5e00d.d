/root/repo/target/debug/deps/bdrst_litmus-3a7a83bb48c5e00d.d: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

/root/repo/target/debug/deps/libbdrst_litmus-3a7a83bb48c5e00d.rmeta: crates/litmus/src/lib.rs crates/litmus/src/corpus.rs crates/litmus/src/runner.rs

crates/litmus/src/lib.rs:
crates/litmus/src/corpus.rs:
crates/litmus/src/runner.rs:
