/root/repo/target/debug/deps/bdrst_sim-f9108142f1d333a6.d: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

/root/repo/target/debug/deps/bdrst_sim-f9108142f1d333a6: crates/sim/src/lib.rs crates/sim/src/cpu.rs crates/sim/src/harness.rs crates/sim/src/schemes.rs crates/sim/src/workloads.rs

crates/sim/src/lib.rs:
crates/sim/src/cpu.rs:
crates/sim/src/harness.rs:
crates/sim/src/schemes.rs:
crates/sim/src/workloads.rs:
