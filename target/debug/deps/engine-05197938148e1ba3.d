/root/repo/target/debug/deps/engine-05197938148e1ba3.d: crates/core/tests/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-05197938148e1ba3.rmeta: crates/core/tests/engine.rs Cargo.toml

crates/core/tests/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
