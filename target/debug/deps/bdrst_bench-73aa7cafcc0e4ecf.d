/root/repo/target/debug/deps/bdrst_bench-73aa7cafcc0e4ecf.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbdrst_bench-73aa7cafcc0e4ecf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
