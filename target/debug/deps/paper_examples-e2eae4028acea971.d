/root/repo/target/debug/deps/paper_examples-e2eae4028acea971.d: crates/bench/src/bin/paper_examples.rs

/root/repo/target/debug/deps/libpaper_examples-e2eae4028acea971.rmeta: crates/bench/src/bin/paper_examples.rs

crates/bench/src/bin/paper_examples.rs:
