/root/repo/target/debug/deps/criterion-5ad1b7e038b9231a.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-5ad1b7e038b9231a.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
