/root/repo/target/debug/deps/bdrst_bench-cb56f0195b5cd16f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbdrst_bench-cb56f0195b5cd16f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
