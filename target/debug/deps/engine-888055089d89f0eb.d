/root/repo/target/debug/deps/engine-888055089d89f0eb.d: crates/core/tests/engine.rs

/root/repo/target/debug/deps/libengine-888055089d89f0eb.rmeta: crates/core/tests/engine.rs

crates/core/tests/engine.rs:
