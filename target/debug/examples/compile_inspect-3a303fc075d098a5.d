/root/repo/target/debug/examples/compile_inspect-3a303fc075d098a5.d: examples/compile_inspect.rs Cargo.toml

/root/repo/target/debug/examples/libcompile_inspect-3a303fc075d098a5.rmeta: examples/compile_inspect.rs Cargo.toml

examples/compile_inspect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
