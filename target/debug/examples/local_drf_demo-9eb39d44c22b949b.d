/root/repo/target/debug/examples/local_drf_demo-9eb39d44c22b949b.d: examples/local_drf_demo.rs Cargo.toml

/root/repo/target/debug/examples/liblocal_drf_demo-9eb39d44c22b949b.rmeta: examples/local_drf_demo.rs Cargo.toml

examples/local_drf_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
