/root/repo/target/debug/examples/optimizer_validation-fbd906ae8f569070.d: examples/optimizer_validation.rs Cargo.toml

/root/repo/target/debug/examples/liboptimizer_validation-fbd906ae8f569070.rmeta: examples/optimizer_validation.rs Cargo.toml

examples/optimizer_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
