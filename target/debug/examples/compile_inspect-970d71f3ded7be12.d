/root/repo/target/debug/examples/compile_inspect-970d71f3ded7be12.d: examples/compile_inspect.rs

/root/repo/target/debug/examples/libcompile_inspect-970d71f3ded7be12.rmeta: examples/compile_inspect.rs

examples/compile_inspect.rs:
