/root/repo/target/debug/examples/quickstart-c67b4adf06aa4c1b.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-c67b4adf06aa4c1b.rmeta: examples/quickstart.rs

examples/quickstart.rs:
