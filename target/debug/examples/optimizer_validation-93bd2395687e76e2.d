/root/repo/target/debug/examples/optimizer_validation-93bd2395687e76e2.d: examples/optimizer_validation.rs

/root/repo/target/debug/examples/optimizer_validation-93bd2395687e76e2: examples/optimizer_validation.rs

examples/optimizer_validation.rs:
