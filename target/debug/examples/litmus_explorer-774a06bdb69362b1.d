/root/repo/target/debug/examples/litmus_explorer-774a06bdb69362b1.d: examples/litmus_explorer.rs

/root/repo/target/debug/examples/liblitmus_explorer-774a06bdb69362b1.rmeta: examples/litmus_explorer.rs

examples/litmus_explorer.rs:
