/root/repo/target/debug/examples/local_drf_demo-45030f6447918949.d: examples/local_drf_demo.rs

/root/repo/target/debug/examples/local_drf_demo-45030f6447918949: examples/local_drf_demo.rs

examples/local_drf_demo.rs:
