/root/repo/target/debug/examples/litmus_explorer-82199044a824222c.d: examples/litmus_explorer.rs Cargo.toml

/root/repo/target/debug/examples/liblitmus_explorer-82199044a824222c.rmeta: examples/litmus_explorer.rs Cargo.toml

examples/litmus_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
