/root/repo/target/debug/examples/litmus_explorer-51ae8e672a4bc98a.d: examples/litmus_explorer.rs

/root/repo/target/debug/examples/litmus_explorer-51ae8e672a4bc98a: examples/litmus_explorer.rs

examples/litmus_explorer.rs:
