/root/repo/target/debug/examples/compile_inspect-b01a04d43fd31655.d: examples/compile_inspect.rs

/root/repo/target/debug/examples/compile_inspect-b01a04d43fd31655: examples/compile_inspect.rs

examples/compile_inspect.rs:
