/root/repo/target/debug/examples/local_drf_demo-89bda037bd941248.d: examples/local_drf_demo.rs

/root/repo/target/debug/examples/liblocal_drf_demo-89bda037bd941248.rmeta: examples/local_drf_demo.rs

examples/local_drf_demo.rs:
