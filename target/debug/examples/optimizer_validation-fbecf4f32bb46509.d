/root/repo/target/debug/examples/optimizer_validation-fbecf4f32bb46509.d: examples/optimizer_validation.rs

/root/repo/target/debug/examples/liboptimizer_validation-fbecf4f32bb46509.rmeta: examples/optimizer_validation.rs

examples/optimizer_validation.rs:
