/root/repo/target/debug/examples/quickstart-80fc7ecf9d1df710.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-80fc7ecf9d1df710: examples/quickstart.rs

examples/quickstart.rs:
