//! Engine progress ticks: a process-global [`ProgressSink`] the
//! exploration engines poke every N visited states, so a long-running
//! check is observable while it runs (CLI `--progress` stderr ticks,
//! the server's `status` command) instead of only after.
//!
//! The hook is process-global rather than an engine field because the
//! engines are small `Copy` values shared across worker threads; the
//! shape mirrors the counter registry's discipline. Cost when disabled
//! — the default — is **one relaxed load** per visited state
//! (`EVERY == 0`), which is what lets `engine_baseline` hold the
//! allocs-per-visit bar with the logger installed. When enabled, the
//! per-visit cost is one more relaxed `fetch_add`; building the
//! [`Progress`] snapshot and calling the sink happens only every
//! `EVERY` ticks, off the common path.
//!
//! States-visited and frontier-high-water come from the always-on
//! counter registry; the engine passes only what the registry cannot
//! know — its budget numerator and denominator — so budget-fraction is
//! exact per engine run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::counters::{counter_get, Counter};

/// One progress snapshot, as handed to the sink.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Ticks since the sink was installed (across all engine runs).
    pub ticks: u64,
    /// Process-wide states visited ([`Counter::StatesVisited`]).
    pub states_visited: u64,
    /// Process-wide frontier high water ([`Counter::FrontierHighWater`]).
    pub frontier_high_water: u64,
    /// Budget consumed by the ticking engine run (states or traces).
    pub budget_used: u64,
    /// The run's budget ceiling (0 when unbounded).
    pub budget_max: u64,
}

impl Progress {
    /// Fraction of the budget consumed, in `[0, 1]`; 0 when unbounded.
    pub fn budget_fraction(&self) -> f64 {
        if self.budget_max == 0 {
            0.0
        } else {
            (self.budget_used as f64 / self.budget_max as f64).min(1.0)
        }
    }
}

/// Receives progress ticks. Implementations must be cheap and
/// non-blocking-ish: they run on engine worker threads.
pub trait ProgressSink: Send + Sync {
    /// Called every N visited states while installed.
    fn tick(&self, progress: &Progress);
}

/// Tick period; 0 disables the whole layer (the one-relaxed-load gate).
static EVERY: AtomicU64 = AtomicU64::new(0);
static TICKS: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Option<Arc<dyn ProgressSink>>> = Mutex::new(None);

/// Installs `sink`, ticked every `every` visited states (min 1).
pub fn install_progress_sink(sink: Arc<dyn ProgressSink>, every: u64) {
    *SINK.lock().unwrap() = Some(sink);
    TICKS.store(0, Ordering::Relaxed);
    EVERY.store(every.max(1), Ordering::Relaxed);
}

/// Disables ticking and drops the sink.
pub fn clear_progress_sink() {
    EVERY.store(0, Ordering::Relaxed);
    *SINK.lock().unwrap() = None;
}

/// Engine-side tick, called once per visited state / trace extension.
/// One relaxed load when no sink is installed.
#[inline]
pub fn progress_tick(budget_used: u64, budget_max: u64) {
    let every = EVERY.load(Ordering::Relaxed);
    if every == 0 {
        return;
    }
    let n = TICKS.fetch_add(1, Ordering::Relaxed) + 1;
    if n.is_multiple_of(every) {
        progress_emit(n, budget_used, budget_max);
    }
}

#[cold]
fn progress_emit(ticks: u64, budget_used: u64, budget_max: u64) {
    let sink = SINK.lock().unwrap().clone();
    if let Some(sink) = sink {
        sink.tick(&Progress {
            ticks,
            states_visited: counter_get(Counter::StatesVisited),
            frontier_high_water: counter_get(Counter::FrontierHighWater),
            budget_used,
            budget_max,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct CountingSink {
        calls: AtomicUsize,
        last_used: AtomicU64,
    }

    impl ProgressSink for CountingSink {
        fn tick(&self, p: &Progress) {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.last_used.store(p.budget_used, Ordering::Relaxed);
        }
    }

    #[test]
    fn ticks_fire_every_n_and_disable_cleanly() {
        let sink = Arc::new(CountingSink {
            calls: AtomicUsize::new(0),
            last_used: AtomicU64::new(0),
        });
        progress_tick(1, 10); // disabled: no sink, no panic
        install_progress_sink(Arc::clone(&sink) as Arc<dyn ProgressSink>, 10);
        for i in 1..=25u64 {
            progress_tick(i, 100);
        }
        assert_eq!(sink.calls.load(Ordering::Relaxed), 2, "ticks at 10 and 20");
        assert_eq!(sink.last_used.load(Ordering::Relaxed), 20);
        clear_progress_sink();
        progress_tick(1, 10);
        assert_eq!(
            sink.calls.load(Ordering::Relaxed),
            2,
            "cleared sink is quiet"
        );
        let p = Progress {
            ticks: 1,
            states_visited: 0,
            frontier_high_water: 0,
            budget_used: 5,
            budget_max: 0,
        };
        assert_eq!(p.budget_fraction(), 0.0, "unbounded budget reads as 0");
    }
}
