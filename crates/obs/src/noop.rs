//! The `record`-feature-off surface: identical API, unit behavior. The
//! counter registry (crate::counters) stays real either way.

use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::phase::Phase;
use crate::profile::Profile;

static EPOCH: OnceLock<Instant> = OnceLock::new();
// Keeps the stub observable in tests: stop_and_collect returns empty.
static INSTALLED: Mutex<bool> = Mutex::new(false);

/// Always false: recording is compiled out.
#[inline]
pub fn enabled() -> bool {
    false
}

/// Nanoseconds since the process-wide monotonic epoch (still real: the
/// service's request timestamps use it regardless of recording).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Inert span handle.
pub struct SpanGuard;

impl SpanGuard {
    /// No-op.
    pub fn set_arg(&mut self, _arg: u64) {}
}

/// No-op; returns an inert guard.
#[inline]
pub fn span(_phase: Phase) -> SpanGuard {
    SpanGuard
}

/// No-op; returns an inert guard.
#[inline]
pub fn span_arg(_phase: Phase, _arg: u64) -> SpanGuard {
    SpanGuard
}

/// No profiling ring exists with `record` off, but cross-thread stamps
/// carry real timestamps either way, so the flight recorder still
/// captures them.
#[inline]
pub fn event(phase: Phase, start_ns: u64, dur_ns: u64, arg: u64) {
    if crate::flight::active() {
        crate::flight::record_span(phase, start_ns, dur_ns, arg);
    }
}

/// Stub session handle: installs succeed, collections are empty.
pub struct Recorder;

impl Recorder {
    /// Marks a session open (no recording happens).
    pub fn install() {
        *INSTALLED.lock().unwrap() = true;
    }

    /// Always false.
    pub fn active() -> bool {
        false
    }

    /// Ends the session; the profile is always empty.
    pub fn stop_and_collect() -> Profile {
        *INSTALLED.lock().unwrap() = false;
        Profile::default()
    }
}
