//! The flight recorder: an always-on, bounded ring of recent spans that
//! dumps a Chrome-trace + recent-log snapshot to disk when something
//! goes wrong — a slow request, a worker panic, or an explicit `dump`
//! protocol command — so the *cause* of an anomaly is captured without
//! running with full profiling on.
//!
//! Ring discipline (contrast with the profiler's rings in `recorder`):
//! the profiler's rings never wrap, so a drain is tear-free; a flight
//! ring must hold the *most recent* events indefinitely, so it **does**
//! wrap. Each thread owns one ring and is its only writer: slot words
//! are `Relaxed` stores published by one `Release` bump of a monotone
//! `written` counter. A dump reads `written` (`Acquire`), copies the
//! last `capacity` slots, re-reads `written`, and discards any entry
//! the second read proves may have been overwritten mid-copy. The one
//! residual race — a writer that has stored slot words but not yet
//! published — can at worst leave a single stale-valued event in a
//! diagnostic dump, never tear memory or block the writer.
//!
//! Dumps are written whole to a temp file and renamed into place
//! (`flight-<seq>-<reason>.json`), retain at most `keep` files (oldest
//! deleted), and count in [`Counter::FlightDumps`]. Automatic triggers
//! go through [`dump_throttled`] so a burst of slow requests costs one
//! snapshot, not one per request.

use std::cell::OnceCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::counters::{counter_add, Counter};
use crate::phase::{Phase, PHASE_COUNT};
use crate::profile::{Profile, TraceEvent};

/// Spans one thread's flight ring retains.
const FLIGHT_CAPACITY: usize = 2048;

/// Minimum gap between automatic dumps ([`dump_throttled`]).
const THROTTLE_NS: u64 = 250_000_000;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static RINGS: Mutex<Vec<Arc<FlightRing>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static STATE: OnceLock<DumpState> = OnceLock::new();

struct DumpState {
    dir: PathBuf,
    keep: usize,
    dumps: Mutex<Vec<PathBuf>>,
    seq: AtomicU64,
    last_dump_ns: AtomicU64,
}

struct Slot {
    phase: AtomicU64,
    start: AtomicU64,
    dur: AtomicU64,
    arg: AtomicU64,
}

struct FlightRing {
    tid: u64,
    name: String,
    /// Total events ever written; the ring index is `written % capacity`.
    written: AtomicU64,
    slots: Box<[Slot]>,
}

impl FlightRing {
    fn new() -> FlightRing {
        FlightRing {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            name: std::thread::current()
                .name()
                .unwrap_or("worker")
                .to_string(),
            written: AtomicU64::new(0),
            slots: (0..FLIGHT_CAPACITY)
                .map(|_| Slot {
                    phase: AtomicU64::new(0),
                    start: AtomicU64::new(0),
                    dur: AtomicU64::new(0),
                    arg: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Owner-side append: overwrite the oldest slot, then publish.
    fn push(&self, phase: Phase, start_ns: u64, dur_ns: u64, arg: u64) {
        let w = self.written.load(Ordering::Relaxed);
        let s = &self.slots[(w % self.slots.len() as u64) as usize];
        s.phase.store(phase as u64, Ordering::Relaxed);
        s.start.store(start_ns, Ordering::Relaxed);
        s.dur.store(dur_ns, Ordering::Relaxed);
        s.arg.store(arg, Ordering::Relaxed);
        self.written.store(w + 1, Ordering::Release);
    }

    /// Dump-side copy of the retained window; drops entries the
    /// re-read of `written` proves may have been overwritten.
    fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let cap = self.slots.len() as u64;
        let w1 = self.written.load(Ordering::Acquire);
        let lo = w1.saturating_sub(cap);
        let mut entries = Vec::with_capacity((w1 - lo) as usize);
        for i in lo..w1 {
            let s = &self.slots[(i % cap) as usize];
            let phase_idx = (s.phase.load(Ordering::Relaxed) as usize).min(PHASE_COUNT - 1);
            entries.push((
                i,
                TraceEvent {
                    phase: Phase::all()[phase_idx],
                    tid: self.tid,
                    start_ns: s.start.load(Ordering::Relaxed),
                    dur_ns: s.dur.load(Ordering::Relaxed),
                    arg: s.arg.load(Ordering::Relaxed),
                },
            ));
        }
        let w2 = self.written.load(Ordering::Acquire);
        let lo2 = w2.saturating_sub(cap);
        let events = entries
            .into_iter()
            .filter(|(i, _)| *i >= lo2)
            .map(|(_, e)| e)
            .collect();
        (events, lo2)
    }
}

thread_local! {
    static RING: OnceCell<Arc<FlightRing>> = const { OnceCell::new() };
}

/// True once [`install`] has run: span sites feed the flight rings.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs the flight recorder: dumps land under `dir`, at most `keep`
/// retained. Idempotent after the first call (which fixes the
/// directory); capture starts immediately.
pub fn install(dir: PathBuf, keep: usize) -> std::io::Result<()> {
    if STATE.get().is_none() {
        std::fs::create_dir_all(&dir)?;
        let _ = STATE.set(DumpState {
            dir,
            keep: keep.max(1),
            dumps: Mutex::new(Vec::new()),
            seq: AtomicU64::new(1),
            last_dump_ns: AtomicU64::new(0),
        });
    }
    ACTIVE.store(true, Ordering::SeqCst);
    Ok(())
}

/// Records one finished span into this thread's flight ring. Called by
/// the span entry points when [`active`]; callers with an event that
/// never went through a `SpanGuard` (cross-thread stamps) land here via
/// `event`.
pub fn record_span(phase: Phase, start_ns: u64, dur_ns: u64, arg: u64) {
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(FlightRing::new());
            RINGS.lock().unwrap().push(Arc::clone(&ring));
            ring
        });
        ring.push(phase, start_ns, dur_ns, arg);
    });
}

/// Snapshots every flight ring plus the logger's recent lines and
/// writes one Chrome-trace JSON file (`flight-<seq>-<reason>.json`,
/// temp-file + rename) under the installed directory, deleting the
/// oldest dump past the retention cap. Returns the final path.
pub fn dump(reason: &str) -> std::io::Result<PathBuf> {
    let state = STATE
        .get()
        .ok_or_else(|| std::io::Error::other("flight recorder not installed"))?;
    let mut profile = Profile::default();
    for ring in RINGS.lock().unwrap().iter() {
        let (events, overwritten) = ring.drain();
        if !events.is_empty() || overwritten > 0 {
            profile.threads.push((ring.tid, ring.name.clone()));
        }
        profile.events.extend(events);
        profile.dropped += overwritten;
    }
    profile.events.sort_by_key(|e| e.start_ns);

    let mut extra = String::from(",\"flight_reason\":\"");
    for c in reason.chars() {
        match c {
            '"' => extra.push_str("\\\""),
            '\\' => extra.push_str("\\\\"),
            c if (c as u32) < 0x20 => extra.push_str(&format!("\\u{:04x}", c as u32)),
            c => extra.push(c),
        }
    }
    extra.push_str("\",\"recent_logs\":[");
    // Emitted log lines are themselves JSON objects, so they embed
    // verbatim as array elements.
    extra.push_str(&crate::log::recent_lines().join(","));
    extra.push(']');
    let body = profile.to_chrome_json_with_extra(&extra);

    let seq = state.seq.fetch_add(1, Ordering::Relaxed);
    let safe_reason: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = state.dir.join(format!("flight-{seq}-{safe_reason}.json"));
    let tmp = state.dir.join(format!(".flight-{seq}.tmp"));
    std::fs::write(&tmp, &body)?;
    std::fs::rename(&tmp, &path)?;
    counter_add(Counter::FlightDumps, 1);

    let mut dumps = state.dumps.lock().unwrap();
    dumps.push(path.clone());
    while dumps.len() > state.keep {
        let old = dumps.remove(0);
        let _ = std::fs::remove_file(old);
    }
    Ok(path)
}

/// [`dump`], but rate limited for automatic triggers: at most one dump
/// per 250 ms, `None` when throttled (or not installed).
pub fn dump_throttled(reason: &str) -> Option<PathBuf> {
    let state = STATE.get()?;
    let now = crate::now_ns();
    let last = state.last_dump_ns.load(Ordering::Relaxed);
    if now.saturating_sub(last) < THROTTLE_NS && last != 0 {
        return None;
    }
    if state
        .last_dump_ns
        .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
    {
        return None;
    }
    dump(reason).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test drives the whole lifecycle: the recorder is
    // process-global (OnceLock'd dump directory), so independent
    // #[test]s would race each other's install/dump accounting.
    #[test]
    fn ring_wraps_dumps_throttle_and_retention() {
        let dir = std::env::temp_dir().join(format!("bdrst-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        install(dir.clone(), 2).unwrap();
        assert!(active());
        // Overfill this thread's ring so it wraps.
        for i in 0..(FLIGHT_CAPACITY + 10) as u64 {
            record_span(Phase::Execute, i, 1, i);
        }
        let path = dump("unit-test").unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .ends_with(".json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"traceEvents\":["));
        assert!(body.contains("\"flight_reason\":\"unit-test\""));
        assert!(body.contains("\"recent_logs\":["));
        // Wrapped ring: only the newest FLIGHT_CAPACITY survive, and the
        // overwritten count is reported.
        assert!(body.contains("\"dropped_events\":10"));

        // Automatic triggers coalesce: one dump per throttle window.
        let first = dump_throttled("burst");
        let second = dump_throttled("burst");
        assert!(first.is_some());
        assert!(second.is_none(), "second dump inside 250ms is throttled");

        // Retention: more dumps cap the directory at `keep`.
        dump("unit-test").unwrap();
        dump("unit-test").unwrap();
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with("flight-"))
            })
            .collect();
        assert_eq!(dumps.len(), 2, "retention cap keeps the newest 2");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
