//! The always-on counter registry: fixed slots, relaxed atomics, zero
//! allocation. This generalizes what used to be ad-hoc globals scattered
//! through the engine (`machine::SEMANTICS_PROBES`, the pmap digest
//! hit/miss pair) into one table every layer shares.

use std::sync::atomic::{AtomicU64, Ordering};

/// A registry slot. Additive counters unless noted; `*HighWater` /
/// `InternerOccupancy` are monotone gauges updated with [`counter_max`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Counter {
    /// Transition-semantics steps (the zero-probe suites' witness).
    SemanticsProbes = 0,
    /// Pmap content-digest memo hits.
    DigestHits,
    /// Pmap content-digest recomputations.
    DigestMisses,
    /// States (worklist engines) / trace extensions (DPOR) visited.
    StatesVisited,
    /// Fresh canonical states interned.
    StatesInterned,
    /// Monotone gauge: largest interner table seen.
    InternerOccupancy,
    /// Monotone gauge: deepest worklist/frontier seen.
    FrontierHighWater,
    /// Wall-clock nanoseconds spent inside engine explore calls
    /// (always-on: two clock reads per call, not per visit).
    ExploreNanos,
    /// `canonical_fingerprint` invocations.
    FingerprintCalls,
    /// Transitions enumerated by the DPOR engine.
    DporBranches,
    /// DPOR extensions pruned because every enabled thread slept.
    DporSleepBlocked,
    /// Backtrack points added by the source-DPOR race analysis.
    DporBacktrackPoints,
    /// Race-detector events consumed on live (semantics-driven) walks.
    RaceEventsLive,
    /// Race-detector events consumed replaying a recorded trace tree.
    RaceEventsReplayed,
    /// Span events dropped because a thread ring filled.
    SpansDropped,
    /// Structured log lines emitted (post rate limiting).
    LogLines,
    /// Log lines suppressed by the per-target rate limiter.
    LogRateLimited,
    /// Flight-recorder snapshots dumped to disk.
    FlightDumps,
}

/// Number of registry slots.
pub const COUNTER_COUNT: usize = 18;

const NAMES: [&str; COUNTER_COUNT] = [
    "semantics_probes",
    "digest_hits",
    "digest_misses",
    "states_visited",
    "states_interned",
    "interner_occupancy",
    "frontier_high_water",
    "explore_nanos",
    "fingerprint_calls",
    "dpor_branches",
    "dpor_sleep_blocked",
    "dpor_backtrack_points",
    "race_events_live",
    "race_events_replayed",
    "spans_dropped",
    "log_lines",
    "log_rate_limited",
    "flight_dumps",
];

static REGISTRY: [AtomicU64; COUNTER_COUNT] = [const { AtomicU64::new(0) }; COUNTER_COUNT];

impl Counter {
    /// The counter's stable snake_case name (JSON / Prometheus key).
    pub const fn name(self) -> &'static str {
        NAMES[self as usize]
    }
}

/// Adds `n` to a counter. Relaxed; safe from any thread.
#[inline]
pub fn counter_add(c: Counter, n: u64) {
    REGISTRY[c as usize].fetch_add(n, Ordering::Relaxed);
}

/// Raises a monotone gauge to at least `v`.
#[inline]
pub fn counter_max(c: Counter, v: u64) {
    REGISTRY[c as usize].fetch_max(v, Ordering::Relaxed);
}

/// Current value of a counter.
#[inline]
pub fn counter_get(c: Counter) -> u64 {
    REGISTRY[c as usize].load(Ordering::Relaxed)
}

/// All counters as `(name, value)` pairs, in slot order.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    NAMES
        .iter()
        .zip(&REGISTRY)
        .map(|(n, v)| (*n, v.load(Ordering::Relaxed)))
        .collect()
}

/// Zeroes every slot. For tests and benchmark lanes that want absolute
/// (rather than delta) readings; production callers diff snapshots.
pub fn counters_reset() {
    for slot in &REGISTRY {
        slot.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_add_max_and_snapshot() {
        let before = counter_get(Counter::DigestHits);
        counter_add(Counter::DigestHits, 3);
        assert_eq!(counter_get(Counter::DigestHits), before + 3);
        counter_max(Counter::FrontierHighWater, 10);
        counter_max(Counter::FrontierHighWater, 4);
        assert!(counter_get(Counter::FrontierHighWater) >= 10);
        let snap = counters_snapshot();
        assert_eq!(snap.len(), COUNTER_COUNT);
        assert!(snap.iter().any(|(n, _)| *n == "digest_hits"));
    }
}
