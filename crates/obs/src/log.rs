//! Structured JSON-lines logging, std-only and always compiled.
//!
//! One line per record: `{"ts_us":...,"mono_ns":...,"level":"warn",
//! "target":"reactor","msg":"...",<fields>}`. The escaper emits exactly
//! the escape repertoire the service's `json.rs` parser accepts, so
//! every logged string round-trips (property-tested from the service
//! crate, which owns the parser).
//!
//! Cost model, matching the span recorder's discipline:
//!
//! * The level gate is one `Relaxed` load of an `AtomicU8` (0 =
//!   uninstalled). Until [`install`] runs — or for records below the
//!   installed level — a log site is a load and a branch: no clock
//!   read, no allocation, no lock.
//! * Past the gate, rendering allocates and the sink takes a mutex;
//!   log sites therefore belong on control paths (accept errors, slow
//!   requests, shutdown), never in engine hot loops.
//!
//! Each record passes a **per-target rate limiter** (at most
//! [`LogConfig::rate_per_sec`] lines per second per target; overflow is
//! counted, not written, and surfaces as one summary line when the
//! window rolls — the [`Counter::LogRateLimited`] gauge counts every
//! suppression). Emitted lines also land in a bounded in-memory ring
//! ([`recent_lines`]) so a flight-recorder dump can include the seconds
//! of log context preceding an anomaly.
//!
//! With a directory configured, lines append to `bdrst.log` and rotate
//! by **rename**: when the active file would exceed
//! [`LogConfig::rotate_bytes`], it is renamed to `bdrst.log.<n>` and a
//! fresh `bdrst.log` is created. Every line is written whole to exactly
//! one file — rotation happens only at line boundaries, so no line is
//! ever split across files.

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::counters::{counter_add, Counter};

/// Lines the in-memory recent-lines ring retains for flight dumps.
const RECENT_CAPACITY: usize = 256;

/// Severity, ordered: a record is emitted when its level is at or above
/// the installed threshold (`Error` is the most severe).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error = 1,
    /// Anomalies the server survives (slow requests, worker panics).
    Warn = 2,
    /// Lifecycle events (bind, shutdown, flight dumps).
    Info = 3,
    /// Per-connection and per-request detail.
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// The level's lowercase name, as rendered in the `level` field.
    pub const fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `--log-level` / `BDRST_LOG` value, case-insensitive.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// One structured field value. Strings are escaped at render time;
/// non-finite floats render as `null` so the line stays parseable.
#[derive(Clone, Copy, Debug)]
pub enum Field<'a> {
    /// A string value.
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (`null` when not finite).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

/// Logger configuration for [`install`].
pub struct LogConfig {
    /// Threshold: records below this level are dropped at the gate.
    pub level: Level,
    /// Log directory; `None` writes to stderr.
    pub dir: Option<PathBuf>,
    /// Rotate the active file before it exceeds this many bytes.
    pub rotate_bytes: u64,
    /// Per-target lines per second before suppression.
    pub rate_per_sec: u64,
}

impl Default for LogConfig {
    fn default() -> LogConfig {
        LogConfig {
            level: Level::Warn,
            dir: None,
            rotate_bytes: 4 << 20,
            rate_per_sec: 64,
        }
    }
}

enum Sink {
    Stderr,
    File {
        dir: PathBuf,
        file: std::fs::File,
        bytes: u64,
        rotate_bytes: u64,
        seq: u64,
    },
}

struct Window {
    start_ns: u64,
    count: u64,
    suppressed: u64,
}

struct State {
    sink: Mutex<Sink>,
    limiter: Mutex<HashMap<&'static str, Window>>,
    recent: Mutex<VecDeque<String>>,
    rate_per_sec: u64,
}

/// 0 = uninstalled; otherwise the installed [`Level`] as `u8`. The one
/// relaxed load every log site pays.
static LEVEL: AtomicU8 = AtomicU8::new(0);
static STATE: OnceLock<State> = OnceLock::new();

/// Installs the logger process-wide (atomic, like `Recorder::install`).
/// The first call fixes the sink; later calls only move the level, so a
/// test or a long-lived server can tighten/loosen verbosity live.
pub fn install(config: LogConfig) -> std::io::Result<()> {
    if STATE.get().is_none() {
        let sink = match &config.dir {
            None => Sink::Stderr,
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join("bdrst.log");
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)?;
                let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
                // Resume numbering after any rotated files already there.
                let seq = std::fs::read_dir(dir)?
                    .filter_map(|e| e.ok())
                    .filter_map(|e| {
                        e.file_name()
                            .to_str()
                            .and_then(|n| n.strip_prefix("bdrst.log.").map(str::to_string))
                    })
                    .filter_map(|n| n.parse::<u64>().ok())
                    .max()
                    .map_or(1, |n| n + 1);
                Sink::File {
                    dir: dir.clone(),
                    file,
                    bytes,
                    rotate_bytes: config.rotate_bytes.max(1),
                    seq,
                }
            }
        };
        let _ = STATE.set(State {
            sink: Mutex::new(sink),
            limiter: Mutex::new(HashMap::new()),
            recent: Mutex::new(VecDeque::with_capacity(RECENT_CAPACITY)),
            rate_per_sec: config.rate_per_sec.max(1),
        });
    }
    LEVEL.store(config.level as u8, Ordering::Relaxed);
    Ok(())
}

/// Moves the level threshold without touching the sink.
pub fn set_level(level: Level) {
    if STATE.get().is_some() {
        LEVEL.store(level as u8, Ordering::Relaxed);
    }
}

/// The installed threshold, or `None` before [`install`].
pub fn level() -> Option<Level> {
    match LEVEL.load(Ordering::Relaxed) {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// True when a record at `l` would pass the gate.
#[inline]
pub fn log_enabled(l: Level) -> bool {
    l as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Escapes `s` into `out` exactly as the service's `json.rs` renderer
/// does: `"`, `\`, `\n`, `\r`, `\t` named, every other control char as
/// `\u00XX` — the repertoire its parser reverses losslessly.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn render(level: Level, target: &str, msg: &str, fields: &[(&str, Field)]) -> String {
    let wall_us = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut out = String::with_capacity(96 + msg.len());
    out.push_str(&format!(
        "{{\"ts_us\":{wall_us},\"mono_ns\":{},\"level\":\"{}\",\"target\":\"",
        crate::now_ns(),
        level.name()
    ));
    escape_into(&mut out, target);
    out.push_str("\",\"msg\":\"");
    escape_into(&mut out, msg);
    out.push('"');
    for (key, value) in fields {
        out.push_str(",\"");
        escape_into(&mut out, key);
        out.push_str("\":");
        match value {
            Field::Str(s) => {
                out.push('"');
                escape_into(&mut out, s);
                out.push('"');
            }
            Field::U64(n) => out.push_str(&n.to_string()),
            Field::I64(n) => out.push_str(&n.to_string()),
            Field::F64(f) if f.is_finite() => out.push_str(&format!("{f}")),
            Field::F64(_) => out.push_str("null"),
            Field::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
    out
}

fn emit(state: &State, line: String) {
    counter_add(Counter::LogLines, 1);
    {
        let mut recent = state.recent.lock().unwrap();
        if recent.len() == RECENT_CAPACITY {
            recent.pop_front();
        }
        recent.push_back(line.clone());
    }
    let mut sink = state.sink.lock().unwrap();
    match &mut *sink {
        Sink::Stderr => {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "{line}");
        }
        Sink::File {
            dir,
            file,
            bytes,
            rotate_bytes,
            seq,
        } => {
            let line_bytes = line.len() as u64 + 1;
            // Rotate between lines only: rename the active file away and
            // start a fresh one, so no line straddles two files.
            if *bytes > 0 && *bytes + line_bytes > *rotate_bytes {
                let active = dir.join("bdrst.log");
                let rotated = dir.join(format!("bdrst.log.{seq}"));
                if std::fs::rename(&active, &rotated).is_ok() {
                    *seq += 1;
                    if let Ok(fresh) = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&active)
                    {
                        *file = fresh;
                        *bytes = 0;
                    }
                }
            }
            if writeln!(file, "{line}").is_ok() {
                *bytes += line_bytes;
            }
        }
    }
}

/// Emits one structured record. `target` names the subsystem (the rate
/// limiter's key); `fields` append as extra JSON members after `msg`.
pub fn log(level: Level, target: &'static str, msg: &str, fields: &[(&str, Field)]) {
    if !log_enabled(level) {
        return;
    }
    let Some(state) = STATE.get() else {
        return;
    };
    let now = crate::now_ns();
    let released = {
        let mut limiter = state.limiter.lock().unwrap();
        let w = limiter.entry(target).or_insert(Window {
            start_ns: now,
            count: 0,
            suppressed: 0,
        });
        let mut released = 0;
        if now.saturating_sub(w.start_ns) >= 1_000_000_000 {
            released = w.suppressed;
            *w = Window {
                start_ns: now,
                count: 0,
                suppressed: 0,
            };
        }
        if w.count >= state.rate_per_sec {
            w.suppressed += 1;
            counter_add(Counter::LogRateLimited, 1);
            return;
        }
        w.count += 1;
        released
    };
    if released > 0 {
        emit(
            state,
            render(
                Level::Warn,
                target,
                "rate limiter released",
                &[("suppressed", Field::U64(released))],
            ),
        );
    }
    emit(state, render(level, target, msg, fields));
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &'static str, msg: &str, fields: &[(&str, Field)]) {
    log(Level::Error, target, msg, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &'static str, msg: &str, fields: &[(&str, Field)]) {
    log(Level::Warn, target, msg, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &'static str, msg: &str, fields: &[(&str, Field)]) {
    log(Level::Info, target, msg, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &'static str, msg: &str, fields: &[(&str, Field)]) {
    log(Level::Debug, target, msg, fields);
}

/// The most recent emitted lines (oldest first), for flight dumps.
pub fn recent_lines() -> Vec<String> {
    STATE
        .get()
        .map(|s| s.recent.lock().unwrap().iter().cloned().collect())
        .unwrap_or_default()
}

/// Renders a record to its JSON line without emitting it — the escaping
/// surface the round-trip property tests target.
pub fn render_line(level: Level, target: &str, msg: &str, fields: &[(&str, Field)]) -> String {
    render(level, target, msg, fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_escapes_and_fields() {
        let line = render_line(
            Level::Warn,
            "test",
            "a \"quoted\"\nmessage\twith\u{1}ctrl",
            &[
                ("s", Field::Str("v\\x")),
                ("u", Field::U64(7)),
                ("i", Field::I64(-3)),
                ("f", Field::F64(1.5)),
                ("nan", Field::F64(f64::NAN)),
                ("b", Field::Bool(true)),
            ],
        );
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\\\"quoted\\\"\\nmessage\\twith\\u0001ctrl"));
        assert!(line.contains("\"s\":\"v\\\\x\""));
        assert!(line.contains("\"u\":7"));
        assert!(line.contains("\"i\":-3"));
        assert!(line.contains("\"f\":1.5"));
        assert!(line.contains("\"nan\":null"));
        assert!(line.contains("\"b\":true"));
        assert!(!line.contains('\n'), "a record is exactly one line");
    }

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Trace);
    }
}
