//! The span phase table: the static names every span carries. A fixed
//! enum (rather than arbitrary strings) is what keeps the hot path free
//! of allocation and the per-phase aggregate table a flat array.

/// A span's phase. `name()` is the label that appears in Chrome traces
/// and summaries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Phase {
    /// Litmus surface-syntax parsing.
    Parse = 0,
    /// An engine explore call (worklist, work-stealing, or DPOR).
    Explore,
    /// `canonical_fingerprint` (state identity hashing).
    Fingerprint,
    /// Interner probe/claim under a canonical fingerprint.
    InternClaim,
    /// Source-DPOR backtrack-point / sleep-set computation for one step.
    DporBacktrack,
    /// Shared depth-first trace walk (trace recording / replay driver).
    TraceWalk,
    /// Race detection driven by the live transition semantics.
    RaceLive,
    /// Race detection replayed over a recorded trace tree.
    RaceReplay,
    /// Result-store key derivation + lookup.
    CacheLookup,
    /// One whole service request (CLI file or server line).
    Request,
    /// Server: request sat in the `JobQueue` awaiting a worker.
    QueueWait,
    /// Server: worker executing the request.
    Execute,
    /// Server: finished response waiting to reach the socket.
    WriteBack,
    /// Reactor: one poll cycle that moved bytes.
    PollCycle,
    /// Reactor: the shutdown flush phase.
    Flush,
}

/// Number of phases.
pub const PHASE_COUNT: usize = 15;

const NAMES: [&str; PHASE_COUNT] = [
    "parse",
    "explore",
    "canon-fingerprint",
    "intern-claim",
    "dpor-backtrack",
    "trace-walk",
    "race-detect-live",
    "race-detect-replay",
    "cache-lookup",
    "request",
    "queue-wait",
    "execute",
    "write-back",
    "poll-cycle",
    "flush",
];

const ALL: [Phase; PHASE_COUNT] = [
    Phase::Parse,
    Phase::Explore,
    Phase::Fingerprint,
    Phase::InternClaim,
    Phase::DporBacktrack,
    Phase::TraceWalk,
    Phase::RaceLive,
    Phase::RaceReplay,
    Phase::CacheLookup,
    Phase::Request,
    Phase::QueueWait,
    Phase::Execute,
    Phase::WriteBack,
    Phase::PollCycle,
    Phase::Flush,
];

impl Phase {
    /// The phase's static display name.
    pub const fn name(self) -> &'static str {
        NAMES[self as usize]
    }

    /// Every phase, in slot order.
    pub const fn all() -> [Phase; PHASE_COUNT] {
        ALL
    }
}
