//! The collected result of a recording session, and its two renderings:
//! Chrome trace-event JSON and a human per-phase table.

use crate::counters::counters_snapshot;
use crate::phase::Phase;

/// One recorded span occurrence.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// What the span measured.
    pub phase: Phase,
    /// Recording thread (dense ids starting at 1).
    pub tid: u64,
    /// Start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// One free argument slot (request id, states visited, ...).
    pub arg: u64,
}

/// Exact per-phase aggregate (kept beside the ring, so it is complete
/// even when the ring overflowed and dropped individual events).
#[derive(Clone, Copy, Debug)]
pub struct PhaseSummary {
    /// The phase.
    pub phase: Phase,
    /// Spans recorded.
    pub count: u64,
    /// Total wall time, nanoseconds (children included).
    pub total_ns: u64,
    /// Self time, nanoseconds (children's time subtracted).
    pub self_ns: u64,
}

/// Everything a recording session collected.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Individual span events, per-thread ring order.
    pub events: Vec<TraceEvent>,
    /// `(tid, thread name)` for every thread that recorded.
    pub threads: Vec<(u64, String)>,
    /// Per-phase aggregates, nonzero phases only.
    pub phases: Vec<PhaseSummary>,
    /// Events lost to full rings (the aggregates still count them).
    pub dropped: u64,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds as a microsecond decimal literal (Chrome's `ts`/`dur`
/// unit) without going through floats: `1234` ns → `1.234`.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

impl Profile {
    /// Renders the profile as a Chrome trace-event JSON object: complete
    /// (`"ph":"X"`) events plus thread-name metadata in `traceEvents`,
    /// and the full counter registry snapshot under `otherData` —
    /// loadable in `chrome://tracing` or Perfetto as-is.
    pub fn to_chrome_json(&self) -> String {
        self.to_chrome_json_with_extra("")
    }

    /// [`to_chrome_json`](Profile::to_chrome_json) with extra raw-JSON
    /// members spliced into `otherData` — `extra` must be empty or a
    /// string of `,"key":value` members (the flight recorder uses this
    /// for the dump reason and the recent-log snapshot).
    pub fn to_chrome_json_with_extra(&self, extra: &str) -> String {
        let mut out = String::with_capacity(128 + extra.len() + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for (tid, name) in &self.threads {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                esc(name)
            ));
        }
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"args\":{{\"arg\":{}}}}}",
                e.phase.name(),
                e.tid,
                us(e.start_ns),
                us(e.dur_ns),
                e.arg
            ));
        }
        out.push_str("],\"otherData\":{\"dropped_events\":");
        out.push_str(&self.dropped.to_string());
        for (name, value) in counters_snapshot() {
            out.push_str(&format!(",\"{name}\":{value}"));
        }
        out.push_str(extra);
        out.push_str("}}");
        out
    }

    /// Renders the per-phase aggregate table, heaviest self-time first.
    pub fn render_summary(&self) -> String {
        let mut rows = self.phases.clone();
        rows.sort_by_key(|r| std::cmp::Reverse(r.self_ns));
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>10} {:>12} {:>12} {:>10}\n",
            "phase", "count", "total ms", "self ms", "mean µs"
        ));
        for r in &rows {
            out.push_str(&format!(
                "{:<18} {:>10} {:>12.3} {:>12.3} {:>10.1}\n",
                r.phase.name(),
                r.count,
                r.total_ns as f64 / 1e6,
                r.self_ns as f64 / 1e6,
                if r.count == 0 {
                    0.0
                } else {
                    r.total_ns as f64 / 1e3 / r.count as f64
                },
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "({} events dropped to full buffers; aggregates above are exact)\n",
                self.dropped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_shape_and_summary() {
        let p = Profile {
            events: vec![TraceEvent {
                phase: Phase::Parse,
                tid: 1,
                start_ns: 1_234,
                dur_ns: 5_678,
                arg: 7,
            }],
            threads: vec![(1, "main".into())],
            phases: vec![PhaseSummary {
                phase: Phase::Parse,
                count: 1,
                total_ns: 5_678,
                self_ns: 5_678,
            }],
            dropped: 0,
        };
        let json = p.to_chrome_json();
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"parse\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.234"));
        assert!(json.contains("\"dur\":5.678"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"dropped_events\":0"));
        let summary = p.render_summary();
        assert!(summary.contains("parse"));
    }
}
