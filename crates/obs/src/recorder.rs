//! The span recording machinery: per-thread single-writer rings, the
//! thread-local span stack (for self-time attribution), and the global
//! [`Recorder`] that turns it all into a [`Profile`].
//!
//! Concurrency story, in full:
//!
//! * Each thread owns one [`ThreadRing`]. Only the owner writes slots
//!   and the length; slot words are `Relaxed` stores published by one
//!   `Release` store of the new length, so a drainer that reads the
//!   length `Acquire` sees fully-written slots. The ring never wraps —
//!   a full ring drops the event and counts it — so a drain can never
//!   observe a torn, half-overwritten slot.
//! * Rings are `Arc`-shared with a global registry and therefore
//!   outlive their thread; a worker that exits before
//!   [`Recorder::stop_and_collect`] still gets drained.
//! * Recording is gated by one `Relaxed` load of [`enabled`]. The
//!   disabled path performs no clock read and no allocation.

use std::cell::{OnceCell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::counters::{counter_add, Counter};
use crate::phase::{Phase, PHASE_COUNT};
use crate::profile::{PhaseSummary, Profile, TraceEvent};

/// Events one thread can buffer per session before dropping.
const RING_CAPACITY: usize = 8192;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static RINGS: Mutex<Vec<Arc<ThreadRing>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// True while a [`Recorder`] session is active.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Nanoseconds since the process-wide monotonic epoch (first use).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

struct Slot {
    phase: AtomicU64,
    start: AtomicU64,
    dur: AtomicU64,
    arg: AtomicU64,
}

struct PhaseAgg {
    count: AtomicU64,
    total_ns: AtomicU64,
    self_ns: AtomicU64,
}

struct ThreadRing {
    tid: u64,
    name: String,
    len: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[Slot]>,
    agg: [PhaseAgg; PHASE_COUNT],
}

impl ThreadRing {
    fn new() -> ThreadRing {
        ThreadRing {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            name: std::thread::current()
                .name()
                .unwrap_or("worker")
                .to_string(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..RING_CAPACITY)
                .map(|_| Slot {
                    phase: AtomicU64::new(0),
                    start: AtomicU64::new(0),
                    dur: AtomicU64::new(0),
                    arg: AtomicU64::new(0),
                })
                .collect(),
            agg: std::array::from_fn(|_| PhaseAgg {
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                self_ns: AtomicU64::new(0),
            }),
        }
    }

    /// Owner-side append. `Relaxed` slot writes, `Release` publish.
    fn push(&self, phase: Phase, start_ns: u64, dur_ns: u64, arg: u64) {
        let a = &self.agg[phase as usize];
        a.count.fetch_add(1, Ordering::Relaxed);
        a.total_ns.fetch_add(dur_ns, Ordering::Relaxed);
        let i = self.len.load(Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            counter_add(Counter::SpansDropped, 1);
            return;
        }
        let s = &self.slots[i];
        s.phase.store(phase as u64, Ordering::Relaxed);
        s.start.store(start_ns, Ordering::Relaxed);
        s.dur.store(dur_ns, Ordering::Relaxed);
        s.arg.store(arg, Ordering::Relaxed);
        self.len.store(i + 1, Ordering::Release);
    }

    fn add_self(&self, phase: Phase, self_ns: u64) {
        self.agg[phase as usize]
            .self_ns
            .fetch_add(self_ns, Ordering::Relaxed);
    }
}

thread_local! {
    static RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
    /// Per-open-span accumulator of child durations, for self-time.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn with_ring(f: impl FnOnce(&ThreadRing)) {
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(ThreadRing::new());
            RINGS.lock().unwrap().push(Arc::clone(&ring));
            ring
        });
        f(ring)
    });
}

/// An open span; the measurement lands when it drops. Obtain with
/// [`span`] / [`span_arg`].
pub struct SpanGuard {
    phase: Phase,
    start_ns: u64,
    arg: u64,
    live: bool,
}

/// Opens a span of `phase` on this thread. Inert (one relaxed load)
/// unless a [`Recorder`] session is active.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    span_arg(phase, 0)
}

/// [`span`] with the free argument slot filled. Live while a profiling
/// session *or* the flight recorder is active; which sinks receive the
/// measurement is decided at drop.
#[inline]
pub fn span_arg(phase: Phase, arg: u64) -> SpanGuard {
    if !enabled() && !crate::flight::active() {
        return SpanGuard {
            phase,
            start_ns: 0,
            arg,
            live: false,
        };
    }
    STACK.with(|s| s.borrow_mut().push(0));
    SpanGuard {
        phase,
        start_ns: now_ns(),
        arg,
        live: true,
    }
}

impl SpanGuard {
    /// Overwrites the span's argument slot (e.g. with a result count
    /// known only at the end).
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        // Pop this span's child accumulator; credit our duration to the
        // parent's, so the parent's self-time excludes us.
        let child_ns = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let child = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent += dur_ns;
            }
            child
        });
        let phase = self.phase;
        let (start_ns, arg) = (self.start_ns, self.arg);
        if enabled() {
            with_ring(|ring| {
                ring.push(phase, start_ns, dur_ns, arg);
                ring.add_self(phase, dur_ns.saturating_sub(child_ns));
            });
        }
        if crate::flight::active() {
            crate::flight::record_span(phase, start_ns, dur_ns, arg);
        }
    }
}

/// Records one already-measured event (explicit start and duration) on
/// the current thread — for cross-thread measurements like queue-wait,
/// where the interval's endpoints were stamped by different actors. Does
/// not participate in self-time nesting.
#[inline]
pub fn event(phase: Phase, start_ns: u64, dur_ns: u64, arg: u64) {
    if enabled() {
        with_ring(|ring| {
            ring.push(phase, start_ns, dur_ns, arg);
            ring.add_self(phase, dur_ns);
        });
    }
    if crate::flight::active() {
        crate::flight::record_span(phase, start_ns, dur_ns, arg);
    }
}

/// The process-global recording session handle.
///
/// `install` / `stop_and_collect` are meant to bracket a single-owner
/// session (a CLI run, a benchmark lane): `install` resets every
/// registered ring, so it must not race in-flight spans.
pub struct Recorder;

impl Recorder {
    /// Starts a session: resets previously-registered rings and enables
    /// span recording process-wide. Counters are *not* reset (they are
    /// always-on; diff snapshots instead).
    pub fn install() {
        let _ = EPOCH.get_or_init(Instant::now);
        for ring in RINGS.lock().unwrap().iter() {
            ring.len.store(0, Ordering::Relaxed);
            ring.dropped.store(0, Ordering::Relaxed);
            for a in &ring.agg {
                a.count.store(0, Ordering::Relaxed);
                a.total_ns.store(0, Ordering::Relaxed);
                a.self_ns.store(0, Ordering::Relaxed);
            }
        }
        ACTIVE.store(true, Ordering::SeqCst);
    }

    /// True while a session is active.
    pub fn active() -> bool {
        enabled()
    }

    /// Ends the session and drains every thread ring into a [`Profile`].
    /// Spans still open on other threads when this runs finish recording
    /// harmlessly but may miss the drain.
    pub fn stop_and_collect() -> Profile {
        ACTIVE.store(false, Ordering::SeqCst);
        let mut profile = Profile::default();
        let mut agg = [(0u64, 0u64, 0u64); PHASE_COUNT];
        for ring in RINGS.lock().unwrap().iter() {
            profile.threads.push((ring.tid, ring.name.clone()));
            profile.dropped += ring.dropped.load(Ordering::Relaxed);
            let len = ring.len.load(Ordering::Acquire).min(ring.slots.len());
            for s in &ring.slots[..len] {
                let phase_idx = s.phase.load(Ordering::Relaxed) as usize;
                let phase = Phase::all()[phase_idx.min(PHASE_COUNT - 1)];
                profile.events.push(TraceEvent {
                    phase,
                    tid: ring.tid,
                    start_ns: s.start.load(Ordering::Relaxed),
                    dur_ns: s.dur.load(Ordering::Relaxed),
                    arg: s.arg.load(Ordering::Relaxed),
                });
            }
            for (i, a) in ring.agg.iter().enumerate() {
                agg[i].0 += a.count.load(Ordering::Relaxed);
                agg[i].1 += a.total_ns.load(Ordering::Relaxed);
                agg[i].2 += a.self_ns.load(Ordering::Relaxed);
            }
        }
        for (i, (count, total_ns, self_ns)) in agg.into_iter().enumerate() {
            if count > 0 {
                profile.phases.push(PhaseSummary {
                    phase: Phase::all()[i],
                    count,
                    total_ns,
                    self_ns,
                });
            }
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test drives the whole session lifecycle: the recorder is
    // process-global, so independent #[test]s would race each other's
    // install/stop.
    #[test]
    fn session_records_spans_events_and_self_time() {
        assert!(!enabled());
        drop(span(Phase::Parse)); // inert: no session
        Recorder::install();
        assert!(Recorder::active());
        {
            let _outer = span_arg(Phase::Explore, 42);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span(Phase::Fingerprint);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        event(Phase::QueueWait, 10, 20, 7);
        let t = std::thread::Builder::new()
            .name("obs-test-worker".into())
            .spawn(|| drop(span(Phase::Parse)))
            .unwrap();
        t.join().unwrap();
        let profile = Recorder::stop_and_collect();
        assert!(!enabled());

        let find = |p: Phase| profile.phases.iter().find(|s| s.phase == p);
        let explore = find(Phase::Explore).expect("explore recorded");
        let fp = find(Phase::Fingerprint).expect("fingerprint recorded");
        assert_eq!(explore.count, 1);
        // Self-time excludes the nested fingerprint span.
        assert!(explore.self_ns < explore.total_ns);
        assert!(explore.total_ns >= fp.total_ns);
        assert!(find(Phase::QueueWait).is_some());
        assert!(find(Phase::Parse).is_some(), "other-thread span drained");
        assert!(profile.threads.len() >= 2);
        assert!(profile
            .events
            .iter()
            .any(|e| e.phase == Phase::Explore && e.arg == 42));
        // Spans after stop are inert again.
        drop(span(Phase::Parse));
        let p2 = Recorder::stop_and_collect();
        assert!(p2.events.len() <= profile.events.len());
    }
}
