//! Structured tracing and counters for the bdrst stack, std-only.
//!
//! Two layers, deliberately different in cost:
//!
//! * **Counters** ([`Counter`]) — a process-global fixed-slot registry of
//!   relaxed `AtomicU64`s, *always on*. One relaxed increment per event
//!   is noise next to a transition-semantics step, and keeping them
//!   unconditional is what lets the zero-probe warm/replay test suites
//!   assert on them in every build. Monotone gauges (frontier high-water,
//!   interner occupancy) live here too, via [`counter_max`].
//! * **Spans** ([`span`], [`event`]) — per-thread fixed-capacity event
//!   buffers behind a process-global [`Recorder`]. Recording is gated by
//!   one relaxed [`enabled`] load: until [`Recorder::install`] runs, a
//!   span entry point is a load and a branch — **no allocation, no
//!   clock read** — so the engine's allocs-per-visit bar is untouched by
//!   the instrumentation. With the `record` cargo feature off the span
//!   layer compiles away entirely (identical API, unit types).
//!
//! When recording, each thread appends to its own single-writer ring
//! (`Relaxed` slot stores published by one `Release` length store — the
//! draining [`Recorder`] reads lengths `Acquire`); a full ring drops new
//! events and counts the drops rather than wrapping, so a drained buffer
//! never tears. Exact per-phase aggregates (count / total / self time)
//! are kept in always-written atomics beside the ring, immune to
//! overflow, which is what the human summary reports. Timestamps come
//! from one process-wide monotonic epoch ([`now_ns`]).
//!
//! [`Recorder::stop_and_collect`] drains everything into a [`Profile`],
//! exportable as Chrome trace-event JSON (`chrome://tracing` / Perfetto
//! loadable) or rendered as a per-phase table.
//!
//! Three live-introspection layers ride the same machinery:
//!
//! * [`log`] — a structured JSON-lines logger (levels, per-target rate
//!   limiting, rename-based rotation), gated by one relaxed load.
//! * [`flight`] — an always-on bounded ring of recent spans that dumps
//!   a Chrome-trace + recent-log snapshot on anomaly (slow request,
//!   worker panic, explicit `dump` command). Span sites feed it
//!   whenever it is installed, with or without a profiling session.
//! * [`progress_tick`] — engine progress ticks every N visited states
//!   to an installable [`ProgressSink`] (CLI `--progress`, the server's
//!   `status` command).

mod counters;
pub mod flight;
pub mod log;
mod phase;
mod profile;
mod progress;

pub use counters::{
    counter_add, counter_get, counter_max, counters_reset, counters_snapshot, Counter,
    COUNTER_COUNT,
};
pub use phase::{Phase, PHASE_COUNT};
pub use profile::{PhaseSummary, Profile, TraceEvent};
pub use progress::{
    clear_progress_sink, install_progress_sink, progress_tick, Progress, ProgressSink,
};

#[cfg(feature = "record")]
mod recorder;
#[cfg(feature = "record")]
pub use recorder::{enabled, event, now_ns, span, span_arg, Recorder, SpanGuard};

#[cfg(not(feature = "record"))]
mod noop;
#[cfg(not(feature = "record"))]
pub use noop::{enabled, event, now_ns, span, span_arg, Recorder, SpanGuard};
