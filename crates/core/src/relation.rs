//! Finite binary relations as bit-matrices, with the relational algebra
//! used throughout the paper (§6–§7): union, composition `R₁;R₂`,
//! transpose `R⁻¹`, reflexive closure `R?`, transitive closure `R⁺`,
//! acyclicity and irreflexivity checks.

use std::fmt;

/// A binary relation over `{0, …, n-1}`, stored as a dense bit-matrix.
///
/// # Examples
///
/// ```
/// use bdrst_core::relation::Relation;
///
/// let mut r = Relation::new(3);
/// r.insert(0, 1);
/// r.insert(1, 2);
/// let tc = r.transitive_closure();
/// assert!(tc.contains(0, 2));
/// assert!(r.is_acyclic());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Relation {
    /// The empty relation over `n` elements.
    pub fn new(n: usize) -> Relation {
        let words_per_row = n.div_ceil(64).max(1);
        Relation {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// The identity relation over `n` elements.
    pub fn identity(n: usize) -> Relation {
        let mut r = Relation::new(n);
        for i in 0..n {
            r.insert(i, i);
        }
        r
    }

    /// Builds a relation from edge pairs.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Relation {
        let mut r = Relation::new(n);
        for (a, b) in edges {
            r.insert(a, b);
        }
        r
    }

    /// The number of elements of the carrier set.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Adds the pair `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= n` or `b >= n`.
    pub fn insert(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "relation index out of range");
        self.bits[a * self.words_per_row + b / 64] |= 1u64 << (b % 64);
    }

    /// Removes the pair `(a, b)` if present.
    pub fn remove(&mut self, a: usize, b: usize) {
        if a < self.n && b < self.n {
            self.bits[a * self.words_per_row + b / 64] &= !(1u64 << (b % 64));
        }
    }

    /// True iff `(a, b)` is in the relation.
    pub fn contains(&self, a: usize, b: usize) -> bool {
        a < self.n
            && b < self.n
            && self.bits[a * self.words_per_row + b / 64] & (1u64 << (b % 64)) != 0
    }

    /// Iterates over all pairs in the relation.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |a| {
            (0..self.n).filter_map(move |b| self.contains(a, b).then_some((a, b)))
        })
    }

    /// The number of pairs in the relation.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the relation has no pairs.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Union `R₁ ∪ R₂`.
    ///
    /// # Panics
    ///
    /// Panics if the carrier sizes differ.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "union of relations over different sets");
        let mut r = self.clone();
        for (w, o) in r.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
        r
    }

    /// In-place union `self ← self ∪ other`.
    pub fn union_assign(&mut self, other: &Relation) {
        assert_eq!(self.n, other.n, "union of relations over different sets");
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
    }

    /// Intersection `R₁ ∩ R₂`.
    ///
    /// # Panics
    ///
    /// Panics if the carrier sizes differ.
    pub fn intersect(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "intersection over different sets");
        let mut r = self.clone();
        for (w, o) in r.bits.iter_mut().zip(&other.bits) {
            *w &= o;
        }
        r
    }

    /// Difference `R₁ \ R₂`.
    ///
    /// # Panics
    ///
    /// Panics if the carrier sizes differ.
    pub fn minus(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "difference over different sets");
        let mut r = self.clone();
        for (w, o) in r.bits.iter_mut().zip(&other.bits) {
            *w &= !o;
        }
        r
    }

    /// Relational composition `R₁ ; R₂`: `a (R₁;R₂) c` iff ∃b. `a R₁ b R₂ c`.
    ///
    /// # Panics
    ///
    /// Panics if the carrier sizes differ.
    pub fn compose(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "composition over different sets");
        let mut r = Relation::new(self.n);
        for a in 0..self.n {
            for b in 0..self.n {
                if self.contains(a, b) {
                    // row(r, a) |= row(other, b)
                    let (ra, rb) = (a * self.words_per_row, b * self.words_per_row);
                    for w in 0..self.words_per_row {
                        let v = other.bits[rb + w];
                        r.bits[ra + w] |= v;
                    }
                }
            }
        }
        r
    }

    /// Transpose `R⁻¹`.
    pub fn transpose(&self) -> Relation {
        let mut r = Relation::new(self.n);
        for (a, b) in self.iter() {
            r.insert(b, a);
        }
        r
    }

    /// Reflexive closure `R? = R ∪ 1`.
    pub fn reflexive(&self) -> Relation {
        self.union(&Relation::identity(self.n))
    }

    /// Transitive closure `R⁺` (Floyd–Warshall over bit-rows).
    pub fn transitive_closure(&self) -> Relation {
        let mut r = self.clone();
        for k in 0..self.n {
            for a in 0..self.n {
                if r.contains(a, k) {
                    let (ra, rk) = (a * self.words_per_row, k * self.words_per_row);
                    for w in 0..self.words_per_row {
                        let v = r.bits[rk + w];
                        r.bits[ra + w] |= v;
                    }
                }
            }
        }
        r
    }

    /// Reflexive-transitive closure `R*`.
    pub fn reflexive_transitive_closure(&self) -> Relation {
        self.transitive_closure().reflexive()
    }

    /// True iff the relation contains no pair `(a, a)`.
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|a| !self.contains(a, a))
    }

    /// True iff the relation's transitive closure is irreflexive, i.e. the
    /// relation (viewed as a graph) has no cycles.
    pub fn is_acyclic(&self) -> bool {
        self.transitive_closure().is_irreflexive()
    }

    /// Restricts the relation to pairs satisfying `keep`.
    pub fn filter(&self, mut keep: impl FnMut(usize, usize) -> bool) -> Relation {
        let mut r = Relation::new(self.n);
        for (a, b) in self.iter() {
            if keep(a, b) {
                r.insert(a, b);
            }
        }
        r
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset(&self, other: &Relation) -> bool {
        assert_eq!(self.n, other.n, "subset over different sets");
        self.bits.iter().zip(&other.bits).all(|(w, o)| w & !o == 0)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, b)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}→{b}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut r = Relation::new(4);
        assert!(r.is_empty());
        r.insert(1, 3);
        assert!(r.contains(1, 3));
        assert!(!r.contains(3, 1));
        assert_eq!(r.len(), 1);
        r.remove(1, 3);
        assert!(r.is_empty());
    }

    #[test]
    fn composition() {
        let r1 = Relation::from_edges(4, [(0, 1), (1, 2)]);
        let r2 = Relation::from_edges(4, [(1, 3), (2, 0)]);
        let c = r1.compose(&r2);
        assert!(c.contains(0, 3)); // 0 →r1 1 →r2 3
        assert!(c.contains(1, 0)); // 1 →r1 2 →r2 0
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn transitive_closure_chains() {
        let r = Relation::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let tc = r.transitive_closure();
        assert!(tc.contains(0, 4));
        assert!(!tc.contains(4, 0));
        assert!(r.is_acyclic());
    }

    #[test]
    fn cycles_detected() {
        let r = Relation::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(!r.is_acyclic());
        assert!(r.is_irreflexive()); // no self-loop before closure
        assert!(!r.transitive_closure().is_irreflexive());
    }

    #[test]
    fn set_operations() {
        let r1 = Relation::from_edges(3, [(0, 1), (1, 2)]);
        let r2 = Relation::from_edges(3, [(1, 2), (2, 0)]);
        assert_eq!(r1.union(&r2).len(), 3);
        assert_eq!(r1.intersect(&r2).len(), 1);
        assert_eq!(r1.minus(&r2).len(), 1);
        assert!(r1.intersect(&r2).is_subset(&r1));
        assert!(r1.is_subset(&r1.union(&r2)));
    }

    #[test]
    fn transpose_and_reflexive() {
        let r = Relation::from_edges(3, [(0, 2)]);
        assert!(r.transpose().contains(2, 0));
        let refl = r.reflexive();
        assert!(refl.contains(1, 1) && refl.contains(0, 2));
    }

    #[test]
    fn composition_identity_law() {
        // R1?;R2 = (R1;R2) ∪ R2 (§7 notation note).
        let r1 = Relation::from_edges(4, [(0, 1)]);
        let r2 = Relation::from_edges(4, [(1, 2), (3, 0)]);
        let lhs = r1.reflexive().compose(&r2);
        let rhs = r1.compose(&r2).union(&r2);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn large_carrier_multiword_rows() {
        let n = 130;
        let mut r = Relation::new(n);
        for i in 0..n - 1 {
            r.insert(i, i + 1);
        }
        let tc = r.transitive_closure();
        assert!(tc.contains(0, n - 1));
        assert!(r.is_acyclic());
        assert_eq!(r.len(), n - 1);
    }
}
