//! A persistent fixed-arity radix map over dense `u32` keys, with
//! per-node memoized content digests.
//!
//! This is the spine of [`crate::store::Store`]. The exploration engines
//! fork a store at every nondeterministic step, so the map is built for
//! exactly that access pattern:
//!
//! * **`clone` is a refcount bump** — the root is a single [`Arc`]-backed
//!   entry, so aliasing a map costs one atomic increment.
//! * **`update` is an O(log n) path copy** — only the nodes on the path
//!   from the root to the written leaf are reallocated (one `Arc<[Entry]>`
//!   per level plus the fresh leaf). Everything off the path — every
//!   sibling subtree — keeps pointing at the *same* allocations as the
//!   parent map, so sibling branches of a DFS/DPOR tree structurally share
//!   all unwritten locations. The fanout is [`FANOUT`] = 8: small enough
//!   that a path copy touches few pointers, large enough that a
//!   256-location store is only three levels deep.
//! * **digests are memoized per entry** — every entry (leaf or interior
//!   node) carries a lazily computed 64-bit digest of its subtree's
//!   *content* (via the [`ContentDigest`] impl of the value type). A path
//!   copy clears the digests on the copied path only; the untouched
//!   sibling entries keep their memoized digests, because `Entry::clone`
//!   carries the cached value along with the pointer. Recombining a root
//!   digest after an update therefore rehashes O(fanout · depth) cached
//!   words instead of re-streaming every value in the map — this is what
//!   makes `canonical_fingerprint` incremental (see
//!   [`crate::engine::canonical_fingerprint`]).
//!
//! Keys are *dense* indexes `0..len`: the map is created at a fixed size
//! ([`PMap::from_values`]) and [`PMap::update`] replaces existing slots —
//! it never inserts or removes. (Stores are sized by the program's
//! declared [`crate::loc::LocSet`] and only ever rewrite one location per
//! memory rule.) That makes the tree shape a pure function of `len`, so
//! two maps with equal length and equal contents are structurally
//! identical, iteration is in ascending key order, and no hashing of keys
//! is needed — the "H" of HAMT without the hash, because dense keys are
//! already perfect.
//!
//! Digest memoization is observable through [`digest_counters`]: the
//! bench's store lane reads the hit/miss split to prove fingerprints are
//! recombined, not recomputed.

use std::fmt;
use std::sync::{Arc, OnceLock};

/// Bits of key consumed per tree level.
const BITS: u32 = 3;

/// Children per interior node (`1 << BITS`).
pub const FANOUT: usize = 1 << BITS;

/// A 64-bit digest of a value's *canonical content*, combined into
/// per-subtree digests by [`PMap::content_digest`].
///
/// Implementations must be pure functions of the value's content and
/// deterministic across processes (use
/// [`std::collections::hash_map::DefaultHasher`] with its default keys,
/// like the rest of the engine's hashing). Equal content must produce
/// equal digests; distinct content should differ with probability
/// ~2⁻⁶⁴ — collisions are tolerated by every consumer (the interners
/// verify equality behind fingerprints).
pub trait ContentDigest {
    /// The value's canonical content digest.
    fn content_digest(&self) -> u64;
}

/// Process-wide digest memoization counters: `(hits, misses)`. A *hit* is
/// an entry whose digest was already memoized when asked for; a *miss*
/// computed (and cached) it. The bench's store lane snapshots these
/// around a workload to report the incremental-fingerprint hit rate.
/// Backed by the shared [`bdrst_obs`] counter registry, so profiles and
/// server gauges read the same pair.
pub fn digest_counters() -> (u64, u64) {
    (
        bdrst_obs::counter_get(bdrst_obs::Counter::DigestHits),
        bdrst_obs::counter_get(bdrst_obs::Counter::DigestMisses),
    )
}

/// What an entry points at: a value, or an interior node of entries.
enum Kind<V> {
    Leaf(Arc<V>),
    Node(Arc<[Entry<V>]>),
}

impl<V> Clone for Kind<V> {
    fn clone(&self) -> Kind<V> {
        match self {
            Kind::Leaf(v) => Kind::Leaf(Arc::clone(v)),
            Kind::Node(c) => Kind::Node(Arc::clone(c)),
        }
    }
}

/// One slot of an interior node (or the root): the subtree pointer plus
/// its memoized content digest. Cloning an entry clones the *cached
/// digest along with the pointer* — the content behind the pointer cannot
/// change (persistence), so the memo stays valid across any number of
/// path copies that keep the subtree shared.
struct Entry<V> {
    kind: Kind<V>,
    digest: OnceLock<u64>,
}

impl<V> Entry<V> {
    fn leaf(v: Arc<V>) -> Entry<V> {
        Entry {
            kind: Kind::Leaf(v),
            digest: OnceLock::new(),
        }
    }

    fn node(children: Arc<[Entry<V>]>) -> Entry<V> {
        Entry {
            kind: Kind::Node(children),
            digest: OnceLock::new(),
        }
    }
}

impl<V> Clone for Entry<V> {
    fn clone(&self) -> Entry<V> {
        Entry {
            kind: self.kind.clone(),
            digest: self.digest.clone(),
        }
    }
}

/// A persistent radix map from dense `u32` keys to `V`. See the module
/// docs for the cost model.
///
/// # Examples
///
/// ```
/// use bdrst_core::pmap::PMap;
///
/// let mut m: PMap<i64> = (0..100).collect();
/// let snapshot = m.clone(); // refcount bump
/// m.update(42, -1); // O(log n) path copy
/// assert_eq!(*m.get(42).unwrap(), -1);
/// assert_eq!(*snapshot.get(42).unwrap(), 42); // snapshot unaffected
/// ```
pub struct PMap<V> {
    root: Option<Entry<V>>,
    len: usize,
    /// Interior-node levels above the leaves (0 ⇔ the root is a leaf).
    height: u32,
}

impl<V> Clone for PMap<V> {
    fn clone(&self) -> PMap<V> {
        PMap {
            root: self.root.clone(),
            len: self.len,
            height: self.height,
        }
    }
}

impl<V> PMap<V> {
    /// An empty map.
    pub fn new() -> PMap<V> {
        PMap {
            root: None,
            len: 0,
            height: 0,
        }
    }

    /// Builds a map of the values in key order (`values[i]` keyed by `i`).
    pub fn from_values<I: IntoIterator<Item = V>>(values: I) -> PMap<V> {
        let mut level: Vec<Entry<V>> = values
            .into_iter()
            .map(|v| Entry::leaf(Arc::new(v)))
            .collect();
        let len = level.len();
        if len == 0 {
            return PMap::new();
        }
        let mut height = 0;
        while level.len() > 1 {
            level = level
                .chunks(FANOUT)
                .map(|c| Entry::node(c.iter().cloned().collect()))
                .collect();
            height += 1;
        }
        PMap {
            root: level.pop(),
            len,
            height,
        }
    }

    /// Number of keys (fixed at construction).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for the zero-key map.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value at `key`, or `None` when `key >= len`.
    pub fn get(&self, key: u32) -> Option<&V> {
        if key as usize >= self.len {
            return None;
        }
        let mut entry = self.root.as_ref()?;
        let mut key = key;
        let mut h = self.height;
        loop {
            match &entry.kind {
                Kind::Leaf(v) => return Some(&**v),
                Kind::Node(children) => {
                    let shift = BITS * (h - 1);
                    entry = &children[(key >> shift) as usize];
                    key &= (1u32 << shift) - 1;
                    h -= 1;
                }
            }
        }
    }

    /// Replaces the value at `key` by path copy: the entries from the root
    /// to the leaf are freshly allocated (digests unset), every sibling
    /// entry is cloned — pointer and memoized digest — so the off-path
    /// subtrees stay shared with every alias of the pre-update map.
    ///
    /// # Panics
    ///
    /// Panics if `key >= len`: the map never grows.
    pub fn update(&mut self, key: u32, value: V) {
        assert!((key as usize) < self.len, "pmap key {key} out of range");
        let root = self.root.as_ref().expect("nonempty map has a root");
        self.root = Some(Self::update_entry(root, key, self.height, Arc::new(value)));
    }

    fn update_entry(entry: &Entry<V>, key: u32, h: u32, value: Arc<V>) -> Entry<V> {
        if h == 0 {
            return Entry::leaf(value);
        }
        let Kind::Node(children) = &entry.kind else {
            unreachable!("interior levels hold nodes");
        };
        let shift = BITS * (h - 1);
        let idx = (key >> shift) as usize;
        let mut replaced = Some(Self::update_entry(
            &children[idx],
            key & ((1u32 << shift) - 1),
            h - 1,
            value,
        ));
        // A single exact-size allocation for the copied level: sibling
        // entries are cloned (Arc bump + digest memo), the one on-path
        // slot takes the freshly built child.
        let copied: Arc<[Entry<V>]> = children
            .iter()
            .enumerate()
            .map(|(i, e)| {
                if i == idx {
                    replaced.take().expect("one slot replaced")
                } else {
                    e.clone()
                }
            })
            .collect();
        Entry::node(copied)
    }

    /// True iff both maps share the same root allocation: a `clone` no
    /// `update` has diverged yet. (Structural equality of shared subtrees
    /// below a diverged root is checked per-slot by callers via
    /// [`std::ptr::eq`] on [`PMap::get`] references.)
    pub fn ptr_eq(&self, other: &PMap<V>) -> bool {
        match (&self.root, &other.root) {
            (None, None) => true,
            (Some(a), Some(b)) => match (&a.kind, &b.kind) {
                (Kind::Leaf(x), Kind::Leaf(y)) => Arc::ptr_eq(x, y),
                (Kind::Node(x), Kind::Node(y)) => Arc::ptr_eq(x, y),
                _ => false,
            },
            _ => false,
        }
    }

    /// Iterates the values in ascending key order.
    pub fn iter(&self) -> Iter<'_, V> {
        let mut it = Iter {
            stack: Vec::new(),
            root_leaf: None,
        };
        match &self.root {
            None => {}
            Some(Entry {
                kind: Kind::Leaf(v),
                ..
            }) => it.root_leaf = Some(&**v),
            Some(Entry {
                kind: Kind::Node(children),
                ..
            }) => it.stack.push(children.iter()),
        }
        it
    }
}

impl<V> Default for PMap<V> {
    fn default() -> PMap<V> {
        PMap::new()
    }
}

impl<V> FromIterator<V> for PMap<V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> PMap<V> {
        PMap::from_values(iter)
    }
}

impl<V: ContentDigest> PMap<V> {
    /// The digest of the whole map's content: a deterministic 64-bit hash
    /// of `(len, per-key content digests)`, recombined from the memoized
    /// per-subtree digests. After an `update`, only the O(log n) fresh
    /// path entries (and their O(fanout · depth) cached sibling words)
    /// are rehashed; shared subtrees answer from their memo.
    pub fn content_digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        let mut h = DefaultHasher::new();
        h.write_usize(self.len);
        if let Some(root) = &self.root {
            h.write_u64(Self::entry_digest(root));
        }
        h.finish()
    }

    fn entry_digest(e: &Entry<V>) -> u64 {
        if let Some(d) = e.digest.get() {
            bdrst_obs::counter_add(bdrst_obs::Counter::DigestHits, 1);
            return *d;
        }
        bdrst_obs::counter_add(bdrst_obs::Counter::DigestMisses, 1);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        let mut h = DefaultHasher::new();
        match &e.kind {
            Kind::Leaf(v) => {
                h.write_u8(0);
                h.write_u64(v.content_digest());
            }
            Kind::Node(children) => {
                h.write_u8(1);
                h.write_usize(children.len());
                for c in children.iter() {
                    h.write_u64(Self::entry_digest(c));
                }
            }
        }
        let d = h.finish();
        *e.digest.get_or_init(|| d)
    }
}

fn entry_eq<V: PartialEq>(a: &Entry<V>, b: &Entry<V>) -> bool {
    match (&a.kind, &b.kind) {
        (Kind::Leaf(x), Kind::Leaf(y)) => Arc::ptr_eq(x, y) || **x == **y,
        (Kind::Node(x), Kind::Node(y)) => {
            Arc::ptr_eq(x, y)
                || (x.len() == y.len() && x.iter().zip(y.iter()).all(|(a, b)| entry_eq(a, b)))
        }
        // Equal-length maps are structurally identical (shape is a pure
        // function of len), so mixed kinds can only mean unequal maps.
        _ => false,
    }
}

impl<V: PartialEq> PartialEq for PMap<V> {
    fn eq(&self, other: &PMap<V>) -> bool {
        self.len == other.len
            && match (&self.root, &other.root) {
                (None, None) => true,
                (Some(a), Some(b)) => entry_eq(a, b),
                _ => false,
            }
    }
}

impl<V: Eq> Eq for PMap<V> {}

impl<V: fmt::Debug> fmt::Debug for PMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Ascending-key iterator over a [`PMap`]'s values.
pub struct Iter<'a, V> {
    stack: Vec<std::slice::Iter<'a, Entry<V>>>,
    root_leaf: Option<&'a V>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = &'a V;

    fn next(&mut self) -> Option<&'a V> {
        if let Some(v) = self.root_leaf.take() {
            return Some(v);
        }
        loop {
            let it = self.stack.last_mut()?;
            match it.next() {
                None => {
                    self.stack.pop();
                }
                Some(e) => match &e.kind {
                    Kind::Leaf(v) => return Some(&**v),
                    Kind::Node(children) => self.stack.push(children.iter()),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl ContentDigest for i64 {
        fn content_digest(&self) -> u64 {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::Hasher;
            let mut h = DefaultHasher::new();
            h.write_i64(*self);
            h.finish()
        }
    }

    fn build(n: usize) -> PMap<i64> {
        (0..n as i64).collect()
    }

    #[test]
    fn get_reads_back_every_size() {
        for n in [0usize, 1, 2, 7, 8, 9, 63, 64, 65, 256, 300] {
            let m = build(n);
            assert_eq!(m.len(), n);
            assert_eq!(m.is_empty(), n == 0);
            for k in 0..n {
                assert_eq!(m.get(k as u32), Some(&(k as i64)), "n={n} k={k}");
            }
            assert_eq!(m.get(n as u32), None);
        }
    }

    #[test]
    fn iter_is_ascending_key_order() {
        for n in [0usize, 1, 5, 8, 9, 64, 65, 200] {
            let m = build(n);
            let got: Vec<i64> = m.iter().copied().collect();
            let want: Vec<i64> = (0..n as i64).collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn update_is_persistent() {
        for n in [1usize, 8, 9, 64, 65, 256] {
            let base = build(n);
            for k in [0usize, n / 2, n - 1] {
                let mut m = base.clone();
                assert!(m.ptr_eq(&base));
                m.update(k as u32, -7);
                assert!(!m.ptr_eq(&base));
                assert_eq!(m.get(k as u32), Some(&-7));
                assert_eq!(base.get(k as u32), Some(&(k as i64)), "base mutated");
                for j in 0..n {
                    if j != k {
                        assert_eq!(m.get(j as u32), Some(&(j as i64)));
                        // Off-path values share the very allocation.
                        assert!(std::ptr::eq(
                            m.get(j as u32).unwrap(),
                            base.get(j as u32).unwrap()
                        ));
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_never_grows() {
        let mut m = build(4);
        m.update(4, 0);
    }

    #[test]
    fn equality_is_structural() {
        let a = build(70);
        let mut b = build(70);
        assert_eq!(a, b);
        b.update(69, -1);
        assert_ne!(a, b);
        b.update(69, 69);
        assert_eq!(a, b);
        assert_ne!(build(8), build(9));
    }

    #[test]
    fn content_digest_is_content_addressed() {
        // Equal content ⇒ equal digest, however the maps were built.
        let a = build(100);
        let mut b = build(100);
        b.update(3, -5);
        b.update(90, -6);
        b.update(3, 3);
        b.update(90, 90);
        assert_eq!(a.content_digest(), b.content_digest());
        // Distinct content ⇒ distinct digest (w.h.p.; deterministic here).
        b.update(50, -1);
        assert_ne!(a.content_digest(), b.content_digest());
        // Length is part of the digest.
        assert_ne!(build(8).content_digest(), build(9).content_digest());
    }

    #[test]
    fn digests_are_memoized_across_path_copies() {
        // (Asserted structurally, not via `digest_counters` — the counters
        // are process-global and other tests bump them concurrently.)
        let a = build(256);
        let d1 = a.content_digest();
        assert_eq!(a.content_digest(), d1);
        assert!(
            a.root.as_ref().unwrap().digest.get().is_some(),
            "root digest not memoized"
        );
        let mut b = a.clone();
        b.update(17, -1);
        // The copied path has fresh (unset) memos; every off-path sibling
        // kept the digest it computed under `a`.
        let root = b.root.as_ref().unwrap();
        assert!(root.digest.get().is_none(), "path copy kept a stale memo");
        let Kind::Node(children) = &root.kind else {
            panic!("256 keys must not be a root leaf");
        };
        // 256 leaves → height 3, root fanout 4; key 17 routes to child 0.
        assert_eq!(children.len(), 4);
        assert!(children[0].digest.get().is_none());
        for c in &children[1..] {
            assert!(c.digest.get().is_some(), "off-path memo dropped");
        }
        assert_ne!(b.content_digest(), d1);
    }

    #[test]
    fn clone_then_divergent_updates_do_not_interfere() {
        let base = build(64);
        let mut left = base.clone();
        let mut right = base.clone();
        left.update(10, -10);
        right.update(50, -50);
        assert_eq!(left.get(50), Some(&50));
        assert_eq!(right.get(10), Some(&10));
        // Siblings share the subtrees neither wrote: the slot 30 leaf is
        // one allocation reachable from base, left, and right.
        assert!(std::ptr::eq(left.get(30).unwrap(), right.get(30).unwrap()));
    }
}
