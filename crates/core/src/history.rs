//! Per-location write histories.
//!
//! A history `H` is a finite map from timestamps to values (§3). Every
//! nonatomic location's store entry is a history; the entry with the largest
//! timestamp is "the latest write", and reads that do not witness it are
//! *weak* (Definition 6).

use std::collections::BTreeMap;
use std::fmt;

use crate::loc::Val;
use crate::timestamp::Timestamp;

/// A finite map `t ↦ x` from timestamps to values, recording every write
/// ever made to one nonatomic location.
///
/// # Examples
///
/// ```
/// use bdrst_core::history::History;
/// use bdrst_core::loc::Val;
/// use bdrst_core::timestamp::Timestamp;
///
/// let mut h = History::initial(Val(0));
/// let t1 = Timestamp::ZERO.succ();
/// h.insert(t1, Val(42));
/// assert_eq!(h.latest(), (t1, Val(42)));
/// assert_eq!(h.get(Timestamp::ZERO), Some(Val(0)));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct History {
    writes: BTreeMap<Timestamp, Val>,
}

impl History {
    /// An empty history. Most callers want [`History::initial`]: the paper's
    /// initial state gives every location a write of `v₀` at timestamp 0.
    pub fn new() -> History {
        History::default()
    }

    /// The initial-state history: a single write of `v0` at timestamp 0.
    pub fn initial(v0: Val) -> History {
        let mut h = History::new();
        h.insert(Timestamp::ZERO, v0);
        h
    }

    /// Records the write `t ↦ x`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is already present: Write-NA requires `t ∉ dom(H)`.
    pub fn insert(&mut self, t: Timestamp, x: Val) {
        let prev = self.writes.insert(t, x);
        assert!(prev.is_none(), "timestamp {t} already in history");
    }

    /// The value written at `t`, if `t ∈ dom(H)`.
    pub fn get(&self, t: Timestamp) -> Option<Val> {
        self.writes.get(&t).copied()
    }

    /// True if `t ∈ dom(H)`.
    pub fn contains(&self, t: Timestamp) -> bool {
        self.writes.contains_key(&t)
    }

    /// The number of writes recorded.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// True if the history is empty (never the case for reachable stores).
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// The entry with the largest timestamp: "the latest write".
    ///
    /// # Panics
    ///
    /// Panics on an empty history; reachable stores always contain the
    /// initial write.
    pub fn latest(&self) -> (Timestamp, Val) {
        let (t, v) = self.writes.iter().next_back().expect("empty history");
        (*t, *v)
    }

    /// All entries with timestamp `>= at`, in increasing timestamp order.
    /// These are exactly the entries Read-NA allows a thread with frontier
    /// `F(a) = at` to read.
    pub fn readable_from(&self, at: Timestamp) -> impl Iterator<Item = (Timestamp, Val)> + '_ {
        self.writes.range(at..).map(|(t, v)| (*t, *v))
    }

    /// Iterates over all `(t, x)` entries in increasing timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, Val)> + '_ {
        self.writes.iter().map(|(t, v)| (*t, *v))
    }

    /// The timestamps of all writes, in increasing order.
    pub fn timestamps(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.writes.keys().copied()
    }

    /// The rank of timestamp `t` among the history's timestamps (0-based),
    /// used for canonical state hashing in the explorer.
    pub fn rank_of(&self, t: Timestamp) -> Option<usize> {
        self.timestamps().position(|u| u == t)
    }

    /// Fresh-timestamp candidates for a writer whose frontier is `at`,
    /// one per *gap* of the existing history (see DESIGN.md).
    ///
    /// Write-NA allows any fresh `t > F(a)`. Two candidate timestamps are
    /// observationally equivalent iff the same set of existing entries lies
    /// below each, so it suffices to enumerate one representative per gap:
    /// between each adjacent pair of existing timestamps above `at`, and
    /// after the maximum. The returned list is in increasing order and
    /// always nonempty.
    pub fn write_gaps(&self, at: Timestamp) -> Vec<Timestamp> {
        let above: Vec<Timestamp> = self.timestamps().filter(|t| *t > at).collect();
        let mut out = Vec::with_capacity(above.len() + 1);
        let mut lower = at;
        for upper in &above {
            out.push(lower.midpoint(*upper));
            lower = *upper;
        }
        // After the maximum (or directly after `at` when nothing is above).
        out.push(lower.succ());
        out
    }
}

impl crate::wire::Codec for History {
    /// `(timestamp, value)` entries in increasing timestamp order.
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for (t, v) in self.iter() {
            t.encode(out);
            v.encode(out);
        }
    }

    /// Rejects out-of-order or duplicate timestamps (the map invariant the
    /// in-memory `insert` enforces by panic — decoding must never panic).
    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<History, crate::wire::WireError> {
        use crate::wire::WireError;
        let n = r.length(1)?;
        let mut writes = BTreeMap::new();
        let mut last: Option<Timestamp> = None;
        for _ in 0..n {
            let t = Timestamp::decode(r)?;
            let v = Val::decode(r)?;
            if last.is_some_and(|p| p >= t) {
                return Err(WireError::Invalid("history timestamps not increasing"));
            }
            last = Some(t);
            writes.insert(t, v);
        }
        Ok(History { writes })
    }
}

impl fmt::Debug for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.writes.iter()).finish()
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (t, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}↦{v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Timestamp, Val)> for History {
    fn from_iter<I: IntoIterator<Item = (Timestamp, Val)>>(iter: I) -> History {
        let mut h = History::new();
        for (t, v) in iter {
            h.insert(t, v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(n: i64) -> Timestamp {
        Timestamp(crate::timestamp::Ratio::from_integer(n))
    }

    #[test]
    fn initial_history_has_v0_at_zero() {
        let h = History::initial(Val(9));
        assert_eq!(h.latest(), (Timestamp::ZERO, Val(9)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already in history")]
    fn duplicate_timestamp_panics() {
        let mut h = History::initial(Val(0));
        h.insert(Timestamp::ZERO, Val(1));
    }

    #[test]
    fn readable_from_respects_frontier() {
        let mut h = History::initial(Val(0));
        h.insert(ts(1), Val(1));
        h.insert(ts(2), Val(2));
        let all: Vec<_> = h.readable_from(Timestamp::ZERO).collect();
        assert_eq!(all.len(), 3);
        let late: Vec<_> = h.readable_from(ts(2)).collect();
        assert_eq!(late, vec![(ts(2), Val(2))]);
    }

    #[test]
    fn write_gaps_enumerates_every_interval() {
        let mut h = History::initial(Val(0));
        h.insert(ts(1), Val(1));
        h.insert(ts(2), Val(2));
        // Frontier at 0: gaps are (0,1), (1,2), (2,∞) — three choices.
        let gaps = h.write_gaps(Timestamp::ZERO);
        assert_eq!(gaps.len(), 3);
        assert!(gaps[0] > Timestamp::ZERO && gaps[0] < ts(1));
        assert!(gaps[1] > ts(1) && gaps[1] < ts(2));
        assert!(gaps[2] > ts(2));
        // Frontier at the max: only "after the end" remains.
        let gaps = h.write_gaps(ts(2));
        assert_eq!(gaps.len(), 1);
        assert!(gaps[0] > ts(2));
    }

    #[test]
    fn write_gaps_are_fresh() {
        let mut h = History::initial(Val(0));
        h.insert(ts(3), Val(1));
        for g in h.write_gaps(Timestamp::ZERO) {
            assert!(!h.contains(g));
        }
    }

    #[test]
    fn rank_of_orders_by_timestamp() {
        let mut h = History::initial(Val(0));
        h.insert(ts(5), Val(1));
        h.insert(ts(2), Val(2));
        assert_eq!(h.rank_of(Timestamp::ZERO), Some(0));
        assert_eq!(h.rank_of(ts(2)), Some(1));
        assert_eq!(h.rank_of(ts(5)), Some(2));
        assert_eq!(h.rank_of(ts(7)), None);
    }

    #[test]
    fn display_renders_entries() {
        let mut h = History::initial(Val(0));
        h.insert(ts(1), Val(4));
        assert_eq!(format!("{h}"), "{t0↦0, t1↦4}");
    }
}
