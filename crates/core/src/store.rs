//! Stores: the shared-memory component of a machine configuration.
//!
//! `S ≜ a ↦ H ⊎ A ↦ (F, x)` (§3, Fig. 1a): nonatomic locations map to
//! histories, atomic locations map to a frontier/value pair.

use std::fmt;
use std::sync::Arc;

use crate::frontier::Frontier;
use crate::history::History;
use crate::loc::{Loc, LocKind, LocSet, Val};

/// The contents of a single location in a [`Store`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LocContents {
    /// A nonatomic location's timestamped write history.
    Nonatomic(History),
    /// An atomic location's frontier and current value.
    Atomic {
        /// The frontier published at this location.
        frontier: Frontier,
        /// The location's (single, coherent) current value.
        value: Val,
    },
}

impl LocContents {
    /// The history of a nonatomic location.
    ///
    /// # Panics
    ///
    /// Panics if the location is atomic.
    pub fn history(&self) -> &History {
        match self {
            LocContents::Nonatomic(h) => h,
            LocContents::Atomic { .. } => panic!("atomic location has no history"),
        }
    }

    /// The `(frontier, value)` pair of an atomic location.
    ///
    /// # Panics
    ///
    /// Panics if the location is nonatomic.
    pub fn atomic(&self) -> (&Frontier, Val) {
        match self {
            LocContents::Atomic { frontier, value } => (frontier, *value),
            LocContents::Nonatomic(_) => panic!("nonatomic location has no atomic pair"),
        }
    }
}

/// A store `S`: per-location contents for every declared location.
///
/// Copy-on-write: the location table lives behind an [`Arc`] and every
/// slot is itself an [`Arc`], so [`Store::clone`] is a reference-count
/// bump (successor machines that leave memory untouched share the parent
/// store outright) and [`Store::update`] pays only for the spine and the
/// one replaced slot (`Arc::make_mut` on the table, a fresh `Arc` for the
/// new contents) — O(delta), never a rebuild of every history. Branches
/// of an exploration therefore alias freely and can never observe each
/// other's writes.
///
/// # Examples
///
/// ```
/// use bdrst_core::loc::{LocSet, LocKind, Val};
/// use bdrst_core::store::Store;
/// use bdrst_core::timestamp::Timestamp;
///
/// let mut locs = LocSet::new();
/// let a = locs.fresh("a", LocKind::Nonatomic);
/// let store = Store::initial(&locs);
/// assert_eq!(store.history(a).latest(), (Timestamp::ZERO, Val::INIT));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Store {
    contents: Arc<Vec<Arc<LocContents>>>,
}

impl Store {
    /// The initial store `M₀`'s memory: every nonatomic location holds the
    /// single initial write `0 ↦ v₀`; every atomic location holds
    /// `(F₀, v₀)` (§3.1).
    pub fn initial(locs: &LocSet) -> Store {
        let f0 = Frontier::initial(locs);
        let contents = locs
            .iter()
            .map(|l| {
                Arc::new(match locs.kind(l) {
                    LocKind::Nonatomic => LocContents::Nonatomic(History::initial(Val::INIT)),
                    LocKind::Atomic => LocContents::Atomic {
                        frontier: f0.clone(),
                        value: Val::INIT,
                    },
                })
            })
            .collect();
        Store {
            contents: Arc::new(contents),
        }
    }

    /// The contents of `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    pub fn contents(&self, loc: Loc) -> &LocContents {
        &self.contents[loc.index()]
    }

    /// True iff `self` and `other` share the same location table (a
    /// `clone` that no `update` has diverged yet). Used by tests to pin
    /// down the copy-on-write behaviour; semantics code never needs it.
    pub fn ptr_eq(&self, other: &Store) -> bool {
        Arc::ptr_eq(&self.contents, &other.contents)
    }

    /// The history of nonatomic `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is atomic or out of range.
    pub fn history(&self, loc: Loc) -> &History {
        self.contents(loc).history()
    }

    /// The `(frontier, value)` pair of atomic `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is nonatomic or out of range.
    pub fn atomic(&self, loc: Loc) -> (&Frontier, Val) {
        self.contents(loc).atomic()
    }

    /// Replaces the contents of `loc` (the `S[ℓ ↦ C′]` of rule Memory).
    ///
    /// Copy-on-write: a shared spine is cloned (pointer-sized slots only)
    /// before the one slot is swapped for the new contents; every other
    /// location keeps sharing its `Arc` with the aliased stores.
    pub fn update(&mut self, loc: Loc, contents: LocContents) {
        Arc::make_mut(&mut self.contents)[loc.index()] = Arc::new(contents);
    }

    /// A structurally fresh copy sharing nothing with `self` — the cost
    /// profile `Store::clone` had before the copy-on-write refactor.
    /// Exists for baseline comparisons (the seed-equivalent bench lane);
    /// exploration code should always use the cheap `clone`.
    pub fn deep_clone(&self) -> Store {
        Store {
            contents: Arc::new(
                self.contents
                    .iter()
                    .map(|c| Arc::new((**c).clone()))
                    .collect(),
            ),
        }
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.contents.len()
    }

    /// True if there are no locations.
    pub fn is_empty(&self) -> bool {
        self.contents.is_empty()
    }

    /// Iterates over `(loc, contents)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, &LocContents)> + '_ {
        self.contents
            .iter()
            .enumerate()
            .map(|(i, c)| (Loc(i as u32), &**c))
    }
}

impl fmt::Display for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "store {{")?;
        for (l, c) in self.iter() {
            match c {
                LocContents::Nonatomic(h) => writeln!(f, "  {l} ↦ {h}")?,
                LocContents::Atomic { value, .. } => writeln!(f, "  {l} ↦ (F, {value})")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::Timestamp;

    #[test]
    fn initial_store_layout() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let s = Store::initial(&locs);
        assert_eq!(s.len(), 2);
        assert_eq!(s.history(a).latest(), (Timestamp::ZERO, Val::INIT));
        let (fr, v) = s.atomic(f);
        assert_eq!(v, Val::INIT);
        assert_eq!(fr.get(a), Timestamp::ZERO);
    }

    #[test]
    #[should_panic(expected = "no history")]
    fn history_of_atomic_panics() {
        let mut locs = LocSet::new();
        let f = locs.fresh("F", LocKind::Atomic);
        Store::initial(&locs).history(f);
    }

    #[test]
    #[should_panic(expected = "no atomic pair")]
    fn atomic_of_nonatomic_panics() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        Store::initial(&locs).atomic(a);
    }

    #[test]
    fn update_replaces_contents() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let mut s = Store::initial(&locs);
        let mut h = History::initial(Val::INIT);
        h.insert(Timestamp::ZERO.succ(), Val(5));
        s.update(a, LocContents::Nonatomic(h));
        assert_eq!(s.history(a).latest().1, Val(5));
    }

    #[test]
    fn clone_shares_until_update_diverges() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let b = locs.fresh("b", LocKind::Nonatomic);
        let parent = Store::initial(&locs);
        let mut child = parent.clone();
        assert!(parent.ptr_eq(&child), "a clone is a pure Arc bump");
        let mut h = History::initial(Val::INIT);
        h.insert(Timestamp::ZERO.succ(), Val(7));
        child.update(a, LocContents::Nonatomic(h));
        // The write diverged the child; the parent is untouched.
        assert!(!parent.ptr_eq(&child));
        assert_eq!(parent.history(a).latest(), (Timestamp::ZERO, Val::INIT));
        assert_eq!(child.history(a).latest().1, Val(7));
        // Untouched slots still share their contents allocation.
        assert!(std::ptr::eq(parent.contents(b), child.contents(b)));
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let s = Store::initial(&locs);
        let d = s.deep_clone();
        assert_eq!(s, d);
        assert!(!s.ptr_eq(&d));
        assert!(!std::ptr::eq(s.contents(a), d.contents(a)));
    }
}
