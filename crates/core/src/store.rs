//! Stores: the shared-memory component of a machine configuration.
//!
//! `S ≜ a ↦ H ⊎ A ↦ (F, x)` (§3, Fig. 1a): nonatomic locations map to
//! histories, atomic locations map to a frontier/value pair.
//!
//! # Representation
//!
//! The store is a persistent radix map ([`crate::pmap`]) over the dense
//! location indexes of the declaring [`LocSet`]: [`Store::clone`] is one
//! refcount bump, [`Store::update`] is an O(log n) path copy, and every
//! subtree off the written path is *the same allocation* in the parent,
//! the child, and every sibling branch of an exploration — aliased stores
//! can never observe each other's writes, and a DFS/DPOR tree over a
//! program with hundreds of locations shares all unwritten histories
//! structurally instead of copying an O(locations) spine per write.
//!
//! The map also memoizes per-subtree content digests, which is what makes
//! [`crate::engine::canonical_fingerprint`] incremental: see
//! [`Store::content_digest`].
//!
//! # Wire format
//!
//! [`Store`] and [`LocContents`] implement [`Codec`] (tagged contents in
//! location order — the encoding is independent of the tree shape), new
//! in wire format [`crate::wire::SEMANTICS_VERSION`] 5. Decoding is total:
//! kind-tag or layout corruption surfaces as a [`WireError`], and
//! [`Store::validate_kinds`] rechecks a decoded store against the
//! declaring [`LocSet`] so a poisoned cache entry falls back to recompute
//! instead of panicking the server (see [`LocContents::try_history`]).

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::Hasher;

use crate::frontier::Frontier;
use crate::history::History;
use crate::loc::{Loc, LocKind, LocSet, Val};
use crate::pmap::{ContentDigest, PMap};
use crate::wire::{Codec, Reader, WireError};

/// The contents of a single location in a [`Store`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LocContents {
    /// A nonatomic location's timestamped write history.
    Nonatomic(History),
    /// An atomic location's frontier and current value.
    Atomic {
        /// The frontier published at this location.
        frontier: Frontier,
        /// The location's (single, coherent) current value.
        value: Val,
    },
}

impl LocContents {
    /// The history of a nonatomic location, or `None` for an atomic one.
    ///
    /// The semantics only ever asks a location for the shape its
    /// [`LocKind`] declares, so in-engine code uses the panicking
    /// [`LocContents::history`]; this total variant is for callers
    /// handling *untrusted* stores — anything decoded from the wire —
    /// where a kind mismatch must surface as an error, never a panic.
    pub fn try_history(&self) -> Option<&History> {
        match self {
            LocContents::Nonatomic(h) => Some(h),
            LocContents::Atomic { .. } => None,
        }
    }

    /// The `(frontier, value)` pair of an atomic location, or `None` for
    /// a nonatomic one. See [`LocContents::try_history`] for when to
    /// prefer this over the panicking accessor.
    pub fn try_atomic(&self) -> Option<(&Frontier, Val)> {
        match self {
            LocContents::Atomic { frontier, value } => Some((frontier, *value)),
            LocContents::Nonatomic(_) => None,
        }
    }

    /// The history of a nonatomic location.
    ///
    /// # Panics
    ///
    /// Panics if the location is atomic. Reserved for stores whose kinds
    /// are trusted (built by the semantics, or decoded and then checked
    /// with [`Store::validate_kinds`]).
    pub fn history(&self) -> &History {
        match self.try_history() {
            Some(h) => h,
            None => panic!("atomic location has no history"),
        }
    }

    /// The `(frontier, value)` pair of an atomic location.
    ///
    /// # Panics
    ///
    /// Panics if the location is nonatomic; see [`LocContents::history`]
    /// for the trust contract.
    pub fn atomic(&self) -> (&Frontier, Val) {
        match self.try_atomic() {
            Some(p) => p,
            None => panic!("nonatomic location has no atomic pair"),
        }
    }
}

impl ContentDigest for LocContents {
    /// Digest of the location's *canonical-local* content: the value
    /// sequence (in timestamp order) for a history, the current value for
    /// an atomic. Timestamps are excluded because the canonical form
    /// quotients them out; an atomic's frontier is excluded because its
    /// canonical form (per-location *ranks*) depends on other locations'
    /// histories, so it cannot be a per-location memo —
    /// [`crate::engine::canonical_fingerprint`] streams those ranks
    /// separately on top of the store digest.
    fn content_digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        match self {
            LocContents::Nonatomic(hist) => {
                h.write_u8(0);
                h.write_usize(hist.len());
                for (_, v) in hist.iter() {
                    h.write_i64(v.0);
                }
            }
            LocContents::Atomic { value, .. } => {
                h.write_u8(1);
                h.write_i64(value.0);
            }
        }
        h.finish()
    }
}

impl Codec for LocContents {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LocContents::Nonatomic(h) => {
                out.push(0);
                h.encode(out);
            }
            LocContents::Atomic { frontier, value } => {
                out.push(1);
                frontier.encode(out);
                value.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<LocContents, WireError> {
        match u8::decode(r)? {
            0 => {
                let h = History::decode(r)?;
                // Reachable stores always contain the initial write; an
                // empty decoded history would panic `latest()` downstream.
                if h.is_empty() {
                    return Err(WireError::Invalid("empty nonatomic history"));
                }
                Ok(LocContents::Nonatomic(h))
            }
            1 => Ok(LocContents::Atomic {
                frontier: Frontier::decode(r)?,
                value: Val::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "LocContents",
                tag,
            }),
        }
    }
}

/// A store `S`: per-location contents for every declared location.
///
/// Persistent: the contents live in a [`PMap`], so [`Store::clone`] is a
/// reference-count bump (successor machines that leave memory untouched
/// share the parent store outright) and [`Store::update`] pays one
/// O(log n) path copy — the replaced slot plus `log₈ n` small interior
/// nodes — while every other location keeps sharing its allocation with
/// the aliased stores. Branches of an exploration therefore alias freely
/// and can never observe each other's writes.
///
/// # Examples
///
/// ```
/// use bdrst_core::loc::{LocSet, LocKind, Val};
/// use bdrst_core::store::Store;
/// use bdrst_core::timestamp::Timestamp;
///
/// let mut locs = LocSet::new();
/// let a = locs.fresh("a", LocKind::Nonatomic);
/// let store = Store::initial(&locs);
/// assert_eq!(store.history(a).latest(), (Timestamp::ZERO, Val::INIT));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Store {
    contents: PMap<LocContents>,
}

impl Store {
    /// The initial store `M₀`'s memory: every nonatomic location holds the
    /// single initial write `0 ↦ v₀`; every atomic location holds
    /// `(F₀, v₀)` (§3.1).
    pub fn initial(locs: &LocSet) -> Store {
        let f0 = Frontier::initial(locs);
        Store {
            contents: locs
                .iter()
                .map(|l| match locs.kind(l) {
                    LocKind::Nonatomic => LocContents::Nonatomic(History::initial(Val::INIT)),
                    LocKind::Atomic => LocContents::Atomic {
                        frontier: f0.clone(),
                        value: Val::INIT,
                    },
                })
                .collect(),
        }
    }

    /// The contents of `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    pub fn contents(&self, loc: Loc) -> &LocContents {
        self.contents
            .get(loc.0)
            .unwrap_or_else(|| panic!("location {loc} out of range"))
    }

    /// True iff `self` and `other` share the same root allocation (a
    /// `clone` that no `update` has diverged yet). Used by tests to pin
    /// down the sharing behaviour; semantics code never needs it.
    pub fn ptr_eq(&self, other: &Store) -> bool {
        self.contents.ptr_eq(&other.contents)
    }

    /// The history of nonatomic `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is atomic or out of range.
    pub fn history(&self, loc: Loc) -> &History {
        self.contents(loc).history()
    }

    /// The `(frontier, value)` pair of atomic `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is nonatomic or out of range.
    pub fn atomic(&self, loc: Loc) -> (&Frontier, Val) {
        self.contents(loc).atomic()
    }

    /// Replaces the contents of `loc` (the `S[ℓ ↦ C′]` of rule Memory).
    ///
    /// An O(log n) path copy: the new leaf plus the interior nodes on the
    /// root-to-leaf path are freshly allocated; every off-path subtree —
    /// all other locations — keeps sharing its allocation (and its
    /// memoized content digest) with every alias of the pre-update store.
    pub fn update(&mut self, loc: Loc, contents: LocContents) {
        self.contents.update(loc.0, contents);
    }

    /// The 64-bit digest of the store's canonical-local content (see
    /// [`LocContents::content_digest`] for what that covers), recombined
    /// from the pmap's memoized per-subtree digests: after an `update`,
    /// only the O(log n) copied path is rehashed, not every location.
    /// This is the store half of [`crate::engine::canonical_fingerprint`].
    pub fn content_digest(&self) -> u64 {
        self.contents.content_digest()
    }

    /// Checks a *decoded* store against the declaring [`LocSet`]: the
    /// location count must match and every slot must hold the shape its
    /// declared kind demands (including frontier width for atomics).
    /// A store that passes satisfies the panicking accessors' trust
    /// contract; a store that fails must be discarded (the cache layer
    /// falls back to recompute).
    ///
    /// # Errors
    ///
    /// [`WireError::Invalid`] naming the violated invariant.
    pub fn validate_kinds(&self, locs: &LocSet) -> Result<(), WireError> {
        if self.len() != locs.len() {
            return Err(WireError::Invalid("store/locset length mismatch"));
        }
        for (l, c) in self.iter() {
            match (locs.kind(l), c) {
                (LocKind::Nonatomic, LocContents::Nonatomic(_)) => {}
                (LocKind::Atomic, LocContents::Atomic { frontier, .. }) => {
                    if frontier.len() != locs.len() {
                        return Err(WireError::Invalid("atomic frontier width mismatch"));
                    }
                }
                _ => return Err(WireError::Invalid("location kind mismatch")),
            }
        }
        Ok(())
    }

    /// A structurally fresh copy sharing nothing with `self` — the cost
    /// profile `Store::clone` had before the copy-on-write refactor.
    /// Exists for baseline comparisons (the seed-equivalent bench lane);
    /// exploration code should always use the cheap `clone`.
    pub fn deep_clone(&self) -> Store {
        Store {
            contents: self.contents.iter().cloned().collect(),
        }
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.contents.len()
    }

    /// True if there are no locations.
    pub fn is_empty(&self) -> bool {
        self.contents.is_empty()
    }

    /// Iterates over `(loc, contents)` pairs in location order.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, &LocContents)> + '_ {
        self.contents
            .iter()
            .enumerate()
            .map(|(i, c)| (Loc(i as u32), c))
    }
}

impl Codec for Store {
    /// Contents in location order, independent of the tree shape: two
    /// equal stores encode identically however they were built.
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for (_, c) in self.iter() {
            c.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Store, WireError> {
        let n = r.length(1)?;
        let mut contents = Vec::with_capacity(n);
        for _ in 0..n {
            contents.push(LocContents::decode(r)?);
        }
        Ok(Store {
            contents: contents.into_iter().collect(),
        })
    }
}

impl fmt::Display for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "store {{")?;
        for (l, c) in self.iter() {
            match c {
                LocContents::Nonatomic(h) => writeln!(f, "  {l} ↦ {h}")?,
                LocContents::Atomic { value, .. } => writeln!(f, "  {l} ↦ (F, {value})")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::Timestamp;

    #[test]
    fn initial_store_layout() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let s = Store::initial(&locs);
        assert_eq!(s.len(), 2);
        assert_eq!(s.history(a).latest(), (Timestamp::ZERO, Val::INIT));
        let (fr, v) = s.atomic(f);
        assert_eq!(v, Val::INIT);
        assert_eq!(fr.get(a), Timestamp::ZERO);
    }

    #[test]
    #[should_panic(expected = "no history")]
    fn history_of_atomic_panics() {
        let mut locs = LocSet::new();
        let f = locs.fresh("F", LocKind::Atomic);
        Store::initial(&locs).history(f);
    }

    #[test]
    #[should_panic(expected = "no atomic pair")]
    fn atomic_of_nonatomic_panics() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        Store::initial(&locs).atomic(a);
    }

    #[test]
    fn try_accessors_are_total() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let s = Store::initial(&locs);
        assert!(s.contents(a).try_history().is_some());
        assert!(s.contents(a).try_atomic().is_none());
        assert!(s.contents(f).try_history().is_none());
        assert!(s.contents(f).try_atomic().is_some());
    }

    #[test]
    fn update_replaces_contents() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let mut s = Store::initial(&locs);
        let mut h = History::initial(Val::INIT);
        h.insert(Timestamp::ZERO.succ(), Val(5));
        s.update(a, LocContents::Nonatomic(h));
        assert_eq!(s.history(a).latest().1, Val(5));
    }

    #[test]
    fn clone_shares_until_update_diverges() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let b = locs.fresh("b", LocKind::Nonatomic);
        let parent = Store::initial(&locs);
        let mut child = parent.clone();
        assert!(parent.ptr_eq(&child), "a clone is a pure Arc bump");
        let mut h = History::initial(Val::INIT);
        h.insert(Timestamp::ZERO.succ(), Val(7));
        child.update(a, LocContents::Nonatomic(h));
        // The write diverged the child; the parent is untouched.
        assert!(!parent.ptr_eq(&child));
        assert_eq!(parent.history(a).latest(), (Timestamp::ZERO, Val::INIT));
        assert_eq!(child.history(a).latest().1, Val(7));
        // Untouched slots still share their contents allocation.
        assert!(std::ptr::eq(parent.contents(b), child.contents(b)));
    }

    #[test]
    fn wide_stores_share_every_offpath_slot() {
        // 100 locations: three pmap levels. An update to one location must
        // leave the other 99 slots pointer-identical to the parent's.
        let mut locs = LocSet::new();
        let all: Vec<Loc> = (0..100)
            .map(|i| locs.fresh(format!("w{i}"), LocKind::Nonatomic))
            .collect();
        let parent = Store::initial(&locs);
        let mut child = parent.clone();
        let mut h = History::initial(Val::INIT);
        h.insert(Timestamp::ZERO.succ(), Val(1));
        child.update(all[57], LocContents::Nonatomic(h));
        for &l in &all {
            if l == all[57] {
                assert!(!std::ptr::eq(parent.contents(l), child.contents(l)));
            } else {
                assert!(std::ptr::eq(parent.contents(l), child.contents(l)));
            }
        }
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let s = Store::initial(&locs);
        let d = s.deep_clone();
        assert_eq!(s, d);
        assert!(!s.ptr_eq(&d));
        assert!(!std::ptr::eq(s.contents(a), d.contents(a)));
    }

    #[test]
    fn content_digest_tracks_canonical_local_content() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let s0 = Store::initial(&locs);
        let d0 = s0.content_digest();
        assert_eq!(d0, Store::initial(&locs).content_digest());
        // A new write changes the digest.
        let mut s1 = s0.clone();
        let mut h = History::initial(Val::INIT);
        h.insert(Timestamp::ZERO.succ(), Val(3));
        s1.update(a, LocContents::Nonatomic(h));
        assert_ne!(d0, s1.content_digest());
        // Same value sequence at a different timestamp: same digest (the
        // canonical form quotients timestamps out).
        let mut s2 = s0.clone();
        let mut h = History::initial(Val::INIT);
        h.insert(Timestamp::ZERO.succ().succ(), Val(3));
        s2.update(a, LocContents::Nonatomic(h));
        assert_eq!(s1.content_digest(), s2.content_digest());
        // An atomic frontier change alone does NOT change the digest —
        // frontier ranks are non-local and are streamed by the
        // fingerprint, not memoized per location.
        let mut s3 = s1.clone();
        let (fr, v) = s3.atomic(f);
        let mut fr = fr.clone();
        fr.join_assign(&{
            let mut g = Frontier::initial(&locs);
            g.advance(a, Timestamp::ZERO.succ());
            g
        });
        s3.update(
            f,
            LocContents::Atomic {
                frontier: fr,
                value: v,
            },
        );
        assert_eq!(s1.content_digest(), s3.content_digest());
        // But the atomic *value* is covered.
        let (fr, _) = s3.atomic(f);
        let fr = fr.clone();
        s3.update(
            f,
            LocContents::Atomic {
                frontier: fr,
                value: Val(9),
            },
        );
        assert_ne!(s1.content_digest(), s3.content_digest());
    }

    fn two_kind_store() -> (LocSet, Store) {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let _f = locs.fresh("F", LocKind::Atomic);
        let mut s = Store::initial(&locs);
        let mut h = History::initial(Val::INIT);
        h.insert(Timestamp::ZERO.succ(), Val(5));
        h.insert(Timestamp::ZERO.succ().succ(), Val(-2));
        s.update(a, LocContents::Nonatomic(h));
        (locs, s)
    }

    #[test]
    fn store_round_trips() {
        let (locs, s) = two_kind_store();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let d = Store::decode(&mut r).unwrap();
        assert!(r.is_done());
        assert_eq!(d, s);
        assert_eq!(d.content_digest(), s.content_digest());
        d.validate_kinds(&locs).unwrap();
    }

    #[test]
    fn kind_flip_is_an_error_never_a_panic() {
        // Flip the kind tag byte of the first location: the bytes now
        // describe a frontier/value pair where a history is declared. The
        // decoder either rejects the bytes outright or yields a store that
        // validate_kinds refuses — both are WireErrors a cache layer turns
        // into recompute; neither path can reach a panicking accessor.
        let (locs, s) = two_kind_store();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        // Byte 0..8 is the length prefix; byte 8 is loc 0's kind tag.
        assert_eq!(buf[8], 0);
        buf[8] = 1;
        match Store::decode(&mut Reader::new(&buf)) {
            Err(_) => {}
            Ok(d) => {
                assert!(d.validate_kinds(&locs).is_err());
            }
        }
    }

    #[test]
    fn truncation_and_garbage_are_errors() {
        let (_, s) = two_kind_store();
        let mut buf = Vec::new();
        s.encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(
                Store::decode(&mut Reader::new(&buf[..cut])).is_err(),
                "truncation at {cut} decoded"
            );
        }
        // A bad LocContents tag is rejected by name.
        let mut bad = buf.clone();
        bad[8] = 7;
        assert!(matches!(
            Store::decode(&mut Reader::new(&bad)),
            Err(WireError::BadTag {
                what: "LocContents",
                ..
            })
        ));
    }

    #[test]
    fn validate_kinds_rejects_shape_mismatches() {
        let (locs, s) = two_kind_store();
        // Wrong length.
        let short = Store {
            contents: s.iter().take(1).map(|(_, c)| c.clone()).collect(),
        };
        assert!(short.validate_kinds(&locs).is_err());
        // Swapped kinds.
        let mut reversed: Vec<LocContents> = s.iter().map(|(_, c)| c.clone()).collect();
        reversed.reverse();
        let swapped = Store {
            contents: reversed.into_iter().collect(),
        };
        assert!(swapped.validate_kinds(&locs).is_err());
        // Narrow frontier on the atomic slot.
        let mut narrow = s.clone();
        narrow.update(
            Loc(1),
            LocContents::Atomic {
                frontier: Frontier::default(),
                value: Val::INIT,
            },
        );
        assert!(narrow.validate_kinds(&locs).is_err());
    }
}
