//! Sequential engines: the iterative state-space worklist and the
//! iterative depth-first trace enumerator — plus the sharded trace walk
//! ([`TraceEngine::explore_sharded`]) that forks the enumeration at the
//! root frontier across the work-stealing pool.
//!
//! Neither engine recurses — both carry explicit stacks — so exploration
//! depth is bounded by heap, not by the thread's call stack, and the DFS /
//! BFS choice is a one-line worklist-discipline swap.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::engine::{
    canonicalize, parallel_map_with, Control, EngineConfig, EngineError, ExploreStats, Explorer,
    SearchOrder, StateInterner, StateVisitor, TraceVisitor,
};
use crate::loc::LocSet;
use crate::machine::{Expr, Machine, Transition};
use crate::trace::TraceLabels;

/// The sequential state-space engine: an explicit worklist of machines,
/// deduplicated through a [`StateInterner`] at pop time.
///
/// [`SearchOrder::Dfs`] treats the worklist as a stack (identical
/// discovery order to the legacy recursive explorer); [`SearchOrder::Bfs`]
/// treats it as a queue. Both visit exactly the same canonical state set.
#[derive(Clone, Copy, Debug)]
pub struct WorklistEngine {
    /// Budgets.
    pub config: EngineConfig,
    /// Stack or queue discipline.
    pub order: SearchOrder,
}

impl WorklistEngine {
    /// An engine with the given budgets and search order.
    pub fn new(config: EngineConfig, order: SearchOrder) -> WorklistEngine {
        WorklistEngine { config, order }
    }
}

impl<E: Expr> Explorer<E> for WorklistEngine {
    fn explore(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        visitor: &mut dyn StateVisitor<E>,
    ) -> Result<ExploreStats, EngineError> {
        let mut interner: StateInterner<_> = StateInterner::new();
        let mut worklist: VecDeque<Machine<E>> = VecDeque::new();
        worklist.push_back(m0);
        let mut stats = ExploreStats::default();
        while let Some(m) = match self.order {
            SearchOrder::Dfs => worklist.pop_back(),
            SearchOrder::Bfs => worklist.pop_front(),
        } {
            let (id, fresh) = interner.intern(canonicalize(locs, &m)?);
            if !fresh {
                continue;
            }
            if interner.len() > self.config.max_states {
                return Err(EngineError::budget(interner.len()));
            }
            stats.visited += 1;
            match visitor.visit(&m, id) {
                Control::Stop => return Ok(stats),
                Control::Prune => continue,
                Control::Continue => {}
            }
            for t in m.transitions(locs) {
                stats.transitions += 1;
                worklist.push_back(t.target);
            }
        }
        Ok(stats)
    }
}

/// One suspended node of the iterative trace walk: the transitions enabled
/// at a machine (each consumed at most once), and how many have been
/// processed.
struct Frame<E> {
    transitions: Vec<Option<Transition<E>>>,
    next: usize,
}

impl<E: Expr> Frame<E> {
    fn at(m: &Machine<E>, locs: &LocSet) -> Frame<E> {
        Frame {
            transitions: m.transitions(locs).into_iter().map(Some).collect(),
            next: 0,
        }
    }

    /// A root frame restricted to a single transition — the fork point of
    /// one shard of [`TraceEngine::explore_sharded`].
    fn single(t: Transition<E>) -> Frame<E> {
        Frame {
            transitions: vec![Some(t)],
            next: 0,
        }
    }
}

/// How one (sub)walk of the trace tree ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WalkEnd {
    /// Every trace in the subtree was enumerated (or pruned).
    Exhausted,
    /// The visitor returned [`Control::Stop`].
    Stopped,
}

/// The iterative depth-first walk shared by the sequential and sharded
/// trace enumerations. `budget` holds the *remaining* extension budget;
/// it is a plain counter for a sequential walk and shared across shards
/// for a sharded one, so splitting the work never splits the budget.
fn walk_traces<E: Expr>(
    locs: &LocSet,
    mut frames: Vec<Frame<E>>,
    visitor: &mut dyn TraceVisitor<E>,
    budget: &AtomicUsize,
    max_traces: usize,
    stats: &mut ExploreStats,
) -> Result<WalkEnd, EngineError> {
    let mut trace = TraceLabels::new();
    while let Some(frame) = frames.last_mut() {
        if frame.next >= frame.transitions.len() {
            // Subtree exhausted: pop the frame, and the label that led
            // into it (the root frame has no such label).
            frames.pop();
            if !frames.is_empty() {
                trace.pop();
            }
            continue;
        }
        let i = frame.next;
        frame.next += 1;
        stats.transitions += 1;
        let t = frame.transitions[i]
            .take()
            .expect("transition consumed once");
        if !visitor.step_filter(&t) {
            continue;
        }
        if budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_err()
        {
            // The budget counts down from `max_traces`; exhaustion means
            // the whole enumeration (across every shard) attempted its
            // (max_traces + 1)-th extension — the same count the
            // sequential engine reports.
            return Err(EngineError::budget(max_traces + 1));
        }
        stats.visited += 1;
        trace.push(t.label);
        match visitor.visit(&trace, &t) {
            Control::Stop => return Ok(WalkEnd::Stopped),
            Control::Prune => {
                trace.pop();
            }
            Control::Continue => {
                frames.push(Frame::at(&t.target, locs));
            }
        }
    }
    Ok(WalkEnd::Exhausted)
}

/// The iterative depth-first trace enumerator.
///
/// Enumerates every trace prefix from the initial machine (every prefix of
/// a trace is itself a trace, Definition 5), honouring the visitor's
/// `step_filter` and [`Control`] verdicts. Replaces the old recursive
/// `dfs` helper with an explicit frame stack.
#[derive(Clone, Copy, Debug)]
pub struct TraceEngine {
    /// Budgets (`max_traces` bounds the number of extensions made).
    pub config: EngineConfig,
}

impl TraceEngine {
    /// An engine with the given budgets.
    pub fn new(config: EngineConfig) -> TraceEngine {
        TraceEngine { config }
    }

    /// Walks every trace from `m0` in depth-first order, driving `visitor`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BudgetExceeded`] after `config.max_traces`
    /// extensions.
    pub fn explore<E: Expr>(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        visitor: &mut dyn TraceVisitor<E>,
    ) -> Result<ExploreStats, EngineError> {
        let mut stats = ExploreStats::default();
        let budget = AtomicUsize::new(self.config.max_traces);
        walk_traces(
            locs,
            vec![Frame::at(&m0, locs)],
            visitor,
            &budget,
            self.config.max_traces,
            &mut stats,
        )?;
        Ok(stats)
    }

    /// Walks every trace from `m0`, sharded across the work-stealing pool:
    /// each transition enabled at the *root* starts an independent label
    /// stack explored with its own visitor from `make_visitor` (trace
    /// subtrees share no state, so forking at the root frontier is exact).
    ///
    /// The trace budget is a single atomic counter shared by every shard —
    /// splitting the work never splits the budget, so for visitors that
    /// run to exhaustion a sharded walk errs out if and only if the total
    /// number of extensions exceeds `config.max_traces`, exactly like
    /// [`TraceEngine::explore`]. The combined statistics and the
    /// per-shard visitors (for verdict merging) are returned; shards are
    /// reported in root-transition order regardless of which worker ran
    /// them.
    ///
    /// One shard returning [`Control::Stop`] does not interrupt its
    /// siblings (they run to completion), and a stopped shard's verdict
    /// takes precedence over a concurrent budget trip in another shard.
    /// When a *stopping* visitor meets a budget close to the space it
    /// would explore, which of the two lands first is search-order
    /// dependent even sequentially (DFS and BFS intern different
    /// prefixes); this engine resolves that race deterministically in
    /// favour of the verdict.
    ///
    /// `threads == 0` means all cores (honouring `BDRST_ENGINE_THREADS`).
    ///
    /// # Errors
    ///
    /// [`EngineError::BudgetExceeded`] if the shards jointly exceed
    /// `config.max_traces` extensions and no shard stopped;
    /// [`EngineError::CorruptFrontier`] if any shard reaches a corrupted
    /// machine.
    pub fn explore_sharded<E, V, F>(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        threads: usize,
        make_visitor: F,
    ) -> Result<(ExploreStats, Vec<V>), EngineError>
    where
        E: Expr + Send + Sync,
        V: TraceVisitor<E> + Send,
        F: Fn() -> V + Sync,
    {
        let roots = m0.transitions(locs);
        let budget = AtomicUsize::new(self.config.max_traces);
        let max_traces = self.config.max_traces;
        let shards: Vec<(V, ExploreStats, Result<WalkEnd, EngineError>)> =
            parallel_map_with(&roots, threads, |t| {
                let mut visitor = make_visitor();
                let mut stats = ExploreStats::default();
                let end = walk_traces(
                    locs,
                    vec![Frame::single(t.clone())],
                    &mut visitor,
                    &budget,
                    max_traces,
                    &mut stats,
                );
                (visitor, stats, end)
            });

        let mut stats = ExploreStats::default();
        let mut visitors = Vec::with_capacity(shards.len());
        let mut stopped = false;
        let mut budget_error = None;
        for (visitor, shard_stats, end) in shards {
            stats.visited += shard_stats.visited;
            stats.transitions += shard_stats.transitions;
            match end {
                Ok(WalkEnd::Stopped) => stopped = true,
                Ok(WalkEnd::Exhausted) => {}
                Err(e @ EngineError::BudgetExceeded { .. }) => {
                    budget_error.get_or_insert(e);
                }
                // Corruption is never masked by verdicts or budgets.
                Err(e @ EngineError::CorruptFrontier { .. }) => return Err(e),
            }
            visitors.push(visitor);
        }
        match budget_error {
            Some(e) if !stopped => Err(e),
            _ => Ok((stats, visitors)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StateId;
    use crate::loc::{Loc, LocKind, Val};
    use crate::machine::{RecordedExpr, StepLabel};
    use std::collections::BTreeSet;

    fn locs_ab() -> (LocSet, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        (l, a, b)
    }

    fn sb_machine(locs: &LocSet, a: Loc, b: Loc) -> Machine<RecordedExpr> {
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
        Machine::initial(locs, [p0, p1])
    }

    fn terminal_reads(
        engine: &dyn Explorer<RecordedExpr>,
        locs: &LocSet,
        m0: Machine<RecordedExpr>,
    ) -> BTreeSet<Vec<i64>> {
        let mut outcomes = BTreeSet::new();
        engine
            .explore(locs, m0, &mut |m: &Machine<RecordedExpr>, _id: StateId| {
                if m.is_terminal() {
                    outcomes.insert(
                        m.threads
                            .iter()
                            .flat_map(|t| t.expr.reads.iter().map(|v| v.0))
                            .collect(),
                    );
                }
                Control::Continue
            })
            .unwrap();
        outcomes
    }

    #[test]
    fn dfs_and_bfs_agree_on_store_buffering() {
        let (locs, a, b) = locs_ab();
        let dfs = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs);
        let bfs = WorklistEngine::new(EngineConfig::default(), SearchOrder::Bfs);
        let d = terminal_reads(&dfs, &locs, sb_machine(&locs, a, b));
        let f = terminal_reads(&bfs, &locs, sb_machine(&locs, a, b));
        assert_eq!(d, f);
        assert_eq!(d.len(), 4); // SB is racy: all four outcomes
    }

    #[test]
    fn state_ids_are_dense_and_unique() {
        let (locs, a, b) = locs_ab();
        let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Bfs);
        let mut ids = Vec::new();
        engine
            .explore(
                &locs,
                sb_machine(&locs, a, b),
                &mut |_m: &Machine<RecordedExpr>, id: StateId| {
                    ids.push(id);
                    Control::Continue
                },
            )
            .unwrap();
        let unique: BTreeSet<_> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len());
        assert_eq!(ids.iter().map(|i| i.index()).max().unwrap(), ids.len() - 1);
    }

    #[test]
    fn prune_stops_expansion_but_not_exploration() {
        let (locs, a, _) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 3]);
        let m0 = Machine::initial(&locs, [p0]);
        // Prune everything: only the initial state is visited.
        let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs);
        let mut seen = 0;
        engine
            .explore(
                &locs,
                m0,
                &mut |_m: &Machine<RecordedExpr>, _id: StateId| {
                    seen += 1;
                    Control::Prune
                },
            )
            .unwrap();
        assert_eq!(seen, 1);
    }

    #[test]
    fn trace_engine_matches_recursive_interleaving_count() {
        let (locs, a, b) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        struct Count {
            complete: usize,
        }
        impl TraceVisitor<RecordedExpr> for Count {
            fn visit(&mut self, trace: &TraceLabels, t: &Transition<RecordedExpr>) -> Control {
                if trace.len() == 2 && t.target.is_terminal() {
                    self.complete += 1;
                }
                Control::Continue
            }
        }
        let mut v = Count { complete: 0 };
        TraceEngine::new(EngineConfig::default())
            .explore(&locs, m0, &mut v)
            .unwrap();
        assert_eq!(v.complete, 2);
    }

    /// Counts complete interleavings; used by the sharded agreement tests.
    struct CountComplete {
        len: usize,
        complete: usize,
    }

    impl TraceVisitor<RecordedExpr> for CountComplete {
        fn visit(&mut self, trace: &TraceLabels, t: &Transition<RecordedExpr>) -> Control {
            if trace.len() == self.len && t.target.is_terminal() {
                self.complete += 1;
            }
            Control::Continue
        }
    }

    #[test]
    fn sharded_trace_walk_matches_sequential() {
        let (locs, a, b) = locs_ab();
        let m0 = sb_machine(&locs, a, b);
        let mut seq = CountComplete {
            len: 4,
            complete: 0,
        };
        let seq_stats = TraceEngine::new(EngineConfig::default())
            .explore(&locs, m0.clone(), &mut seq)
            .unwrap();
        let (shard_stats, visitors) = TraceEngine::new(EngineConfig::default())
            .explore_sharded(&locs, m0, 4, || CountComplete {
                len: 4,
                complete: 0,
            })
            .unwrap();
        let sharded: usize = visitors.iter().map(|v| v.complete).sum();
        assert_eq!(seq.complete, sharded);
        assert_eq!(seq_stats.visited, shard_stats.visited);
        assert_eq!(seq_stats.transitions, shard_stats.transitions);
    }

    #[test]
    fn sharded_budget_is_shared_not_split() {
        // A budget big enough for any single shard but not for the whole
        // tree must still trip — the shards share one atomic counter.
        let (locs, a, b) = locs_ab();
        let m0 = sb_machine(&locs, a, b);
        #[derive(Debug)]
        struct Go;
        impl TraceVisitor<RecordedExpr> for Go {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                Control::Continue
            }
        }
        let total = TraceEngine::new(EngineConfig::default())
            .explore(&locs, m0.clone(), &mut Go)
            .unwrap()
            .visited;
        let tight = EngineConfig {
            max_states: usize::MAX,
            max_traces: total - 1,
        };
        let seq = TraceEngine::new(tight).explore(&locs, m0.clone(), &mut Go);
        let sharded = TraceEngine::new(tight).explore_sharded(&locs, m0.clone(), 4, || Go);
        assert_eq!(seq.unwrap_err(), EngineError::budget(total));
        assert_eq!(sharded.unwrap_err(), EngineError::budget(total));

        // With exactly enough budget, both succeed with identical stats.
        let exact = EngineConfig {
            max_states: usize::MAX,
            max_traces: total,
        };
        let seq_ok = TraceEngine::new(exact)
            .explore(&locs, m0.clone(), &mut Go)
            .unwrap();
        let (shard_ok, _) = TraceEngine::new(exact)
            .explore_sharded(&locs, m0, 4, || Go)
            .unwrap();
        assert_eq!(seq_ok.visited, shard_ok.visited);
    }

    #[test]
    fn sharded_stop_takes_precedence_over_budget() {
        let (locs, a, _) = locs_ab();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 4]);
        let m0 = Machine::initial(&locs, [mk(), mk()]);
        // Stops on the very first extension it sees; every shard stops
        // immediately, so exhaustion is impossible even with budget 2.
        struct StopNow;
        impl TraceVisitor<RecordedExpr> for StopNow {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                Control::Stop
            }
        }
        let tiny = EngineConfig {
            max_states: 10,
            max_traces: 2,
        };
        let (stats, visitors) = TraceEngine::new(tiny)
            .explore_sharded(&locs, m0, 2, || StopNow)
            .unwrap();
        assert_eq!(visitors.len(), 2); // one shard per root transition
        assert_eq!(stats.visited, 2); // each shard visited exactly one
    }

    #[test]
    fn trace_engine_budget_and_stop() {
        let (locs, a, _) = locs_ab();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        struct Go;
        impl TraceVisitor<RecordedExpr> for Go {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                Control::Continue
            }
        }
        let tiny = EngineConfig {
            max_states: 10,
            max_traces: 10,
        };
        let r = TraceEngine::new(tiny).explore(&locs, m0.clone(), &mut Go);
        assert!(matches!(r, Err(EngineError::BudgetExceeded { .. })));

        struct StopNow(usize);
        impl TraceVisitor<RecordedExpr> for StopNow {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                self.0 += 1;
                Control::Stop
            }
        }
        let mut v = StopNow(0);
        TraceEngine::new(EngineConfig::default())
            .explore(&locs, m0, &mut v)
            .unwrap();
        assert_eq!(v.0, 1);
    }
}
