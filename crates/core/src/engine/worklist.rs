//! Sequential engines: the iterative state-space worklist and the
//! iterative depth-first trace enumerator.
//!
//! Neither engine recurses — both carry explicit stacks — so exploration
//! depth is bounded by heap, not by the thread's call stack, and the DFS /
//! BFS choice is a one-line worklist-discipline swap.

use std::collections::VecDeque;

use crate::engine::{
    canonicalize, Control, EngineConfig, EngineError, ExploreStats, Explorer, SearchOrder,
    StateInterner, StateVisitor, TraceVisitor,
};
use crate::loc::LocSet;
use crate::machine::{Expr, Machine, Transition};
use crate::trace::TraceLabels;

/// The sequential state-space engine: an explicit worklist of machines,
/// deduplicated through a [`StateInterner`] at pop time.
///
/// [`SearchOrder::Dfs`] treats the worklist as a stack (identical
/// discovery order to the legacy recursive explorer); [`SearchOrder::Bfs`]
/// treats it as a queue. Both visit exactly the same canonical state set.
#[derive(Clone, Copy, Debug)]
pub struct WorklistEngine {
    /// Budgets.
    pub config: EngineConfig,
    /// Stack or queue discipline.
    pub order: SearchOrder,
}

impl WorklistEngine {
    /// An engine with the given budgets and search order.
    pub fn new(config: EngineConfig, order: SearchOrder) -> WorklistEngine {
        WorklistEngine { config, order }
    }
}

impl<E: Expr> Explorer<E> for WorklistEngine {
    fn explore(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        visitor: &mut dyn StateVisitor<E>,
    ) -> Result<ExploreStats, EngineError> {
        let mut interner: StateInterner<_> = StateInterner::new();
        let mut worklist: VecDeque<Machine<E>> = VecDeque::new();
        worklist.push_back(m0);
        let mut stats = ExploreStats::default();
        while let Some(m) = match self.order {
            SearchOrder::Dfs => worklist.pop_back(),
            SearchOrder::Bfs => worklist.pop_front(),
        } {
            let (id, fresh) = interner.intern(canonicalize(locs, &m)?);
            if !fresh {
                continue;
            }
            if interner.len() > self.config.max_states {
                return Err(EngineError::budget(interner.len()));
            }
            stats.visited += 1;
            match visitor.visit(&m, id) {
                Control::Stop => return Ok(stats),
                Control::Prune => continue,
                Control::Continue => {}
            }
            for t in m.transitions(locs) {
                stats.transitions += 1;
                worklist.push_back(t.target);
            }
        }
        Ok(stats)
    }
}

/// One suspended node of the iterative trace walk: the transitions enabled
/// at a machine (each consumed at most once), and how many have been
/// processed.
struct Frame<E> {
    transitions: Vec<Option<Transition<E>>>,
    next: usize,
}

impl<E: Expr> Frame<E> {
    fn at(m: &Machine<E>, locs: &LocSet) -> Frame<E> {
        Frame {
            transitions: m.transitions(locs).into_iter().map(Some).collect(),
            next: 0,
        }
    }
}

/// The iterative depth-first trace enumerator.
///
/// Enumerates every trace prefix from the initial machine (every prefix of
/// a trace is itself a trace, Definition 5), honouring the visitor's
/// `step_filter` and [`Control`] verdicts. Replaces the old recursive
/// `dfs` helper with an explicit frame stack.
#[derive(Clone, Copy, Debug)]
pub struct TraceEngine {
    /// Budgets (`max_traces` bounds the number of extensions made).
    pub config: EngineConfig,
}

impl TraceEngine {
    /// An engine with the given budgets.
    pub fn new(config: EngineConfig) -> TraceEngine {
        TraceEngine { config }
    }

    /// Walks every trace from `m0` in depth-first order, driving `visitor`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BudgetExceeded`] after `config.max_traces`
    /// extensions.
    pub fn explore<E: Expr>(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        visitor: &mut dyn TraceVisitor<E>,
    ) -> Result<ExploreStats, EngineError> {
        let mut stats = ExploreStats::default();
        let mut trace = TraceLabels::new();
        let mut frames = vec![Frame::at(&m0, locs)];
        while let Some(frame) = frames.last_mut() {
            if frame.next >= frame.transitions.len() {
                // Subtree exhausted: pop the frame, and the label that led
                // into it (the root frame has no such label).
                frames.pop();
                if !frames.is_empty() {
                    trace.pop();
                }
                continue;
            }
            let i = frame.next;
            frame.next += 1;
            stats.transitions += 1;
            let t = frame.transitions[i]
                .take()
                .expect("transition consumed once");
            if !visitor.step_filter(&t) {
                continue;
            }
            stats.visited += 1;
            if stats.visited > self.config.max_traces {
                return Err(EngineError::budget(stats.visited));
            }
            trace.push(t.label);
            match visitor.visit(&trace, &t) {
                Control::Stop => return Ok(stats),
                Control::Prune => {
                    trace.pop();
                }
                Control::Continue => {
                    frames.push(Frame::at(&t.target, locs));
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StateId;
    use crate::loc::{Loc, LocKind, Val};
    use crate::machine::{RecordedExpr, StepLabel};
    use std::collections::BTreeSet;

    fn locs_ab() -> (LocSet, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        (l, a, b)
    }

    fn sb_machine(locs: &LocSet, a: Loc, b: Loc) -> Machine<RecordedExpr> {
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
        Machine::initial(locs, [p0, p1])
    }

    fn terminal_reads(
        engine: &dyn Explorer<RecordedExpr>,
        locs: &LocSet,
        m0: Machine<RecordedExpr>,
    ) -> BTreeSet<Vec<i64>> {
        let mut outcomes = BTreeSet::new();
        engine
            .explore(locs, m0, &mut |m: &Machine<RecordedExpr>, _id: StateId| {
                if m.is_terminal() {
                    outcomes.insert(
                        m.threads
                            .iter()
                            .flat_map(|t| t.expr.reads.iter().map(|v| v.0))
                            .collect(),
                    );
                }
                Control::Continue
            })
            .unwrap();
        outcomes
    }

    #[test]
    fn dfs_and_bfs_agree_on_store_buffering() {
        let (locs, a, b) = locs_ab();
        let dfs = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs);
        let bfs = WorklistEngine::new(EngineConfig::default(), SearchOrder::Bfs);
        let d = terminal_reads(&dfs, &locs, sb_machine(&locs, a, b));
        let f = terminal_reads(&bfs, &locs, sb_machine(&locs, a, b));
        assert_eq!(d, f);
        assert_eq!(d.len(), 4); // SB is racy: all four outcomes
    }

    #[test]
    fn state_ids_are_dense_and_unique() {
        let (locs, a, b) = locs_ab();
        let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Bfs);
        let mut ids = Vec::new();
        engine
            .explore(
                &locs,
                sb_machine(&locs, a, b),
                &mut |_m: &Machine<RecordedExpr>, id: StateId| {
                    ids.push(id);
                    Control::Continue
                },
            )
            .unwrap();
        let unique: BTreeSet<_> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len());
        assert_eq!(ids.iter().map(|i| i.index()).max().unwrap(), ids.len() - 1);
    }

    #[test]
    fn prune_stops_expansion_but_not_exploration() {
        let (locs, a, _) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 3]);
        let m0 = Machine::initial(&locs, [p0]);
        // Prune everything: only the initial state is visited.
        let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs);
        let mut seen = 0;
        engine
            .explore(
                &locs,
                m0,
                &mut |_m: &Machine<RecordedExpr>, _id: StateId| {
                    seen += 1;
                    Control::Prune
                },
            )
            .unwrap();
        assert_eq!(seen, 1);
    }

    #[test]
    fn trace_engine_matches_recursive_interleaving_count() {
        let (locs, a, b) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        struct Count {
            complete: usize,
        }
        impl TraceVisitor<RecordedExpr> for Count {
            fn visit(&mut self, trace: &TraceLabels, t: &Transition<RecordedExpr>) -> Control {
                if trace.len() == 2 && t.target.is_terminal() {
                    self.complete += 1;
                }
                Control::Continue
            }
        }
        let mut v = Count { complete: 0 };
        TraceEngine::new(EngineConfig::default())
            .explore(&locs, m0, &mut v)
            .unwrap();
        assert_eq!(v.complete, 2);
    }

    #[test]
    fn trace_engine_budget_and_stop() {
        let (locs, a, _) = locs_ab();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        struct Go;
        impl TraceVisitor<RecordedExpr> for Go {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                Control::Continue
            }
        }
        let tiny = EngineConfig {
            max_states: 10,
            max_traces: 10,
        };
        let r = TraceEngine::new(tiny).explore(&locs, m0.clone(), &mut Go);
        assert!(matches!(r, Err(EngineError::BudgetExceeded { .. })));

        struct StopNow(usize);
        impl TraceVisitor<RecordedExpr> for StopNow {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                self.0 += 1;
                Control::Stop
            }
        }
        let mut v = StopNow(0);
        TraceEngine::new(EngineConfig::default())
            .explore(&locs, m0, &mut v)
            .unwrap();
        assert_eq!(v.0, 1);
    }
}
