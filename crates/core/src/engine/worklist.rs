//! Sequential engines: the iterative state-space worklist and the
//! iterative depth-first trace enumerator — plus the sharded trace walk
//! ([`TraceEngine::explore_sharded`]) that forks the enumeration across
//! the work-stealing pool, re-forking below the root when the root
//! frontier alone cannot feed it.
//!
//! Neither engine recurses — both carry explicit stacks — so exploration
//! depth is bounded by heap, not by the thread's call stack, and the DFS /
//! BFS choice is a one-line worklist-discipline swap.
//!
//! State dedup is fingerprint-first by default ([`Dedup`]): a popped
//! machine is identified by its zero-allocation streaming
//! [`canonical_fingerprint`], and the full [`crate::engine::CanonState`]
//! is only built on first visit (or on a verified fingerprint collision).
//! [`Dedup::FullState`] keeps the old build-then-hash path alive as the
//! reference the property suites compare against.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::engine::graph::RecordedNode;
use crate::engine::{
    canonicalize, intern_canonical, parallel_map_with, Control, Dedup, EngineConfig, EngineError,
    ExploreStats, Explorer, MergeableVisitor, SearchOrder, StateGraph, StateId, StateInterner,
    StateVisitor, TraceGraph, TraceVisitor,
};
use crate::loc::LocSet;
use crate::machine::{Expr, Machine, Transition};
use crate::trace::TraceLabels;

/// The sequential state-space engine: an explicit worklist of machines,
/// deduplicated through a [`StateInterner`] at pop time.
///
/// [`SearchOrder::Dfs`] treats the worklist as a stack (identical
/// discovery order to the legacy recursive explorer); [`SearchOrder::Bfs`]
/// treats it as a queue. Both visit exactly the same canonical state set,
/// under either [`Dedup`] mode.
#[derive(Clone, Copy, Debug)]
pub struct WorklistEngine {
    /// Budgets.
    pub config: EngineConfig,
    /// Stack or queue discipline.
    pub order: SearchOrder,
    /// Fingerprint-first (default) or full-state reference dedup.
    pub dedup: Dedup,
}

impl WorklistEngine {
    /// An engine with the given budgets and search order (fingerprint
    /// dedup).
    pub fn new(config: EngineConfig, order: SearchOrder) -> WorklistEngine {
        WorklistEngine {
            config,
            order,
            dedup: Dedup::default(),
        }
    }

    /// An engine with an explicit [`Dedup`] mode.
    pub fn with_dedup(config: EngineConfig, order: SearchOrder, dedup: Dedup) -> WorklistEngine {
        WorklistEngine {
            config,
            order,
            dedup,
        }
    }

    /// Identifies `m` in the interner under the engine's [`Dedup`] mode.
    fn intern<E: Expr>(
        dedup: Dedup,
        interner: &mut StateInterner<crate::engine::CanonState<E>>,
        locs: &LocSet,
        m: &Machine<E>,
    ) -> Result<(StateId, bool), EngineError> {
        match dedup {
            Dedup::FingerprintFirst => intern_canonical(interner, locs, m),
            Dedup::FullState => Ok(interner.intern(canonicalize(locs, m)?)),
        }
    }

    /// Fully explores the state space from `m0` (no visitor, no pruning),
    /// recording the interned successor graph: per dense [`StateId`], its
    /// successor ids — one entry per transition — and terminal flag, with
    /// the canonical states retained for replay. Dedup here claims
    /// successors at *expansion* time (the worklist holds only fresh
    /// states), so the visited canonical state set is identical to
    /// [`Explorer::explore`]'s while every edge endpoint has a known id.
    ///
    /// # Errors
    ///
    /// As [`Explorer::explore`]: budget exhaustion or a corrupted machine.
    pub fn explore_graph<E: Expr>(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
    ) -> Result<(StateGraph<E>, ExploreStats), EngineError> {
        let mut span = bdrst_obs::span(bdrst_obs::Phase::Explore);
        let started = std::time::Instant::now();
        let mut interner: StateInterner<crate::engine::CanonState<E>> = StateInterner::new();
        let mut edges: Vec<(StateId, StateId)> = Vec::new();
        let mut terminal: Vec<bool> = Vec::new();
        let mut stats = ExploreStats::default();

        let (id0, _) = Self::intern(self.dedup, &mut interner, locs, &m0)?;
        terminal.push(false);
        let mut worklist: VecDeque<(StateId, Machine<E>)> = VecDeque::new();
        worklist.push_back((id0, m0));
        while let Some((id, m)) = match self.order {
            SearchOrder::Dfs => worklist.pop_back(),
            SearchOrder::Bfs => worklist.pop_front(),
        } {
            stats.visited += 1;
            bdrst_obs::counter_add(bdrst_obs::Counter::StatesVisited, 1);
            bdrst_obs::counter_max(bdrst_obs::Counter::FrontierHighWater, worklist.len() as u64);
            bdrst_obs::progress_tick(stats.visited as u64, self.config.max_states as u64);
            let transitions = m.transitions(locs);
            terminal[id.index()] = transitions.is_empty();
            for t in transitions {
                stats.transitions += 1;
                let (succ, fresh) = Self::intern(self.dedup, &mut interner, locs, &t.target)?;
                edges.push((id, succ));
                if fresh {
                    terminal.push(false);
                    worklist.push_back((succ, t.target));
                }
            }
            if interner.len() > self.config.max_states {
                return Err(EngineError::budget(interner.len()));
            }
        }
        bdrst_obs::counter_add(
            bdrst_obs::Counter::ExploreNanos,
            started.elapsed().as_nanos() as u64,
        );
        span.set_arg(stats.visited as u64);
        Ok((
            StateGraph::from_parts(interner.into_states(), &edges, terminal),
            stats,
        ))
    }
}

impl<E: Expr> Explorer<E> for WorklistEngine {
    fn explore(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        visitor: &mut dyn StateVisitor<E>,
    ) -> Result<ExploreStats, EngineError> {
        let mut span = bdrst_obs::span(bdrst_obs::Phase::Explore);
        let started = std::time::Instant::now();
        let mut interner: StateInterner<crate::engine::CanonState<E>> = StateInterner::new();
        let mut worklist: VecDeque<Machine<E>> = VecDeque::new();
        worklist.push_back(m0);
        let mut stats = ExploreStats::default();
        let finish = |stats: ExploreStats, span: &mut bdrst_obs::SpanGuard| {
            bdrst_obs::counter_add(
                bdrst_obs::Counter::ExploreNanos,
                started.elapsed().as_nanos() as u64,
            );
            span.set_arg(stats.visited as u64);
            stats
        };
        while let Some(m) = match self.order {
            SearchOrder::Dfs => worklist.pop_back(),
            SearchOrder::Bfs => worklist.pop_front(),
        } {
            let (id, fresh) = Self::intern(self.dedup, &mut interner, locs, &m)?;
            if !fresh {
                continue;
            }
            if interner.len() > self.config.max_states {
                return Err(EngineError::budget(interner.len()));
            }
            stats.visited += 1;
            bdrst_obs::counter_add(bdrst_obs::Counter::StatesVisited, 1);
            bdrst_obs::counter_max(bdrst_obs::Counter::FrontierHighWater, worklist.len() as u64);
            bdrst_obs::progress_tick(stats.visited as u64, self.config.max_states as u64);
            match visitor.visit(&m, id) {
                Control::Stop => return Ok(finish(stats, &mut span)),
                Control::Prune => continue,
                Control::Continue => {}
            }
            for t in m.transitions(locs) {
                stats.transitions += 1;
                worklist.push_back(t.target);
            }
        }
        Ok(finish(stats, &mut span))
    }
}

/// One suspended node of the iterative trace walk: the transitions enabled
/// at a machine (each consumed at most once), and how many have been
/// processed.
struct Frame<E> {
    transitions: Vec<Option<Transition<E>>>,
    next: usize,
}

impl<E: Expr> Frame<E> {
    fn at(m: &Machine<E>, locs: &LocSet) -> Frame<E> {
        Frame {
            transitions: m.transitions(locs).into_iter().map(Some).collect(),
            next: 0,
        }
    }

    /// A root frame restricted to a single transition — the fork point of
    /// one shard of [`TraceEngine::explore_sharded`].
    fn single(t: Transition<E>) -> Frame<E> {
        Frame {
            transitions: vec![Some(t)],
            next: 0,
        }
    }
}

/// How one (sub)walk of the trace tree ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WalkEnd {
    /// Every trace in the subtree was enumerated (or pruned).
    Exhausted,
    /// The visitor returned [`Control::Stop`].
    Stopped,
}

/// The iterative depth-first walk shared by the sequential and sharded
/// trace enumerations. `trace` seeds the label stack (empty for a
/// root-anchored walk, the fork prefix for a deep shard); `budget` holds
/// the *remaining* extension budget — a plain counter for a sequential
/// walk and shared across shards for a sharded one, so splitting the work
/// never splits the budget.
fn walk_traces<E: Expr>(
    locs: &LocSet,
    mut frames: Vec<Frame<E>>,
    mut trace: TraceLabels,
    visitor: &mut dyn TraceVisitor<E>,
    budget: &AtomicUsize,
    max_traces: usize,
    stats: &mut ExploreStats,
) -> Result<WalkEnd, EngineError> {
    let _span = bdrst_obs::span(bdrst_obs::Phase::TraceWalk);
    let base_depth = trace.len();
    while let Some(frame) = frames.last_mut() {
        if frame.next >= frame.transitions.len() {
            // Subtree exhausted: pop the frame, and the label that led
            // into it (the root frame has no such label).
            frames.pop();
            if trace.len() > base_depth {
                trace.pop();
            }
            continue;
        }
        let i = frame.next;
        frame.next += 1;
        stats.transitions += 1;
        let t = frame.transitions[i]
            .take()
            .expect("transition consumed once");
        if !visitor.step_filter(&t) {
            continue;
        }
        if budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_err()
        {
            // The budget counts down from `max_traces`; exhaustion means
            // the whole enumeration (across every shard) attempted its
            // (max_traces + 1)-th extension — the same count the
            // sequential engine reports.
            return Err(EngineError::budget(max_traces + 1));
        }
        stats.visited += 1;
        trace.push(t.label);
        match visitor.visit(&trace, &t) {
            Control::Stop => return Ok(WalkEnd::Stopped),
            Control::Prune => {
                trace.pop();
            }
            Control::Continue => {
                frames.push(Frame::at(&t.target, locs));
            }
        }
    }
    Ok(WalkEnd::Exhausted)
}

/// Trunk expansion stops after this many levels even if the fork frontier
/// is still narrower than the pool: a frontier that fails to widen within
/// a few levels is chain-shaped, and serialising more of it in the trunk
/// would cost more than the parallelism it buys.
const MAX_FORK_DEPTH: usize = 16;

/// The iterative depth-first trace enumerator.
///
/// Enumerates every trace prefix from the initial machine (every prefix of
/// a trace is itself a trace, Definition 5), honouring the visitor's
/// `step_filter` and [`Control`] verdicts. Replaces the old recursive
/// `dfs` helper with an explicit frame stack.
#[derive(Clone, Copy, Debug)]
pub struct TraceEngine {
    /// Budgets (`max_traces` bounds the number of extensions made).
    pub config: EngineConfig,
}

impl TraceEngine {
    /// An engine with the given budgets.
    pub fn new(config: EngineConfig) -> TraceEngine {
        TraceEngine { config }
    }

    /// Walks every trace from `m0` in depth-first order, driving `visitor`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BudgetExceeded`] after `config.max_traces`
    /// extensions.
    pub fn explore<E: Expr>(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        visitor: &mut dyn TraceVisitor<E>,
    ) -> Result<ExploreStats, EngineError> {
        let mut stats = ExploreStats::default();
        let budget = AtomicUsize::new(self.config.max_traces);
        walk_traces(
            locs,
            vec![Frame::at(&m0, locs)],
            TraceLabels::new(),
            visitor,
            &budget,
            self.config.max_traces,
            &mut stats,
        )?;
        Ok(stats)
    }

    /// Records the complete trace tree from `m0` — unfiltered and
    /// unpruned, bounded by `config.max_traces` — as a [`TraceGraph`]
    /// replayable under any number of predicates without re-running the
    /// transition semantics. Each recorded node carries the extension's
    /// label and the labels enabled at its target, which is everything
    /// the label-level checkers consume.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BudgetExceeded`] if the full tree exceeds
    /// `config.max_traces` extensions. (A *filtered* live walk can fit a
    /// budget the full tree exceeds; recording trades that slack for
    /// replayability.)
    pub fn record<E: Expr>(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
    ) -> Result<(TraceGraph, ExploreStats), EngineError> {
        const ROOT: u32 = u32::MAX;
        struct RecFrame<E> {
            node: u32,
            transitions: Vec<Option<Transition<E>>>,
            next: usize,
        }
        let mut stats = ExploreStats::default();
        let mut nodes: Vec<RecordedNode> = Vec::new();
        let mut pool: Vec<crate::machine::TransitionLabel> = Vec::new();
        let mut budget = self.config.max_traces;

        let root_ts = m0.transitions(locs);
        let root_enabled: Vec<_> = root_ts.iter().map(|t| t.label).collect();
        let mut stack = vec![RecFrame {
            node: ROOT,
            transitions: root_ts.into_iter().map(Some).collect(),
            next: 0,
        }];
        while let Some(frame) = stack.last_mut() {
            if frame.next >= frame.transitions.len() {
                stack.pop();
                continue;
            }
            let parent = frame.node;
            let i = frame.next;
            frame.next += 1;
            stats.transitions += 1;
            let t = frame.transitions[i]
                .take()
                .expect("transition consumed once");
            if budget == 0 {
                return Err(EngineError::budget(self.config.max_traces + 1));
            }
            budget -= 1;
            stats.visited += 1;
            let node = nodes.len() as u32;
            let ts = t.target.transitions(locs);
            let start = pool.len() as u32;
            pool.extend(ts.iter().map(|c| c.label));
            nodes.push(RecordedNode {
                parent,
                label: t.label,
                enabled: (start, ts.len() as u32),
            });
            stack.push(RecFrame {
                node,
                transitions: ts.into_iter().map(Some).collect(),
                next: 0,
            });
        }
        Ok((TraceGraph::from_parts(nodes, pool, root_enabled), stats))
    }

    /// Walks every trace from `m0`, sharded across the work-stealing pool.
    ///
    /// Trace subtrees share no state, so any *frontier* of the tree is an
    /// exact partition: by default each transition enabled at the root
    /// starts an independent label stack explored with its own visitor
    /// from `make_visitor`. When the root frontier is narrower than the
    /// worker pool, the walk first expands a *trunk* — breadth-first, on
    /// the calling thread, driven by a dedicated trunk visitor — until
    /// the fork frontier is at least as wide as the pool (or stops
    /// widening); the fork points then shard as usual, each seeded with
    /// its prefix labels. Every trace prefix is still visited exactly
    /// once, by exactly one visitor.
    ///
    /// The trace budget is a single atomic counter shared by the trunk
    /// and every shard — splitting the work never splits the budget, so
    /// for visitors that run to exhaustion a sharded walk errs out if and
    /// only if the total number of extensions exceeds
    /// `config.max_traces`, exactly like [`TraceEngine::explore`]. The
    /// combined statistics and every visitor (the trunk visitor first,
    /// then the shard visitors in fork order — root-transition order when
    /// no trunk was needed) are returned for verdict merging;
    /// [`TraceEngine::explore_sharded_merged`] folds them for
    /// [`MergeableVisitor`]s.
    ///
    /// One shard returning [`Control::Stop`] does not interrupt its
    /// siblings (they run to completion), and a stopped visitor's verdict
    /// takes precedence over a concurrent budget trip in another shard;
    /// a *trunk* stop ends the walk before the shards launch (its verdict
    /// is already in hand). When a *stopping* visitor meets a budget
    /// close to the space it would explore, which of the two lands first
    /// is search-order dependent even sequentially (DFS and BFS intern
    /// different prefixes); this engine resolves that race
    /// deterministically in favour of the verdict.
    ///
    /// `threads == 0` means all cores (honouring `BDRST_ENGINE_THREADS`).
    ///
    /// # Errors
    ///
    /// [`EngineError::BudgetExceeded`] if the walk jointly exceeds
    /// `config.max_traces` extensions and no visitor stopped;
    /// [`EngineError::CorruptFrontier`] if any shard reaches a corrupted
    /// machine.
    pub fn explore_sharded<E, V, F>(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        threads: usize,
        make_visitor: F,
    ) -> Result<(ExploreStats, Vec<V>), EngineError>
    where
        E: Expr + Send + Sync,
        V: TraceVisitor<E> + Send,
        F: Fn() -> V + Sync,
    {
        let workers = crate::engine::engine_threads(threads);
        let budget = AtomicUsize::new(self.config.max_traces);
        let max_traces = self.config.max_traces;
        let mut stats = ExploreStats::default();

        // The fork frontier: each entry is one unvisited transition plus
        // the (already visited) prefix leading to it.
        let mut forks: Vec<(TraceLabels, Transition<E>)> = m0
            .transitions(locs)
            .into_iter()
            .map(|t| (TraceLabels::new(), t))
            .collect();

        let mut trunk = make_visitor();
        let mut trunk_stopped = false;
        let mut budget_error = None;
        let mut depth = 0;
        while workers > 1
            && !forks.is_empty()
            && forks.len() < workers
            && depth < MAX_FORK_DEPTH
            && !trunk_stopped
            && budget_error.is_none()
        {
            depth += 1;
            let level = std::mem::take(&mut forks);
            'level: for (prefix, t) in level {
                stats.transitions += 1;
                if !trunk.step_filter(&t) {
                    continue;
                }
                if budget
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                    .is_err()
                {
                    budget_error = Some(EngineError::budget(max_traces + 1));
                    break 'level;
                }
                stats.visited += 1;
                let mut trace = prefix;
                trace.push(t.label);
                match trunk.visit(&trace, &t) {
                    Control::Stop => {
                        trunk_stopped = true;
                        break 'level;
                    }
                    Control::Prune => {}
                    Control::Continue => {
                        for child in t.target.transitions(locs) {
                            forks.push((trace.clone(), child));
                        }
                    }
                }
            }
        }

        let shards: Vec<(V, ExploreStats, Result<WalkEnd, EngineError>)> =
            if trunk_stopped || budget_error.is_some() {
                Vec::new()
            } else {
                parallel_map_with(&forks, threads, |(prefix, t)| {
                    let mut visitor = make_visitor();
                    let mut stats = ExploreStats::default();
                    let end = walk_traces(
                        locs,
                        vec![Frame::single(t.clone())],
                        prefix.clone(),
                        &mut visitor,
                        &budget,
                        max_traces,
                        &mut stats,
                    );
                    (visitor, stats, end)
                })
            };

        let mut visitors = Vec::with_capacity(shards.len() + 1);
        visitors.push(trunk);
        let mut stopped = trunk_stopped;
        for (visitor, shard_stats, end) in shards {
            stats.visited += shard_stats.visited;
            stats.transitions += shard_stats.transitions;
            match end {
                Ok(WalkEnd::Stopped) => stopped = true,
                Ok(WalkEnd::Exhausted) => {}
                Err(e @ EngineError::BudgetExceeded { .. }) => {
                    budget_error.get_or_insert(e);
                }
                // Corruption is never masked by verdicts or budgets.
                Err(e @ EngineError::CorruptFrontier { .. }) => return Err(e),
            }
            visitors.push(visitor);
        }
        match budget_error {
            Some(e) if !stopped => Err(e),
            _ => Ok((stats, visitors)),
        }
    }

    /// [`TraceEngine::explore_sharded`] for visitors whose verdicts merge:
    /// folds every per-subtree visitor (trunk first, then fork order) into
    /// one through [`MergeableVisitor::merge`], so checkers need no
    /// per-call verdict plumbing.
    ///
    /// # Errors
    ///
    /// As [`TraceEngine::explore_sharded`].
    pub fn explore_sharded_merged<E, V, F>(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        threads: usize,
        make_visitor: F,
    ) -> Result<(ExploreStats, V), EngineError>
    where
        E: Expr + Send + Sync,
        V: TraceVisitor<E> + MergeableVisitor + Send,
        F: Fn() -> V + Sync,
    {
        let (stats, visitors) = self.explore_sharded(locs, m0, threads, make_visitor)?;
        let mut it = visitors.into_iter();
        let mut merged = it.next().expect("the trunk visitor is always present");
        for v in it {
            merged.merge(v);
        }
        Ok((stats, merged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StateId;
    use crate::loc::{Loc, LocKind, Val};
    use crate::machine::{RecordedExpr, StepLabel};
    use std::collections::BTreeSet;

    fn locs_ab() -> (LocSet, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        (l, a, b)
    }

    fn sb_machine(locs: &LocSet, a: Loc, b: Loc) -> Machine<RecordedExpr> {
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
        Machine::initial(locs, [p0, p1])
    }

    fn terminal_reads(
        engine: &dyn Explorer<RecordedExpr>,
        locs: &LocSet,
        m0: Machine<RecordedExpr>,
    ) -> BTreeSet<Vec<i64>> {
        let mut outcomes = BTreeSet::new();
        engine
            .explore(locs, m0, &mut |m: &Machine<RecordedExpr>, _id: StateId| {
                if m.is_terminal() {
                    outcomes.insert(
                        m.threads
                            .iter()
                            .flat_map(|t| t.expr.reads.iter().map(|v| v.0))
                            .collect(),
                    );
                }
                Control::Continue
            })
            .unwrap();
        outcomes
    }

    #[test]
    fn dfs_and_bfs_agree_on_store_buffering() {
        let (locs, a, b) = locs_ab();
        let dfs = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs);
        let bfs = WorklistEngine::new(EngineConfig::default(), SearchOrder::Bfs);
        let d = terminal_reads(&dfs, &locs, sb_machine(&locs, a, b));
        let f = terminal_reads(&bfs, &locs, sb_machine(&locs, a, b));
        assert_eq!(d, f);
        assert_eq!(d.len(), 4); // SB is racy: all four outcomes
    }

    #[test]
    fn dedup_modes_agree() {
        let (locs, a, b) = locs_ab();
        for order in [SearchOrder::Dfs, SearchOrder::Bfs] {
            let fp =
                WorklistEngine::with_dedup(EngineConfig::default(), order, Dedup::FingerprintFirst);
            let full = WorklistEngine::with_dedup(EngineConfig::default(), order, Dedup::FullState);
            assert_eq!(
                terminal_reads(&fp, &locs, sb_machine(&locs, a, b)),
                terminal_reads(&full, &locs, sb_machine(&locs, a, b))
            );
        }
    }

    #[test]
    fn forced_collisions_do_not_change_dedup() {
        // Truncate fingerprints to 4 bits: nearly everything collides, and
        // the verified-equality path must keep the visited set exact.
        let _guard = crate::engine::canon::collisions::force(4);
        let (locs, a, b) = locs_ab();
        let fp = WorklistEngine::with_dedup(
            EngineConfig::default(),
            SearchOrder::Dfs,
            Dedup::FingerprintFirst,
        );
        let full =
            WorklistEngine::with_dedup(EngineConfig::default(), SearchOrder::Dfs, Dedup::FullState);
        let mut count_fp = 0usize;
        fp.explore(
            &locs,
            sb_machine(&locs, a, b),
            &mut |_: &Machine<RecordedExpr>, _: StateId| {
                count_fp += 1;
                Control::Continue
            },
        )
        .unwrap();
        let mut count_full = 0usize;
        full.explore(
            &locs,
            sb_machine(&locs, a, b),
            &mut |_: &Machine<RecordedExpr>, _: StateId| {
                count_full += 1;
                Control::Continue
            },
        )
        .unwrap();
        assert_eq!(count_fp, count_full);
    }

    /// Tiny deterministic generator (xorshift64*) for the in-crate random
    /// program suite — the integration proptest suites cover the litmus
    /// language; this one covers [`RecordedExpr`] with forced fingerprint
    /// collisions, which only a unit test can switch on.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545f4914f6cdd1d)
        }
    }

    #[test]
    fn fingerprint_dedup_matches_full_dedup_on_random_programs_with_collisions() {
        // 8-bit fingerprints over ≥128 random two-thread programs: the
        // collision-verification path runs constantly, and the visited
        // state count and terminal outcome set must match full-state
        // dedup on every program.
        let _guard = crate::engine::canon::collisions::force(8);
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let b = locs.fresh("b", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let pool = [a, b, f];
        let mut rng = Rng(0x5eed_cafe_f00d_1234);
        for case in 0..128 {
            let thread = |rng: &mut Rng| {
                let len = 1 + (rng.next() % 4) as usize;
                RecordedExpr::new(
                    (0..len)
                        .map(|_| {
                            let l = pool[(rng.next() % 3) as usize];
                            if rng.next().is_multiple_of(2) {
                                StepLabel::Read(l)
                            } else {
                                StepLabel::Write(l, Val((rng.next() % 2 + 1) as i64))
                            }
                        })
                        .collect(),
                )
            };
            let prog = [thread(&mut rng), thread(&mut rng)];
            let m0 = Machine::initial(&locs, prog);
            let run = |dedup: Dedup| {
                let engine =
                    WorklistEngine::with_dedup(EngineConfig::default(), SearchOrder::Dfs, dedup);
                let mut visited = 0usize;
                let mut outcomes: BTreeSet<Vec<i64>> = BTreeSet::new();
                engine
                    .explore(
                        &locs,
                        m0.clone(),
                        &mut |m: &Machine<RecordedExpr>, _: StateId| {
                            visited += 1;
                            if m.is_terminal() {
                                outcomes.insert(
                                    m.threads
                                        .iter()
                                        .flat_map(|t| t.expr.reads.iter().map(|v| v.0))
                                        .collect(),
                                );
                            }
                            Control::Continue
                        },
                    )
                    .unwrap();
                (visited, outcomes)
            };
            let fp = run(Dedup::FingerprintFirst);
            let full = run(Dedup::FullState);
            assert_eq!(fp, full, "dedup modes diverge on case {case}");
        }
    }

    #[test]
    fn state_ids_are_dense_and_unique() {
        let (locs, a, b) = locs_ab();
        let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Bfs);
        let mut ids = Vec::new();
        engine
            .explore(
                &locs,
                sb_machine(&locs, a, b),
                &mut |_m: &Machine<RecordedExpr>, id: StateId| {
                    ids.push(id);
                    Control::Continue
                },
            )
            .unwrap();
        let unique: BTreeSet<_> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len());
        assert_eq!(ids.iter().map(|i| i.index()).max().unwrap(), ids.len() - 1);
    }

    #[test]
    fn prune_stops_expansion_but_not_exploration() {
        let (locs, a, _) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 3]);
        let m0 = Machine::initial(&locs, [p0]);
        // Prune everything: only the initial state is visited.
        let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs);
        let mut seen = 0;
        engine
            .explore(
                &locs,
                m0,
                &mut |_m: &Machine<RecordedExpr>, _id: StateId| {
                    seen += 1;
                    Control::Prune
                },
            )
            .unwrap();
        assert_eq!(seen, 1);
    }

    #[test]
    fn explore_graph_visits_same_state_set() {
        let (locs, a, b) = locs_ab();
        let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs);
        let mut live = 0usize;
        engine
            .explore(
                &locs,
                sb_machine(&locs, a, b),
                &mut |_: &Machine<RecordedExpr>, _: StateId| {
                    live += 1;
                    Control::Continue
                },
            )
            .unwrap();
        let (graph, stats) = engine
            .explore_graph(&locs, sb_machine(&locs, a, b))
            .unwrap();
        assert_eq!(graph.len(), live);
        assert_eq!(stats.visited, live);
    }

    #[test]
    fn explore_graph_budget_is_enforced() {
        let (locs, a, _) = locs_ab();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        let tiny = EngineConfig {
            max_states: 10,
            max_traces: 10,
        };
        let engine = WorklistEngine::new(tiny, SearchOrder::Dfs);
        assert!(matches!(
            engine.explore_graph(&locs, m0),
            Err(EngineError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn trace_engine_matches_recursive_interleaving_count() {
        let (locs, a, b) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        struct Count {
            complete: usize,
        }
        impl TraceVisitor<RecordedExpr> for Count {
            fn visit(&mut self, trace: &TraceLabels, t: &Transition<RecordedExpr>) -> Control {
                if trace.len() == 2 && t.target.is_terminal() {
                    self.complete += 1;
                }
                Control::Continue
            }
        }
        let mut v = Count { complete: 0 };
        TraceEngine::new(EngineConfig::default())
            .explore(&locs, m0, &mut v)
            .unwrap();
        assert_eq!(v.complete, 2);
    }

    /// Counts complete interleavings; used by the sharded agreement tests.
    struct CountComplete {
        len: usize,
        complete: usize,
    }

    impl TraceVisitor<RecordedExpr> for CountComplete {
        fn visit(&mut self, trace: &TraceLabels, t: &Transition<RecordedExpr>) -> Control {
            if trace.len() == self.len && t.target.is_terminal() {
                self.complete += 1;
            }
            Control::Continue
        }
    }

    impl MergeableVisitor for CountComplete {
        fn merge(&mut self, other: Self) {
            self.complete += other.complete;
        }
    }

    #[test]
    fn sharded_trace_walk_matches_sequential() {
        let (locs, a, b) = locs_ab();
        let m0 = sb_machine(&locs, a, b);
        let mut seq = CountComplete {
            len: 4,
            complete: 0,
        };
        let seq_stats = TraceEngine::new(EngineConfig::default())
            .explore(&locs, m0.clone(), &mut seq)
            .unwrap();
        // workers (4) exceed the root frontier (2): the walk re-forks
        // below the root, and the totals must still match exactly.
        let (shard_stats, visitors) = TraceEngine::new(EngineConfig::default())
            .explore_sharded(&locs, m0.clone(), 4, || CountComplete {
                len: 4,
                complete: 0,
            })
            .unwrap();
        let sharded: usize = visitors.iter().map(|v| v.complete).sum();
        assert_eq!(seq.complete, sharded);
        assert_eq!(seq_stats.visited, shard_stats.visited);
        assert_eq!(seq_stats.transitions, shard_stats.transitions);
        assert!(
            visitors.len() > 3,
            "root frontier (2) should have re-forked for 4 workers"
        );

        // The merged variant folds the same verdict.
        let (merged_stats, merged) = TraceEngine::new(EngineConfig::default())
            .explore_sharded_merged(&locs, m0, 4, || CountComplete {
                len: 4,
                complete: 0,
            })
            .unwrap();
        assert_eq!(merged.complete, seq.complete);
        assert_eq!(merged_stats.visited, seq_stats.visited);
    }

    #[test]
    fn sharded_budget_is_shared_not_split() {
        // A budget big enough for any single shard but not for the whole
        // tree must still trip — the shards share one atomic counter.
        let (locs, a, b) = locs_ab();
        let m0 = sb_machine(&locs, a, b);
        #[derive(Debug)]
        struct Go;
        impl TraceVisitor<RecordedExpr> for Go {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                Control::Continue
            }
        }
        let total = TraceEngine::new(EngineConfig::default())
            .explore(&locs, m0.clone(), &mut Go)
            .unwrap()
            .visited;
        let tight = EngineConfig {
            max_states: usize::MAX,
            max_traces: total - 1,
        };
        let seq = TraceEngine::new(tight).explore(&locs, m0.clone(), &mut Go);
        let sharded = TraceEngine::new(tight).explore_sharded(&locs, m0.clone(), 4, || Go);
        assert_eq!(seq.unwrap_err(), EngineError::budget(total));
        assert_eq!(sharded.unwrap_err(), EngineError::budget(total));

        // With exactly enough budget, both succeed with identical stats.
        let exact = EngineConfig {
            max_states: usize::MAX,
            max_traces: total,
        };
        let seq_ok = TraceEngine::new(exact)
            .explore(&locs, m0.clone(), &mut Go)
            .unwrap();
        let (shard_ok, _) = TraceEngine::new(exact)
            .explore_sharded(&locs, m0, 4, || Go)
            .unwrap();
        assert_eq!(seq_ok.visited, shard_ok.visited);
    }

    #[test]
    fn sharded_stop_takes_precedence_over_budget() {
        let (locs, a, _) = locs_ab();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 4]);
        let m0 = Machine::initial(&locs, [mk(), mk()]);
        // Stops on the very first extension it sees; every shard stops
        // immediately, so exhaustion is impossible even with budget 2.
        struct StopNow;
        impl TraceVisitor<RecordedExpr> for StopNow {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                Control::Stop
            }
        }
        let tiny = EngineConfig {
            max_states: 10,
            max_traces: 2,
        };
        let (stats, visitors) = TraceEngine::new(tiny)
            .explore_sharded(&locs, m0, 2, || StopNow)
            .unwrap();
        // The root frontier (2) matches the worker count (2): no trunk
        // expansion, one shard per root transition plus the idle trunk
        // visitor.
        assert_eq!(visitors.len(), 3);
        assert_eq!(stats.visited, 2); // each shard visited exactly one
    }

    #[test]
    fn deep_sharding_narrow_root_matches_sequential() {
        // A single thread: the root frontier has exactly one transition,
        // the worst case for root-only forking. The trunk must re-fork
        // and still visit every prefix exactly once.
        let (locs, a, b) = locs_ab();
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(b, Val(1)),
            StepLabel::Read(a),
            StepLabel::Read(b),
        ]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let mut seq = CountComplete {
            len: 5,
            complete: 0,
        };
        let seq_stats = TraceEngine::new(EngineConfig::default())
            .explore(&locs, m0.clone(), &mut seq)
            .unwrap();
        let (shard_stats, merged) = TraceEngine::new(EngineConfig::default())
            .explore_sharded_merged(&locs, m0, 8, || CountComplete {
                len: 5,
                complete: 0,
            })
            .unwrap();
        assert_eq!(seq.complete, merged.complete);
        assert_eq!(seq_stats.visited, shard_stats.visited);
        assert_eq!(seq_stats.transitions, shard_stats.transitions);
    }

    #[test]
    fn trace_engine_budget_and_stop() {
        let (locs, a, _) = locs_ab();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        struct Go;
        impl TraceVisitor<RecordedExpr> for Go {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                Control::Continue
            }
        }
        let tiny = EngineConfig {
            max_states: 10,
            max_traces: 10,
        };
        let r = TraceEngine::new(tiny).explore(&locs, m0.clone(), &mut Go);
        assert!(matches!(r, Err(EngineError::BudgetExceeded { .. })));

        struct StopNow(usize);
        impl TraceVisitor<RecordedExpr> for StopNow {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                self.0 += 1;
                Control::Stop
            }
        }
        let mut v = StopNow(0);
        TraceEngine::new(EngineConfig::default())
            .explore(&locs, m0, &mut v)
            .unwrap();
        assert_eq!(v.0, 1);
    }
}
