//! Canonical-state interning: hash once, store dense `u32` ids.
//!
//! The old explorer kept a `HashSet<CanonState>` and re-hashed every probe;
//! the interner wraps each canonical state in [`Hashed`] (the 64-bit hash
//! is computed exactly once, at admission) and maps it to a dense
//! [`StateId`] in discovery order. Visitors receive ids, so downstream
//! bookkeeping (terminal sets, parent maps, future sharding) can work with
//! 4-byte handles instead of cloned machines.
//!
//! Two flavours share the same claim semantics:
//!
//! * [`StateInterner`] — single-threaded, used by the worklist engine;
//! * [`SharedInterner`] — lock-striped across shards, used by the parallel
//!   engine. `claim` admits each canonical state exactly once across all
//!   threads, which is what makes parallel exploration outcome-equivalent
//!   to sequential exploration.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// A dense identifier for an interned canonical state, assigned in
/// discovery order starting from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// The id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A value carrying its own precomputed hash.
///
/// Hashing a [`crate::engine::CanonState`] walks the whole store and every
/// thread; `Hashed` does that walk exactly once. The hasher is
/// [`DefaultHasher`] *with its default keys*, which is deterministic
/// across processes and runs — a property the engine tests rely on.
#[derive(Clone, Debug)]
pub struct Hashed<T> {
    hash: u64,
    value: T,
}

impl<T: Hash> Hashed<T> {
    /// Wraps `value`, computing its hash once.
    pub fn new(value: T) -> Hashed<T> {
        let mut h = DefaultHasher::new();
        value.hash(&mut h);
        Hashed {
            hash: h.finish(),
            value,
        }
    }

    /// The precomputed 64-bit hash.
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// The wrapped value.
    pub fn get(&self) -> &T {
        &self.value
    }
}

impl<T: PartialEq> PartialEq for Hashed<T> {
    fn eq(&self, other: &Hashed<T>) -> bool {
        self.hash == other.hash && self.value == other.value
    }
}

impl<T: Eq> Eq for Hashed<T> {}

impl<T> Hash for Hashed<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Single-threaded interner: canonical form → dense [`StateId`].
#[derive(Default)]
pub struct StateInterner<T> {
    map: HashMap<Hashed<T>, StateId>,
}

impl<T: Hash + Eq> StateInterner<T> {
    /// An empty interner.
    pub fn new() -> StateInterner<T> {
        StateInterner {
            map: HashMap::new(),
        }
    }

    /// Interns `value`: returns its id and whether it was freshly admitted.
    pub fn intern(&mut self, value: T) -> (StateId, bool) {
        let next = StateId(self.map.len() as u32);
        match self.map.entry(Hashed::new(value)) {
            Entry::Occupied(e) => (*e.get(), false),
            Entry::Vacant(v) => {
                v.insert(next);
                (next, true)
            }
        }
    }

    /// Number of distinct states admitted.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

const SHARDS: usize = 16;

/// Thread-safe interner, lock-striped over [`SHARDS`] shards selected by
/// the precomputed hash. Ids remain globally unique and dense-ish (a
/// single atomic counter), but their order depends on the race between
/// claiming threads.
pub struct SharedInterner<T> {
    shards: Vec<Mutex<HashMap<Hashed<T>, StateId>>>,
    next: AtomicU32,
}

impl<T: Hash + Eq> Default for SharedInterner<T> {
    fn default() -> SharedInterner<T> {
        SharedInterner::new()
    }
}

impl<T: Hash + Eq> SharedInterner<T> {
    /// An empty shared interner.
    pub fn new() -> SharedInterner<T> {
        SharedInterner {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            next: AtomicU32::new(0),
        }
    }

    /// Attempts to claim `value`: returns `Some(id)` iff this call admitted
    /// it (exactly one concurrent caller wins), `None` if it was already
    /// interned.
    pub fn claim(&self, value: T) -> Option<StateId> {
        let hashed = Hashed::new(value);
        let shard = (hashed.hash64() >> 60) as usize % SHARDS;
        let mut map = self.shards[shard].lock().expect("interner shard poisoned");
        match map.entry(hashed) {
            Entry::Occupied(_) => None,
            Entry::Vacant(v) => {
                let id = StateId(self.next.fetch_add(1, Ordering::Relaxed));
                v.insert(id);
                Some(id)
            }
        }
    }

    /// Number of distinct states admitted so far.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed) as usize
    }

    /// True if nothing has been claimed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn intern_is_idempotent() {
        let mut i = StateInterner::new();
        let (a, fresh_a) = i.intern("alpha");
        let (b, fresh_b) = i.intern("beta");
        let (a2, fresh_a2) = i.intern("alpha");
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn hashed_hash_is_deterministic_across_constructions() {
        let a = Hashed::new((1u32, vec![2u8, 3]));
        let b = Hashed::new((1u32, vec![2u8, 3]));
        assert_eq!(a.hash64(), b.hash64());
        assert_eq!(a, b);
    }

    #[test]
    fn shared_claim_admits_each_value_exactly_once() {
        let interner = SharedInterner::new();
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for v in 0..100u32 {
                        if interner.claim(v).is_some() {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 100);
        assert_eq!(interner.len(), 100);
    }
}
