//! Canonical-state interning: fingerprint-first dedup, dense `u32` ids,
//! and id-indexed canonical state storage.
//!
//! The first-generation interner kept a `HashMap<Hashed<CanonState>, _>`:
//! every probe — visit or re-visit — had to *build* the full canonical
//! state (fresh `Vec`s for the store, every frontier, and every thread)
//! before it could be hashed. This version probes by the 64-bit
//! [`canonical fingerprint`](crate::engine::canonical_fingerprint), which
//! streams the same canonical content into a hasher with zero allocation:
//!
//! * **re-visit (hot path)**: fingerprint → bucket → verified streaming
//!   equality against the stored state ([`crate::engine::canon_matches`]) —
//!   no allocation at all;
//! * **first visit**: fingerprint → empty bucket → build the full
//!   [`crate::engine::CanonState`] once and store it against the next
//!   dense [`StateId`];
//! * **fingerprint collision**: the bucket holds every state with that
//!   fingerprint and equality is always verified, so dedup outcomes are
//!   bit-identical to full-state dedup (the forced-collision suite pins
//!   this down by truncating fingerprints to a few bits).
//!
//! Because states are stored in a dense id-indexed table, the interner
//! doubles as the state store of the
//! [successor graph](crate::engine::StateGraph): `into_states` hands the
//! id-ordered canonical states to the graph builder without copying.
//!
//! Two flavours share the same claim semantics:
//!
//! * [`StateInterner`] — single-threaded, used by the worklist engine;
//! * [`SharedInterner`] — lock-striped across shards, used by the parallel
//!   and work-stealing engines. `claim_with` admits each canonical state
//!   exactly once across all threads, which is what makes parallel
//!   exploration outcome-equivalent to sequential exploration.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// A dense identifier for an interned canonical state, assigned in
/// discovery order starting from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// The id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A value carrying its own precomputed hash.
///
/// Hashing a [`crate::engine::CanonState`] walks the whole store and every
/// thread; `Hashed` does that walk exactly once. The hasher is
/// [`DefaultHasher`] *with its default keys*, which is deterministic
/// across processes and runs — a property the engine tests rely on.
#[derive(Clone, Debug)]
pub struct Hashed<T> {
    hash: u64,
    value: T,
}

impl<T: Hash> Hashed<T> {
    /// Wraps `value`, computing its hash once.
    pub fn new(value: T) -> Hashed<T> {
        let mut h = DefaultHasher::new();
        value.hash(&mut h);
        Hashed {
            hash: h.finish(),
            value,
        }
    }

    /// The precomputed 64-bit hash.
    pub fn hash64(&self) -> u64 {
        self.hash
    }

    /// The wrapped value.
    pub fn get(&self) -> &T {
        &self.value
    }
}

impl<T: PartialEq> PartialEq for Hashed<T> {
    fn eq(&self, other: &Hashed<T>) -> bool {
        self.hash == other.hash && self.value == other.value
    }
}

impl<T: Eq> Eq for Hashed<T> {}

impl<T> Hash for Hashed<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// The ids sharing one fingerprint. Collisions are ~2⁻⁶⁴, so the vector
/// almost always holds exactly one id; it exists for correctness, not
/// capacity.
type Bucket = Vec<StateId>;

/// Single-threaded interner: fingerprint-keyed buckets over an id-indexed
/// canonical state table.
#[derive(Default)]
pub struct StateInterner<T> {
    buckets: HashMap<u64, Bucket>,
    states: Vec<T>,
}

impl<T> StateInterner<T> {
    /// An empty interner.
    pub fn new() -> StateInterner<T> {
        StateInterner {
            buckets: HashMap::new(),
            states: Vec::new(),
        }
    }

    /// The id already stored under `fingerprint` that `matches`, if any.
    fn probe(&self, fingerprint: u64, mut matches: impl FnMut(&T) -> bool) -> Option<StateId> {
        self.buckets
            .get(&fingerprint)?
            .iter()
            .copied()
            .find(|id| matches(&self.states[id.index()]))
    }

    /// Admits `value` under `fingerprint` with the next dense id.
    fn admit(&mut self, fingerprint: u64, value: T) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.buckets.entry(fingerprint).or_default().push(id);
        self.states.push(value);
        id
    }

    /// Fingerprint-first interning, the zero-copy hot path: probes the
    /// `fingerprint` bucket, comparing candidates with `matches` (a
    /// streaming equality check that must agree with `T`'s `Eq` on the
    /// value `build` would produce). Only when no stored state matches is
    /// `build` invoked and its result admitted under the next dense id.
    ///
    /// Returns the id and whether the value was freshly admitted.
    pub fn intern_with(
        &mut self,
        fingerprint: u64,
        matches: impl FnMut(&T) -> bool,
        build: impl FnOnce() -> T,
    ) -> (StateId, bool) {
        match self.probe(fingerprint, matches) {
            Some(id) => (id, false),
            None => (self.admit(fingerprint, build()), true),
        }
    }

    /// The interned state with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this interner.
    pub fn state(&self, id: StateId) -> &T {
        &self.states[id.index()]
    }

    /// All interned states, in id order.
    pub fn states(&self) -> &[T] {
        &self.states
    }

    /// Consumes the interner, returning the id-ordered states (the state
    /// table of a [`crate::engine::StateGraph`]).
    pub fn into_states(self) -> Vec<T> {
        self.states
    }

    /// Number of distinct states admitted.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

impl<T: Hash + Eq> StateInterner<T> {
    /// Interns a fully built `value`: returns its id and whether it was
    /// freshly admitted. This is the full-state reference path (used by
    /// [`crate::engine::Dedup::FullState`] and the differential suites);
    /// the engines' hot path is [`StateInterner::intern_with`].
    pub fn intern(&mut self, value: T) -> (StateId, bool) {
        let mut h = DefaultHasher::new();
        value.hash(&mut h);
        let fp = h.finish();
        match self.probe(fp, |t| *t == value) {
            Some(id) => (id, false),
            None => (self.admit(fp, value), true),
        }
    }
}

const SHARDS: usize = 16;

/// One lock stripe of the shared interner: fingerprint-keyed buckets with
/// the states stored inline (ids are global, issued by one atomic counter).
type Shard<T> = HashMap<u64, Vec<(StateId, T)>>;

/// Thread-safe interner, lock-striped over [`SHARDS`] shards selected by
/// the fingerprint. Ids remain globally unique and dense-ish (a single
/// atomic counter), but their order depends on the race between claiming
/// threads.
pub struct SharedInterner<T> {
    shards: Vec<Mutex<Shard<T>>>,
    next: AtomicU32,
}

impl<T> Default for SharedInterner<T> {
    fn default() -> SharedInterner<T> {
        SharedInterner::new()
    }
}

impl<T> SharedInterner<T> {
    /// An empty shared interner.
    pub fn new() -> SharedInterner<T> {
        SharedInterner {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            next: AtomicU32::new(0),
        }
    }

    fn shard_of(fingerprint: u64) -> usize {
        // High bits select the shard; bucket lookup uses the full value.
        (fingerprint >> 60) as usize % SHARDS
    }

    /// Fingerprint-first claim-or-lookup: returns the state's id and
    /// whether *this* call admitted it. Exactly one concurrent caller
    /// admits each canonical state; every caller learns its id, which is
    /// what successor-graph recording needs (edges point at known states
    /// as often as fresh ones).
    ///
    /// `matches` must agree with `T`'s `Eq` on the value `build` would
    /// produce.
    pub fn claim_or_intern_with(
        &self,
        fingerprint: u64,
        mut matches: impl FnMut(&T) -> bool,
        build: impl FnOnce() -> T,
    ) -> (StateId, bool) {
        let shard = &self.shards[Self::shard_of(fingerprint)];
        {
            let guard = shard.lock().expect("interner shard poisoned");
            if let Some(bucket) = guard.get(&fingerprint) {
                if let Some((id, _)) = bucket.iter().find(|(_, t)| matches(t)) {
                    return (*id, false);
                }
            }
        }
        // Build the (expensive) canonical state *outside* the lock, then
        // re-probe before admitting: a concurrent caller may have claimed
        // the same state meanwhile, in which case our build is dropped and
        // its id wins — the claim stays exactly-once.
        let value = build();
        let mut guard = shard.lock().expect("interner shard poisoned");
        let bucket = guard.entry(fingerprint).or_default();
        if let Some((id, _)) = bucket.iter().find(|(_, t)| matches(t)) {
            return (*id, false);
        }
        let id = StateId(self.next.fetch_add(1, Ordering::Relaxed));
        bucket.push((id, value));
        (id, true)
    }

    /// Fingerprint-first claim: `Some(id)` iff this call admitted the
    /// state (exactly one concurrent caller wins), `None` if it was
    /// already interned.
    pub fn claim_with(
        &self,
        fingerprint: u64,
        matches: impl FnMut(&T) -> bool,
        build: impl FnOnce() -> T,
    ) -> Option<StateId> {
        let (id, fresh) = self.claim_or_intern_with(fingerprint, matches, build);
        fresh.then_some(id)
    }

    /// Consumes the interner, returning the states in id order.
    ///
    /// # Panics
    ///
    /// Panics if ids were not densely issued (impossible through this
    /// API).
    pub fn into_states(self) -> Vec<T> {
        let mut pairs: Vec<(StateId, T)> = Vec::with_capacity(self.len());
        for shard in self.shards {
            pairs.extend(
                shard
                    .into_inner()
                    .expect("interner shard poisoned")
                    .into_values()
                    .flatten(),
            );
        }
        pairs.sort_by_key(|(id, _)| *id);
        debug_assert!(pairs.iter().enumerate().all(|(i, (id, _))| id.index() == i));
        pairs.into_iter().map(|(_, t)| t).collect()
    }

    /// Number of distinct states admitted so far.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed) as usize
    }

    /// True if nothing has been claimed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Hash + Eq> SharedInterner<T> {
    /// Claims a fully built `value`: `Some(id)` iff this call admitted it.
    /// The full-state reference path; engines claim through
    /// [`SharedInterner::claim_with`].
    pub fn claim(&self, value: T) -> Option<StateId> {
        let mut h = DefaultHasher::new();
        value.hash(&mut h);
        let fp = h.finish();
        let mut shard = self.shards[Self::shard_of(fp)]
            .lock()
            .expect("interner shard poisoned");
        let bucket = shard.entry(fp).or_default();
        if bucket.iter().any(|(_, t)| *t == value) {
            return None;
        }
        let id = StateId(self.next.fetch_add(1, Ordering::Relaxed));
        bucket.push((id, value));
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn intern_is_idempotent() {
        let mut i = StateInterner::new();
        let (a, fresh_a) = i.intern("alpha");
        let (b, fresh_b) = i.intern("beta");
        let (a2, fresh_a2) = i.intern("alpha");
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.state(a), &"alpha");
        assert_eq!(i.into_states(), vec!["alpha", "beta"]);
    }

    #[test]
    fn intern_with_probes_before_building() {
        let mut i = StateInterner::new();
        let builds = AtomicUsize::new(0);
        let mut go = |fp: u64, v: u32| {
            i.intern_with(
                fp,
                |t| *t == v,
                || {
                    builds.fetch_add(1, Ordering::Relaxed);
                    v
                },
            )
        };
        let (a, f1) = go(7, 10);
        let (a2, f2) = go(7, 10); // re-visit: no build
        let (b, f3) = go(7, 20); // forced collision: verified, new id
        let (b2, f4) = go(7, 20);
        assert!(f1 && !f2 && f3 && !f4);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(b, b2);
        assert_eq!(builds.load(Ordering::Relaxed), 2);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn hashed_hash_is_deterministic_across_constructions() {
        let a = Hashed::new((1u32, vec![2u8, 3]));
        let b = Hashed::new((1u32, vec![2u8, 3]));
        assert_eq!(a.hash64(), b.hash64());
        assert_eq!(a, b);
    }

    #[test]
    fn shared_claim_admits_each_value_exactly_once() {
        let interner = SharedInterner::new();
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for v in 0..100u32 {
                        if interner.claim(v).is_some() {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 100);
        assert_eq!(interner.len(), 100);
        let states = interner.into_states();
        assert_eq!(states.len(), 100);
        let mut sorted = states.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100u32).collect::<Vec<_>>());
    }

    #[test]
    fn shared_claim_or_intern_reports_ids_for_known_states() {
        let interner: SharedInterner<u32> = SharedInterner::new();
        let (a, fresh) = interner.claim_or_intern_with(3, |t| *t == 5, || 5);
        assert!(fresh);
        let (a2, fresh2) = interner.claim_or_intern_with(3, |t| *t == 5, || unreachable!());
        assert!(!fresh2);
        assert_eq!(a, a2);
        // Collision under the same fingerprint: distinct id.
        let (b, fresh3) = interner.claim_or_intern_with(3, |t| *t == 6, || 6);
        assert!(fresh3);
        assert_ne!(a, b);
        assert_eq!(interner.into_states(), vec![5, 6]);
    }

    #[test]
    fn shared_collisions_race_to_one_admission() {
        // All values share one fingerprint: the collision chain is hit
        // from many threads at once and must stay exact.
        let interner: SharedInterner<u32> = SharedInterner::new();
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for v in 0..50u32 {
                        if interner.claim_with(42, |t| *t == v, || v).is_some() {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 50);
        assert_eq!(interner.len(), 50);
    }
}
