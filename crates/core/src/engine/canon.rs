//! Canonical (timestamp-renamed) machine forms and their zero-copy
//! fingerprints.
//!
//! Two machines that differ only in the rational representatives of their
//! timestamps are observationally identical: every run from either reaches
//! the same outcomes. The engine therefore deduplicates machines by a
//! *canonical form* in which each location's timestamps are replaced by
//! their rank within the owning history.
//!
//! Building a [`CanonState`] materializes fresh `Vec`s for the store,
//! every frontier, and every thread — wasted work when the state has
//! already been visited, which on the engines' hot path is the common
//! case. [`canonical_fingerprint`] therefore streams the exact same
//! canonical content straight into a 64-bit hasher without allocating,
//! and [`canon_matches`] compares a machine against an already-built
//! `CanonState` equally allocation-free. Together they let the interners
//! probe by fingerprint first and only build the full canonical form on
//! first visit (or on a genuine fingerprint collision, where the verified
//! equality keeps dedup outcomes bit-identical to full-state dedup).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::engine::EngineError;
use crate::frontier::Frontier;
use crate::loc::{Loc, LocKind, LocSet, Val};
use crate::machine::{Expr, Machine};
use crate::wire::{Codec, Reader, WireError};

/// The canonical (timestamp-renamed) form of a location's contents.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum CanonLoc {
    /// Nonatomic: history values in timestamp order.
    Na(Vec<Val>),
    /// Atomic: current value plus the location frontier as per-location ranks.
    At(Val, Vec<u32>),
}

/// A machine up to timestamp renaming; hashable for dedup.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonState<E> {
    store: Vec<CanonLoc>,
    threads: Vec<(Vec<u32>, E)>,
}

impl<E> CanonState<E> {
    /// The canonical thread expressions, in thread order.
    pub fn thread_exprs(&self) -> impl Iterator<Item = &E> + '_ {
        self.threads.iter().map(|(_, e)| e)
    }

    /// The number of threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The coherence-latest value of every location, in location order:
    /// the last history entry for nonatomics (histories are stored in
    /// timestamp order), the current value for atomics. This is exactly
    /// what outcome extraction needs, so terminal observations can be
    /// re-derived from a cached graph without the machines.
    pub fn latest_values(&self) -> impl Iterator<Item = Val> + '_ {
        self.store.iter().map(|c| match c {
            CanonLoc::Na(vals) => *vals.last().expect("reachable histories are nonempty"),
            CanonLoc::At(v, _) => *v,
        })
    }
}

impl Codec for CanonLoc {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CanonLoc::Na(vals) => {
                out.push(0);
                vals.encode(out);
            }
            CanonLoc::At(v, ranks) => {
                out.push(1);
                v.encode(out);
                ranks.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<CanonLoc, WireError> {
        match u8::decode(r)? {
            0 => Ok(CanonLoc::Na(Vec::decode(r)?)),
            1 => Ok(CanonLoc::At(Val::decode(r)?, Vec::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "CanonLoc",
                tag,
            }),
        }
    }
}

impl<E: Codec> Codec for CanonState<E> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.store.encode(out);
        self.threads.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<CanonState<E>, WireError> {
        let store = Vec::decode(r)?;
        let threads = Vec::decode(r)?;
        let state = CanonState { store, threads };
        // Outcome extraction assumes reachable nonatomic histories are
        // non-empty; reject hand-crafted (or corrupted) empties here so
        // `latest_values` cannot panic on decoded graphs.
        for c in &state.store {
            if matches!(c, CanonLoc::Na(vals) if vals.is_empty()) {
                return Err(WireError::Invalid("empty nonatomic history"));
            }
        }
        Ok(state)
    }
}

/// The per-location frontier rank: the position of the frontier's
/// timestamp within the owning history (atomic locations rank 0, mirroring
/// the canonical form).
fn frontier_rank<E: Expr>(
    locs: &LocSet,
    m: &Machine<E>,
    f: &Frontier,
    l: Loc,
) -> Result<u32, EngineError> {
    match locs.kind(l) {
        LocKind::Nonatomic => {
            let t = f.get(l);
            match m.store.history(l).rank_of(t) {
                Some(rank) => Ok(rank as u32),
                None => Err(EngineError::CorruptFrontier {
                    loc: l,
                    timestamp: t,
                }),
            }
        }
        LocKind::Atomic => Ok(0),
    }
}

/// Computes the canonical form of a machine: all timestamps are replaced by
/// their rank within the owning location's history.
///
/// # Errors
///
/// Returns [`EngineError::CorruptFrontier`] if some frontier references a
/// timestamp absent from the owning location's history — impossible for
/// machines produced by the paper's rules, but reachable from broken
/// semantics variants or hand-built machines.
pub fn canonicalize<E: Expr>(locs: &LocSet, m: &Machine<E>) -> Result<CanonState<E>, EngineError> {
    let rank_frontier = |f: &Frontier| -> Result<Vec<u32>, EngineError> {
        locs.iter().map(|l| frontier_rank(locs, m, f, l)).collect()
    };
    let store = locs
        .iter()
        .map(|l| match locs.kind(l) {
            LocKind::Nonatomic => Ok(CanonLoc::Na(
                m.store.history(l).iter().map(|(_, v)| v).collect(),
            )),
            LocKind::Atomic => {
                let (f, v) = m.store.atomic(l);
                Ok(CanonLoc::At(v, rank_frontier(f)?))
            }
        })
        .collect::<Result<_, EngineError>>()?;
    let threads = m
        .threads
        .iter()
        .map(|t| Ok((rank_frontier(&t.frontier)?, t.expr.clone())))
        .collect::<Result<_, EngineError>>()?;
    Ok(CanonState { store, threads })
}

/// Test-only fingerprint truncation, used to force collisions: correctness
/// must not depend on fingerprints being collision-free, and the forced
/// collision suite proves it. The mask is process-global, and dedup stays
/// *correct* under any mask — but tests that assert fingerprint
/// *distinctness* would fail under a truncated mask, so every
/// mask-sensitive test (forcing or asserting distinctness) serializes
/// through the same lock via [`force`]/[`unforced`].
#[cfg(test)]
pub(crate) mod collisions {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard};

    static MASK: AtomicU64 = AtomicU64::new(u64::MAX);
    static SERIAL: Mutex<()> = Mutex::new(());

    pub(crate) fn mask() -> u64 {
        MASK.load(Ordering::Relaxed)
    }

    fn serialize() -> MutexGuard<'static, ()> {
        // A panicking mask test must not wedge the others.
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Truncates every fingerprint to `bits` low bits until the guard
    /// drops, holding the serialization lock for the guard's lifetime.
    pub(crate) fn force(bits: u32) -> Guard {
        let lock = serialize();
        MASK.store((1u64 << bits) - 1, Ordering::Relaxed);
        Guard { _lock: lock }
    }

    /// Holds the serialization lock with the mask at full width: for
    /// tests asserting that distinct states get distinct fingerprints.
    pub(crate) fn unforced() -> Guard {
        let lock = serialize();
        MASK.store(u64::MAX, Ordering::Relaxed);
        Guard { _lock: lock }
    }

    pub(crate) struct Guard {
        _lock: MutexGuard<'static, ()>,
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            MASK.store(u64::MAX, Ordering::Relaxed);
        }
    }
}

/// Streams a frontier's canonical ranks into `h`.
fn hash_frontier<E: Expr, H: Hasher>(
    locs: &LocSet,
    m: &Machine<E>,
    f: &Frontier,
    h: &mut H,
) -> Result<(), EngineError> {
    for l in locs.iter() {
        h.write_u32(frontier_rank(locs, m, f, l)?);
    }
    Ok(())
}

/// The 64-bit fingerprint of a machine's canonical form — *incremental*:
/// the store's canonical-local half (history value sequences, atomic
/// values) enters as one recombined [`crate::store::Store::content_digest`]
/// word, answered from the pmap's memoized subtree digests — after a
/// one-location update only the O(log n) copied path is rehashed, not
/// every location. Only the genuinely non-local canonical content — the
/// per-location *ranks* of atomic and thread frontiers, which depend on
/// other locations' histories — is still streamed per visited state.
///
/// The fingerprint is a pure function of the [`CanonState`] content
/// (canonically equal machines always collide; unequal machines collide
/// with probability ~2⁻⁶⁴), and it is deterministic across processes —
/// the same property [`crate::engine::Hashed`] provides for full states.
/// It is **not** the same value as hashing the built `CanonState`; the
/// two hash spaces are independent.
///
/// # Errors
///
/// Returns [`EngineError::CorruptFrontier`] exactly when [`canonicalize`]
/// would: a successful fingerprint guarantees the machine canonicalizes.
pub fn canonical_fingerprint<E: Expr>(locs: &LocSet, m: &Machine<E>) -> Result<u64, EngineError> {
    bdrst_obs::counter_add(bdrst_obs::Counter::FingerprintCalls, 1);
    let _span = bdrst_obs::span(bdrst_obs::Phase::Fingerprint);
    let mut h = DefaultHasher::new();
    h.write_u64(m.store.content_digest());
    for l in locs.iter() {
        if locs.kind(l) == LocKind::Atomic {
            let (f, _) = m.store.atomic(l);
            hash_frontier(locs, m, f, &mut h)?;
        }
    }
    h.write_usize(m.threads.len());
    for t in &m.threads {
        hash_frontier(locs, m, &t.frontier, &mut h)?;
        t.expr.hash(&mut h);
    }
    let fp = h.finish();
    #[cfg(test)]
    let fp = fp & collisions::mask();
    Ok(fp)
}

/// Compares a frontier's ranks against a stored rank vector.
fn frontier_matches<E: Expr>(locs: &LocSet, m: &Machine<E>, f: &Frontier, ranks: &[u32]) -> bool {
    ranks.len() == locs.len()
        && locs
            .iter()
            .zip(ranks)
            .all(|(l, r)| frontier_rank(locs, m, f, l) == Ok(*r))
}

/// True iff `m`'s canonical form equals `canon`, decided by streaming
/// comparison — no `CanonState` is built. This is the collision check of
/// fingerprint-first dedup: `canon_matches(locs, m, c)` agrees exactly
/// with `canonicalize(locs, m)? == *c` (a machine that fails to
/// canonicalize matches nothing).
pub fn canon_matches<E: Expr>(locs: &LocSet, m: &Machine<E>, canon: &CanonState<E>) -> bool {
    if canon.store.len() != locs.len() || canon.threads.len() != m.threads.len() {
        return false;
    }
    for l in locs.iter() {
        match (locs.kind(l), &canon.store[l.index()]) {
            (LocKind::Nonatomic, CanonLoc::Na(vals)) => {
                let hist = m.store.history(l);
                if hist.len() != vals.len() || !hist.iter().map(|(_, v)| v).eq(vals.iter().copied())
                {
                    return false;
                }
            }
            (LocKind::Atomic, CanonLoc::At(v, ranks)) => {
                let (f, val) = m.store.atomic(l);
                if val != *v || !frontier_matches(locs, m, f, ranks) {
                    return false;
                }
            }
            _ => return false,
        }
    }
    m.threads
        .iter()
        .zip(&canon.threads)
        .all(|(t, (ranks, expr))| t.expr == *expr && frontier_matches(locs, m, &t.frontier, ranks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::machine::{RecordedExpr, StepLabel};
    use crate::store::LocContents;
    use crate::timestamp::{Ratio, Timestamp};

    #[test]
    fn corrupt_frontier_is_an_error_not_a_panic() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let _ = f;
        let p = RecordedExpr::new(vec![StepLabel::Read(a)]);
        let mut m = Machine::initial(&locs, [p]);
        // Corrupt thread 0's frontier: point it at a timestamp that is not
        // in a's history.
        let bogus = Timestamp(Ratio::from_integer(99));
        m.threads[0].frontier.advance(a, bogus);
        match canonicalize(&locs, &m) {
            Err(EngineError::CorruptFrontier { loc, timestamp }) => {
                assert_eq!(loc, a);
                assert_eq!(timestamp, bogus);
            }
            other => panic!("expected CorruptFrontier, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_atomic_frontier_detected() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let p = RecordedExpr::new(vec![StepLabel::Read(a)]);
        let mut m = Machine::initial(&locs, [p]);
        // Corrupt the atomic location's frontier instead of a thread's.
        let bogus = Timestamp(Ratio::from_integer(7));
        let (fr, v) = m.store.atomic(f);
        let mut fr = fr.clone();
        fr.advance(a, bogus);
        m.store.update(
            f,
            LocContents::Atomic {
                frontier: fr,
                value: v,
            },
        );
        assert!(matches!(
            canonicalize(&locs, &m),
            Err(EngineError::CorruptFrontier { loc, .. }) if loc == a
        ));
    }

    #[test]
    fn canonical_form_ignores_timestamp_representatives() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let p = RecordedExpr::new(vec![]);
        let mk = |ts: &[i64]| {
            let mut m = Machine::initial(&locs, [p.clone()]);
            let mut h = History::initial(Val(0));
            for (i, t) in ts.iter().enumerate() {
                h.insert(Timestamp(Ratio::from_integer(*t)), Val(i as i64 + 1));
            }
            m.store.update(a, LocContents::Nonatomic(h));
            m
        };
        // Same value sequence at different rationals: same canonical form.
        let c1 = canonicalize(&locs, &mk(&[1, 2])).unwrap();
        let c2 = canonicalize(&locs, &mk(&[3, 50])).unwrap();
        assert_eq!(c1, c2);
    }

    /// A small machine zoo reaching distinct canonical states: useful for
    /// fingerprint agreement checks.
    fn zoo() -> (LocSet, Vec<Machine<RecordedExpr>>) {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
        ]);
        let p1 = RecordedExpr::new(vec![StepLabel::Read(f), StepLabel::Read(a)]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let mut all = vec![m0.clone()];
        let mut stack = vec![m0];
        while let Some(m) = stack.pop() {
            for t in m.transitions(&locs) {
                all.push(t.target.clone());
                stack.push(t.target);
            }
        }
        (locs, all)
    }

    #[test]
    fn fingerprint_agrees_with_canonical_equality() {
        // Equal canonical forms ⇒ equal fingerprints, and (on this space)
        // distinct canonical forms get distinct fingerprints; canon_matches
        // agrees with built-form equality in both directions.
        let _guard = collisions::unforced();
        let (locs, machines) = zoo();
        for m1 in &machines {
            let c1 = canonicalize(&locs, m1).unwrap();
            let f1 = canonical_fingerprint(&locs, m1).unwrap();
            for m2 in &machines {
                let c2 = canonicalize(&locs, m2).unwrap();
                let f2 = canonical_fingerprint(&locs, m2).unwrap();
                assert_eq!(c1 == c2, f1 == f2, "fingerprint disagrees with equality");
                assert_eq!(c1 == c2, canon_matches(&locs, m1, &c2));
            }
        }
    }

    #[test]
    fn fingerprint_ignores_timestamp_representatives() {
        let _guard = collisions::unforced();
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let p = RecordedExpr::new(vec![]);
        let mk = |ts: &[i64]| {
            let mut m = Machine::initial(&locs, [p.clone()]);
            let mut h = History::initial(Val(0));
            for (i, t) in ts.iter().enumerate() {
                h.insert(Timestamp(Ratio::from_integer(*t)), Val(i as i64 + 1));
            }
            m.store.update(a, LocContents::Nonatomic(h));
            m
        };
        assert_eq!(
            canonical_fingerprint(&locs, &mk(&[1, 2])).unwrap(),
            canonical_fingerprint(&locs, &mk(&[3, 50])).unwrap()
        );
        // Different value order: different fingerprint.
        let mut m_swapped = Machine::initial(&locs, [p.clone()]);
        let mut h = History::initial(Val(0));
        h.insert(Timestamp(Ratio::from_integer(1)), Val(2));
        h.insert(Timestamp(Ratio::from_integer(2)), Val(1));
        m_swapped.store.update(a, LocContents::Nonatomic(h));
        assert_ne!(
            canonical_fingerprint(&locs, &mk(&[1, 2])).unwrap(),
            canonical_fingerprint(&locs, &m_swapped).unwrap()
        );
    }

    #[test]
    fn fingerprint_detects_corrupt_frontier() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let p = RecordedExpr::new(vec![StepLabel::Read(a)]);
        let mut m = Machine::initial(&locs, [p]);
        let bogus = Timestamp(Ratio::from_integer(99));
        m.threads[0].frontier.advance(a, bogus);
        assert!(matches!(
            canonical_fingerprint(&locs, &m),
            Err(EngineError::CorruptFrontier { loc, .. }) if loc == a
        ));
    }

    #[test]
    fn latest_values_match_store() {
        let (locs, machines) = zoo();
        for m in &machines {
            let c = canonicalize(&locs, m).unwrap();
            let got: Vec<Val> = c.latest_values().collect();
            let want: Vec<Val> = locs
                .iter()
                .map(|l| match locs.kind(l) {
                    LocKind::Nonatomic => m.store.history(l).latest().1,
                    LocKind::Atomic => m.store.atomic(l).1,
                })
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn forced_collisions_keep_matching_exact() {
        // With 2-bit fingerprints nearly everything collides; canon_matches
        // must still separate distinct states.
        let _guard = collisions::force(2);
        let (locs, machines) = zoo();
        for m1 in &machines {
            let f1 = canonical_fingerprint(&locs, m1).unwrap();
            assert!(f1 < 4, "mask not applied");
            let c1 = canonicalize(&locs, m1).unwrap();
            for m2 in &machines {
                let c2 = canonicalize(&locs, m2).unwrap();
                assert_eq!(c1 == c2, canon_matches(&locs, m1, &c2));
            }
        }
    }
}
