//! Canonical (timestamp-renamed) machine forms.
//!
//! Two machines that differ only in the rational representatives of their
//! timestamps are observationally identical: every run from either reaches
//! the same outcomes. The engine therefore deduplicates machines by a
//! *canonical form* in which each location's timestamps are replaced by
//! their rank within the owning history.

use std::hash::Hash;

use crate::engine::EngineError;
use crate::frontier::Frontier;
use crate::loc::{LocKind, LocSet, Val};
use crate::machine::{Expr, Machine};

/// The canonical (timestamp-renamed) form of a location's contents.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum CanonLoc {
    /// Nonatomic: history values in timestamp order.
    Na(Vec<Val>),
    /// Atomic: current value plus the location frontier as per-location ranks.
    At(Val, Vec<u32>),
}

/// A machine up to timestamp renaming; hashable for dedup.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonState<E> {
    store: Vec<CanonLoc>,
    threads: Vec<(Vec<u32>, E)>,
}

/// Computes the canonical form of a machine: all timestamps are replaced by
/// their rank within the owning location's history.
///
/// # Errors
///
/// Returns [`EngineError::CorruptFrontier`] if some frontier references a
/// timestamp absent from the owning location's history — impossible for
/// machines produced by the paper's rules, but reachable from broken
/// semantics variants or hand-built machines.
pub fn canonicalize<E: Expr>(locs: &LocSet, m: &Machine<E>) -> Result<CanonState<E>, EngineError> {
    let rank_frontier = |f: &Frontier| -> Result<Vec<u32>, EngineError> {
        locs.iter()
            .map(|l| match locs.kind(l) {
                LocKind::Nonatomic => {
                    let t = f.get(l);
                    match m.store.history(l).rank_of(t) {
                        Some(rank) => Ok(rank as u32),
                        None => Err(EngineError::CorruptFrontier {
                            loc: l,
                            timestamp: t,
                        }),
                    }
                }
                LocKind::Atomic => Ok(0),
            })
            .collect()
    };
    let store = locs
        .iter()
        .map(|l| match locs.kind(l) {
            LocKind::Nonatomic => Ok(CanonLoc::Na(
                m.store.history(l).iter().map(|(_, v)| v).collect(),
            )),
            LocKind::Atomic => {
                let (f, v) = m.store.atomic(l);
                Ok(CanonLoc::At(v, rank_frontier(f)?))
            }
        })
        .collect::<Result<_, EngineError>>()?;
    let threads = m
        .threads
        .iter()
        .map(|t| Ok((rank_frontier(&t.frontier)?, t.expr.clone())))
        .collect::<Result<_, EngineError>>()?;
    Ok(CanonState { store, threads })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::machine::{RecordedExpr, StepLabel};
    use crate::store::LocContents;
    use crate::timestamp::{Ratio, Timestamp};

    #[test]
    fn corrupt_frontier_is_an_error_not_a_panic() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let _ = f;
        let p = RecordedExpr::new(vec![StepLabel::Read(a)]);
        let mut m = Machine::initial(&locs, [p]);
        // Corrupt thread 0's frontier: point it at a timestamp that is not
        // in a's history.
        let bogus = Timestamp(Ratio::from_integer(99));
        m.threads[0].frontier.advance(a, bogus);
        match canonicalize(&locs, &m) {
            Err(EngineError::CorruptFrontier { loc, timestamp }) => {
                assert_eq!(loc, a);
                assert_eq!(timestamp, bogus);
            }
            other => panic!("expected CorruptFrontier, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_atomic_frontier_detected() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let p = RecordedExpr::new(vec![StepLabel::Read(a)]);
        let mut m = Machine::initial(&locs, [p]);
        // Corrupt the atomic location's frontier instead of a thread's.
        let bogus = Timestamp(Ratio::from_integer(7));
        let (fr, v) = m.store.atomic(f);
        let mut fr = fr.clone();
        fr.advance(a, bogus);
        m.store.update(
            f,
            LocContents::Atomic {
                frontier: fr,
                value: v,
            },
        );
        assert!(matches!(
            canonicalize(&locs, &m),
            Err(EngineError::CorruptFrontier { loc, .. }) if loc == a
        ));
    }

    #[test]
    fn canonical_form_ignores_timestamp_representatives() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let p = RecordedExpr::new(vec![]);
        let mk = |ts: &[i64]| {
            let mut m = Machine::initial(&locs, [p.clone()]);
            let mut h = History::initial(Val(0));
            for (i, t) in ts.iter().enumerate() {
                h.insert(Timestamp(Ratio::from_integer(*t)), Val(i as i64 + 1));
            }
            m.store.update(a, LocContents::Nonatomic(h));
            m
        };
        // Same value sequence at different rationals: same canonical form.
        let c1 = canonicalize(&locs, &mk(&[1, 2])).unwrap();
        let c2 = canonicalize(&locs, &mk(&[3, 50])).unwrap();
        assert_eq!(c1, c2);
    }
}
