//! The pluggable exploration engine.
//!
//! Every workload in this repository — litmus sweeps, the DRF theorem
//! checkers, optimizer validation, and the operational/axiomatic
//! equivalence checks — bottoms out in exhaustive exploration of the
//! operational semantics. This module is the shared substrate for all of
//! them, replacing the ad-hoc recursive search that used to live in
//! [`crate::explore`]:
//!
//! * **[`Explorer`]** — the pluggable state-space engine interface. A
//!   caller hands an initial [`Machine`] and a [`StateVisitor`]; the
//!   engine invokes the visitor exactly once per *canonical* state (up to
//!   timestamp renaming) and lets it steer with [`Control`].
//! * **[`WorklistEngine`]** ([`worklist`]) — the sequential engine: an
//!   iterative explicit worklist (no recursion) with DFS or BFS
//!   [`SearchOrder`] selection.
//! * **[`ParallelEngine`]** ([`parallel`]) — level-synchronous parallel
//!   frontier expansion over scoped threads, with work claimed from a
//!   shared atomic cursor and states deduplicated through a sharded
//!   lock-striped interner. Produces the same canonical state set as the
//!   sequential engines (each state is claimed by exactly one worker).
//! * **[`WorkStealingEngine`]** ([`steal`]) — a persistent worker pool
//!   with per-worker deques and FIFO stealing: no barrier per BFS level,
//!   so a single deep exploration scales, not just multi-test sweeps.
//!   Same claim-exactly-once interning, same visited state set.
//! * **[`TraceEngine`]** ([`worklist`]) — iterative depth-first trace
//!   enumeration for the trace-dependent checkers (data races and
//!   happens-before are properties of traces, not states); drives a
//!   [`TraceVisitor`]. [`TraceEngine::explore_sharded`] forks the walk at
//!   the root frontier into independent label stacks (one fresh visitor
//!   per subtree, one shared atomic trace budget), so checkers whose
//!   verdicts merge — every checker in [`crate::localdrf`] and the
//!   axiomatic soundness checker — run subtree-parallel.
//! * **[`StateInterner`] / [`SharedInterner`]** ([`intern`]) — canonical
//!   states are hashed exactly once ([`intern::Hashed`]) and stored
//!   against dense `u32` [`StateId`]s instead of cloned machines.
//! * **[`EngineError`]** — the structured error surface: budget
//!   exhaustion and corrupted-frontier detection (formerly a panic in
//!   `canonicalize`).
//!
//! The legacy helpers `reachable_terminals` / `reachable_states` /
//! `for_each_trace` in [`crate::explore`] remain as thin wrappers over
//! these engines.
//!
//! # Strategy selection and thread knobs
//!
//! Callers pick an engine through [`Strategy`] (threaded through
//! `Program::outcomes_with`, the litmus runner's `RunConfig`, and
//! [`explorer`]):
//!
//! | Strategy | Engine | When to prefer it |
//! |---|---|---|
//! | [`Strategy::Dfs`] | [`WorklistEngine`] (stack) | default; smallest footprint |
//! | [`Strategy::Bfs`] | [`WorklistEngine`] (queue) | shortest-counterexample searches |
//! | [`Strategy::Parallel`] | [`ParallelEngine`] | wide, shallow spaces; deterministic per-level visit order |
//! | [`Strategy::WorkStealing`] | [`WorkStealingEngine`] | deep or irregular spaces; no per-level barrier |
//!
//! Every parallel entry point resolves its worker count through
//! [`steal::engine_threads`]: an explicit nonzero count wins, `0` ("all
//! cores") honours the `BDRST_ENGINE_THREADS` environment variable
//! before falling back to [`std::thread::available_parallelism`]. All
//! engines visit the same canonical state set and surface the same
//! [`EngineError`]s — the differential and property suites under
//! `tests/` enforce this across the litmus corpus and randomly generated
//! programs.
//!
//! # Example: counting canonical states under each engine
//!
//! ```
//! use bdrst_core::engine::{Control, EngineConfig, SearchOrder, StateId, WorklistEngine,
//!                          Explorer, ParallelEngine};
//! use bdrst_core::loc::{LocKind, LocSet, Val};
//! use bdrst_core::machine::{Machine, RecordedExpr, StepLabel};
//!
//! let mut locs = LocSet::new();
//! let a = locs.fresh("a", LocKind::Nonatomic);
//! let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
//! let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
//! let m0 = Machine::initial(&locs, [p0, p1]);
//!
//! let mut count = 0usize;
//! let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Bfs);
//! engine.explore(&locs, m0.clone(), &mut |_m: &Machine<RecordedExpr>, _id: StateId| {
//!     count += 1;
//!     Control::Continue
//! })?;
//!
//! let mut par_count = 0usize;
//! let engine = ParallelEngine::new(EngineConfig::default());
//! engine.explore(&locs, m0, &mut |_m: &Machine<RecordedExpr>, _id: StateId| {
//!     par_count += 1;
//!     Control::Continue
//! })?;
//! assert_eq!(count, par_count);
//! # Ok::<(), bdrst_core::engine::EngineError>(())
//! ```

pub mod canon;
pub mod intern;
pub mod parallel;
pub mod steal;
pub mod worklist;

use std::fmt;

use crate::loc::{Loc, LocSet};
use crate::machine::{Expr, Machine, Transition};
use crate::timestamp::Timestamp;
use crate::trace::TraceLabels;

pub use canon::{canonicalize, CanonState};
pub use intern::{Hashed, SharedInterner, StateId, StateInterner};
pub use parallel::{parallel_map, parallel_map_with, ParallelEngine};
pub use steal::{engine_threads, StealDeques, WorkStealingEngine};
pub use worklist::{TraceEngine, WorklistEngine};

/// Budgets for exploration. The defaults are generous for litmus-scale
/// programs while guaranteeing termination on accidental state explosions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EngineConfig {
    /// Maximum number of distinct canonical states to visit.
    pub max_states: usize,
    /// Maximum number of trace prefixes to enumerate in trace mode.
    pub max_traces: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_states: 1_000_000,
            max_traces: 10_000_000,
        }
    }
}

/// Statistics of a finished exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreStats {
    /// Distinct canonical states visited (state mode) or trace prefixes
    /// enumerated (trace mode).
    pub visited: usize,
    /// Transitions examined.
    pub transitions: usize,
}

/// The structured error surface of the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// The exploration exceeded its [`EngineConfig`] budget.
    BudgetExceeded {
        /// The number of states or traces visited before giving up.
        visited: usize,
    },
    /// Canonicalization found a frontier timestamp that is absent from the
    /// owning location's history: the machine state is corrupted (this is
    /// unreachable from the paper's rules; it indicates a broken semantics
    /// variant or a caller-constructed machine).
    CorruptFrontier {
        /// The nonatomic location whose history lacks the timestamp.
        loc: Loc,
        /// The dangling frontier timestamp.
        timestamp: Timestamp,
    },
}

impl EngineError {
    /// Convenience constructor for budget exhaustion.
    pub fn budget(visited: usize) -> EngineError {
        EngineError::BudgetExceeded { visited }
    }

    /// True if this error is budget exhaustion (as opposed to corruption).
    pub fn is_budget(&self) -> bool {
        matches!(self, EngineError::BudgetExceeded { .. })
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BudgetExceeded { visited } => {
                write!(f, "exploration budget exceeded after {visited} items")
            }
            EngineError::CorruptFrontier { loc, timestamp } => {
                write!(
                    f,
                    "corrupt frontier: timestamp {timestamp} for {loc} is not in its history"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// What a visitor asks the engine to do after seeing a state or trace
/// extension.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Control {
    /// Keep going (expand this state / extend this trace).
    Continue,
    /// Do not expand this state (or extend this trace), but keep exploring
    /// the rest of the space.
    Prune,
    /// Abort the whole exploration. The engine returns `Ok` with the
    /// statistics gathered so far.
    Stop,
}

/// The search order of the sequential [`WorklistEngine`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchOrder {
    /// Depth-first: the worklist is a stack.
    #[default]
    Dfs,
    /// Breadth-first: the worklist is a queue.
    Bfs,
}

/// Which engine to run. This is the user-facing strategy knob threaded
/// through the litmus runner and `Program::outcomes_with`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Sequential depth-first worklist.
    #[default]
    Dfs,
    /// Sequential breadth-first worklist.
    Bfs,
    /// Level-synchronous parallel frontier expansion.
    Parallel,
    /// Deque-based work-stealing over a persistent worker pool (no
    /// per-level barrier).
    WorkStealing,
}

/// A state-space visitor: called exactly once per distinct canonical
/// state, including the initial state.
///
/// Closures of type `FnMut(&Machine<E>, StateId) -> Control` implement
/// this trait, so simple callers need no adapter struct.
pub trait StateVisitor<E: Expr> {
    /// Inspects one newly discovered canonical state.
    fn visit(&mut self, machine: &Machine<E>, id: StateId) -> Control;
}

impl<E: Expr, F: FnMut(&Machine<E>, StateId) -> Control> StateVisitor<E> for F {
    fn visit(&mut self, machine: &Machine<E>, id: StateId) -> Control {
        self(machine, id)
    }
}

/// A trace visitor: called once per trace prefix, in depth-first order.
///
/// `step_filter` selects which transitions may be taken at all (e.g. only
/// L-sequential ones); `visit` then sees each taken extension with the
/// full label stack.
pub trait TraceVisitor<E: Expr> {
    /// Whether this transition may extend the current trace.
    fn step_filter(&mut self, _transition: &Transition<E>) -> bool {
        true
    }

    /// Inspects one trace extension; `trace` ends with `transition`'s
    /// label.
    fn visit(&mut self, trace: &TraceLabels, transition: &Transition<E>) -> Control;
}

/// The pluggable state-space exploration interface.
///
/// Implementations guarantee: the visitor is invoked exactly once per
/// canonical state reachable from `m0` (unless pruned or stopped), and the
/// *set* of visited canonical states is identical across implementations —
/// only the visit order may differ.
pub trait Explorer<E: Expr> {
    /// Explores the state space from `m0`, driving `visitor`.
    ///
    /// # Errors
    ///
    /// [`EngineError::BudgetExceeded`] if the state budget is exhausted;
    /// [`EngineError::CorruptFrontier`] if a reached machine fails to
    /// canonicalize.
    fn explore(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        visitor: &mut dyn StateVisitor<E>,
    ) -> Result<ExploreStats, EngineError>;
}

/// Builds the engine selected by `strategy` as a trait object.
///
/// `Parallel` requires `E: Send + Sync`, which every expression language in
/// this repository satisfies (they are plain data).
pub fn explorer<E: Expr + Send + Sync>(
    strategy: Strategy,
    config: EngineConfig,
) -> Box<dyn Explorer<E>> {
    match strategy {
        Strategy::Dfs => Box::new(WorklistEngine::new(config, SearchOrder::Dfs)),
        Strategy::Bfs => Box::new(WorklistEngine::new(config, SearchOrder::Bfs)),
        Strategy::Parallel => Box::new(ParallelEngine::new(config)),
        Strategy::WorkStealing => Box::new(WorkStealingEngine::new(config)),
    }
}
