//! The pluggable exploration engine.
//!
//! Every workload in this repository — litmus sweeps, the DRF theorem
//! checkers, optimizer validation, and the operational/axiomatic
//! equivalence checks — bottoms out in exhaustive exploration of the
//! operational semantics. This module is the shared substrate for all of
//! them, replacing the ad-hoc recursive search that used to live in
//! [`crate::explore`]:
//!
//! * **[`Explorer`]** — the pluggable state-space engine interface. A
//!   caller hands an initial [`Machine`] and a [`StateVisitor`]; the
//!   engine invokes the visitor exactly once per *canonical* state (up to
//!   timestamp renaming) and lets it steer with [`Control`].
//! * **[`WorklistEngine`]** ([`worklist`]) — the sequential engine: an
//!   iterative explicit worklist (no recursion) with DFS or BFS
//!   [`SearchOrder`] selection.
//! * **[`ParallelEngine`]** ([`parallel`]) — level-synchronous parallel
//!   frontier expansion over scoped threads, with work claimed from a
//!   shared atomic cursor and states deduplicated through a sharded
//!   lock-striped interner. Produces the same canonical state set as the
//!   sequential engines (each state is claimed by exactly one worker).
//! * **[`WorkStealingEngine`]** ([`steal`]) — a persistent worker pool
//!   with per-worker deques and FIFO stealing: no barrier per BFS level,
//!   so a single deep exploration scales, not just multi-test sweeps.
//!   Same claim-exactly-once interning, same visited state set.
//! * **[`TraceEngine`]** ([`worklist`]) — iterative depth-first trace
//!   enumeration for the trace-dependent checkers (data races and
//!   happens-before are properties of traces, not states); drives a
//!   [`TraceVisitor`]. [`TraceEngine::explore_sharded`] forks the walk
//!   into independent label stacks (one fresh visitor per subtree, one
//!   shared atomic trace budget) — at the root frontier when it is wide
//!   enough, re-forking below it otherwise — and
//!   [`TraceEngine::explore_sharded_merged`] folds the per-subtree
//!   verdicts through [`MergeableVisitor`], so checkers whose verdicts
//!   merge — every checker in [`crate::localdrf`] and the axiomatic
//!   soundness checker — run subtree-parallel with no verdict plumbing.
//! * **[`StateInterner`] / [`SharedInterner`]** ([`intern`]) — state
//!   dedup is **fingerprint-first** ([`canonical_fingerprint`] streams
//!   the canonical form into a hasher with zero allocation; re-visits
//!   allocate nothing, and verified equality on collision keeps
//!   outcomes bit-identical — [`Dedup`] selects the full-state
//!   reference path). States live in a dense id-indexed table behind
//!   `u32` [`StateId`]s.
//! * **[`StateGraph`] / [`TraceGraph`]** ([`graph`]) — explore once,
//!   re-check forever: the worklist and work-stealing engines record
//!   the interned successor graph (CSR of successor ids + terminal
//!   flags), and [`TraceEngine::record`] records the full trace tree;
//!   both replay new predicates ([`ReplayVisitor`]) without re-running
//!   the transition semantics.
//! * **[`deque::ChaseLev`]** ([`deque`]) — the lock-free work-stealing
//!   deque under [`StealDeques`]: latched owner ops, CAS-only steals,
//!   `unsafe` confined to that module.
//! * **[`EngineError`]** — the structured error surface: budget
//!   exhaustion and corrupted-frontier detection (formerly a panic in
//!   `canonicalize`).
//!
//! The legacy helpers `reachable_terminals` / `reachable_states` /
//! `for_each_trace` in [`crate::explore`] remain as thin wrappers over
//! these engines.
//!
//! # Strategy selection and thread knobs
//!
//! Callers pick an engine through [`Strategy`] (threaded through
//! `Program::outcomes_with`, the litmus runner's `RunConfig`, and
//! [`explorer`]):
//!
//! | Strategy | Engine | When to prefer it |
//! |---|---|---|
//! | [`Strategy::Dfs`] | [`WorklistEngine`] (stack) | default; smallest footprint |
//! | [`Strategy::Bfs`] | [`WorklistEngine`] (queue) | shortest-counterexample searches |
//! | [`Strategy::Parallel`] | [`ParallelEngine`] | wide, shallow spaces; deterministic per-level visit order |
//! | [`Strategy::WorkStealing`] | [`WorkStealingEngine`] | deep or irregular spaces; no per-level barrier |
//!
//! Every parallel entry point resolves its worker count through
//! [`steal::engine_threads`]: an explicit nonzero count wins, `0` ("all
//! cores") honours the `BDRST_ENGINE_THREADS` environment variable
//! before falling back to [`std::thread::available_parallelism`]. All
//! engines visit the same canonical state set and surface the same
//! [`EngineError`]s — the differential and property suites under
//! `tests/` enforce this across the litmus corpus and randomly generated
//! programs.
//!
//! # Example: counting canonical states under each engine
//!
//! ```
//! use bdrst_core::engine::{Control, EngineConfig, SearchOrder, StateId, WorklistEngine,
//!                          Explorer, ParallelEngine};
//! use bdrst_core::loc::{LocKind, LocSet, Val};
//! use bdrst_core::machine::{Machine, RecordedExpr, StepLabel};
//!
//! let mut locs = LocSet::new();
//! let a = locs.fresh("a", LocKind::Nonatomic);
//! let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
//! let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
//! let m0 = Machine::initial(&locs, [p0, p1]);
//!
//! let mut count = 0usize;
//! let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Bfs);
//! engine.explore(&locs, m0.clone(), &mut |_m: &Machine<RecordedExpr>, _id: StateId| {
//!     count += 1;
//!     Control::Continue
//! })?;
//!
//! let mut par_count = 0usize;
//! let engine = ParallelEngine::new(EngineConfig::default());
//! engine.explore(&locs, m0, &mut |_m: &Machine<RecordedExpr>, _id: StateId| {
//!     par_count += 1;
//!     Control::Continue
//! })?;
//! assert_eq!(count, par_count);
//! # Ok::<(), bdrst_core::engine::EngineError>(())
//! ```

pub mod canon;
pub mod deque;
pub mod dpor;
pub mod graph;
pub mod intern;
pub mod parallel;
pub mod steal;
pub mod worklist;

use std::fmt;

use crate::loc::{Loc, LocSet};
use crate::machine::{Expr, Machine, Transition};
use crate::timestamp::Timestamp;
use crate::trace::TraceLabels;

pub use canon::{canon_matches, canonical_fingerprint, canonicalize, CanonState};
pub use deque::ChaseLev;
pub use dpor::{dpor_reachable_terminals, full_complete_traces, Dependence, DporEngine, DporStats};
pub use graph::{ReplayStep, ReplayVisitor, StateGraph, TraceGraph};
pub use intern::{Hashed, SharedInterner, StateId, StateInterner};
pub use parallel::{parallel_map, parallel_map_with, ParallelEngine};
pub use steal::{engine_threads, StealDeques, WorkStealingEngine};
pub use worklist::{TraceEngine, WorklistEngine};

/// How the sequential worklist engine identifies states for dedup.
///
/// Both modes visit exactly the same canonical state set — the property
/// suites explore under both and compare — they differ only in what the
/// hot path allocates:
///
/// * [`Dedup::FingerprintFirst`] (default): a popped machine is hashed by
///   the zero-allocation streaming [`canonical_fingerprint`]; the full
///   [`CanonState`] is built only on first visit (or on a verified
///   fingerprint collision). Re-visits — the common case — allocate
///   nothing.
/// * [`Dedup::FullState`]: the original build-then-hash path, kept as the
///   reference implementation and allocation baseline.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Dedup {
    /// Probe by streaming fingerprint; build canonical states on first
    /// visit only.
    #[default]
    FingerprintFirst,
    /// Build and hash the full canonical state on every probe.
    FullState,
}

/// Fingerprint-first identification of a machine against a
/// single-threaded interner: the zero-copy dedup hot path shared by the
/// sequential engines. Re-visits allocate nothing; the full
/// [`CanonState`] is built only on first visit or verified collision.
///
/// # Errors
///
/// [`EngineError::CorruptFrontier`] exactly when [`canonicalize`] would
/// fail on `m`.
pub fn intern_canonical<E: Expr>(
    interner: &mut StateInterner<CanonState<E>>,
    locs: &LocSet,
    m: &Machine<E>,
) -> Result<(StateId, bool), EngineError> {
    let fp = canonical_fingerprint(locs, m)?;
    let _span = bdrst_obs::span(bdrst_obs::Phase::InternClaim);
    let (id, fresh) = interner.intern_with(
        fp,
        |c| canon_matches(locs, m, c),
        // A successful fingerprint walks every frontier, so
        // canonicalization cannot fail afterwards.
        || canonicalize(locs, m).expect("fingerprinted machines canonicalize"),
    );
    if fresh {
        bdrst_obs::counter_add(bdrst_obs::Counter::StatesInterned, 1);
        bdrst_obs::counter_max(bdrst_obs::Counter::InternerOccupancy, interner.len() as u64);
    }
    Ok((id, fresh))
}

/// [`intern_canonical`] against the lock-striped [`SharedInterner`]: the
/// claim-exactly-once dedup hot path of the parallel engines. Returns
/// the id and whether *this* call admitted the state.
///
/// # Errors
///
/// As [`intern_canonical`].
pub fn claim_canonical<E: Expr>(
    interner: &SharedInterner<CanonState<E>>,
    locs: &LocSet,
    m: &Machine<E>,
) -> Result<(StateId, bool), EngineError> {
    let fp = canonical_fingerprint(locs, m)?;
    let _span = bdrst_obs::span(bdrst_obs::Phase::InternClaim);
    let (id, fresh) = interner.claim_or_intern_with(
        fp,
        |c| canon_matches(locs, m, c),
        || canonicalize(locs, m).expect("fingerprinted machines canonicalize"),
    );
    if fresh {
        bdrst_obs::counter_add(bdrst_obs::Counter::StatesInterned, 1);
        bdrst_obs::counter_max(bdrst_obs::Counter::InternerOccupancy, interner.len() as u64);
    }
    Ok((id, fresh))
}

/// A visitor whose verdict state folds across disjoint subtrees: the
/// merge protocol of the sharded checkers.
///
/// `explore_sharded_merged` hands every subtree its own fresh visitor and
/// folds them back with [`MergeableVisitor::merge`], in deterministic
/// (trunk-then-fork) order — so "any shard's violation wins" or "sum the
/// per-shard counts" lives in one `merge` impl instead of per-call
/// plumbing. Merging must be associative over disjoint subtree verdicts
/// and treat a fresh (nothing-seen) visitor as an identity.
pub trait MergeableVisitor {
    /// Absorbs the verdict state of `other`, which explored a disjoint
    /// subtree ordered after everything `self` has seen.
    fn merge(&mut self, other: Self);
}

/// Budgets for exploration. The defaults are generous for litmus-scale
/// programs while guaranteeing termination on accidental state explosions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EngineConfig {
    /// Maximum number of distinct canonical states to visit.
    pub max_states: usize,
    /// Maximum number of trace prefixes to enumerate in trace mode.
    pub max_traces: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_states: 1_000_000,
            max_traces: 10_000_000,
        }
    }
}

/// Statistics of a finished exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreStats {
    /// Distinct canonical states visited (state mode) or trace prefixes
    /// enumerated (trace mode).
    pub visited: usize,
    /// Transitions examined.
    pub transitions: usize,
}

/// The structured error surface of the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// The exploration exceeded its [`EngineConfig`] budget.
    BudgetExceeded {
        /// The number of states or traces visited before giving up.
        visited: usize,
    },
    /// Canonicalization found a frontier timestamp that is absent from the
    /// owning location's history: the machine state is corrupted (this is
    /// unreachable from the paper's rules; it indicates a broken semantics
    /// variant or a caller-constructed machine).
    CorruptFrontier {
        /// The nonatomic location whose history lacks the timestamp.
        loc: Loc,
        /// The dangling frontier timestamp.
        timestamp: Timestamp,
    },
}

impl EngineError {
    /// Convenience constructor for budget exhaustion.
    pub fn budget(visited: usize) -> EngineError {
        EngineError::BudgetExceeded { visited }
    }

    /// True if this error is budget exhaustion (as opposed to corruption).
    pub fn is_budget(&self) -> bool {
        matches!(self, EngineError::BudgetExceeded { .. })
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::BudgetExceeded { visited } => {
                write!(f, "exploration budget exceeded after {visited} items")
            }
            EngineError::CorruptFrontier { loc, timestamp } => {
                write!(
                    f,
                    "corrupt frontier: timestamp {timestamp} for {loc} is not in its history"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// What a visitor asks the engine to do after seeing a state or trace
/// extension.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Control {
    /// Keep going (expand this state / extend this trace).
    Continue,
    /// Do not expand this state (or extend this trace), but keep exploring
    /// the rest of the space.
    Prune,
    /// Abort the whole exploration. The engine returns `Ok` with the
    /// statistics gathered so far.
    Stop,
}

/// The search order of the sequential [`WorklistEngine`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchOrder {
    /// Depth-first: the worklist is a stack.
    #[default]
    Dfs,
    /// Breadth-first: the worklist is a queue.
    Bfs,
}

/// Which engine to run. This is the user-facing strategy knob threaded
/// through the litmus runner and `Program::outcomes_with`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Sequential depth-first worklist.
    #[default]
    Dfs,
    /// Sequential breadth-first worklist.
    Bfs,
    /// Level-synchronous parallel frontier expansion.
    Parallel,
    /// Deque-based work-stealing over a persistent worker pool (no
    /// per-level barrier).
    WorkStealing,
    /// Dynamic partial-order reduction ([`DporEngine`]): one
    /// representative per Mazurkiewicz class of maximal traces, under the
    /// observational [`Dependence`]. Outcome enumeration
    /// (`Program::outcomes_with`, [`dpor_reachable_terminals`]) explores
    /// strictly fewer traces on programs with commuting transitions;
    /// state-space entry points that promise the full canonical visited
    /// set ([`explorer`]) fall back to [`Strategy::Dfs`], since a reduced
    /// walk cannot honour the [`Explorer`] visit-every-state contract.
    Dpor,
}

/// A state-space visitor: called exactly once per distinct canonical
/// state, including the initial state.
///
/// Closures of type `FnMut(&Machine<E>, StateId) -> Control` implement
/// this trait, so simple callers need no adapter struct.
pub trait StateVisitor<E: Expr> {
    /// Inspects one newly discovered canonical state.
    fn visit(&mut self, machine: &Machine<E>, id: StateId) -> Control;
}

impl<E: Expr, F: FnMut(&Machine<E>, StateId) -> Control> StateVisitor<E> for F {
    fn visit(&mut self, machine: &Machine<E>, id: StateId) -> Control {
        self(machine, id)
    }
}

/// A trace visitor: called once per trace prefix, in depth-first order.
///
/// `step_filter` selects which transitions may be taken at all (e.g. only
/// L-sequential ones); `visit` then sees each taken extension with the
/// full label stack.
pub trait TraceVisitor<E: Expr> {
    /// Whether this transition may extend the current trace.
    fn step_filter(&mut self, _transition: &Transition<E>) -> bool {
        true
    }

    /// Inspects one trace extension; `trace` ends with `transition`'s
    /// label.
    fn visit(&mut self, trace: &TraceLabels, transition: &Transition<E>) -> Control;
}

/// The pluggable state-space exploration interface.
///
/// Implementations guarantee: the visitor is invoked exactly once per
/// canonical state reachable from `m0` (unless pruned or stopped), and the
/// *set* of visited canonical states is identical across implementations —
/// only the visit order may differ.
pub trait Explorer<E: Expr> {
    /// Explores the state space from `m0`, driving `visitor`.
    ///
    /// # Errors
    ///
    /// [`EngineError::BudgetExceeded`] if the state budget is exhausted;
    /// [`EngineError::CorruptFrontier`] if a reached machine fails to
    /// canonicalize.
    fn explore(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        visitor: &mut dyn StateVisitor<E>,
    ) -> Result<ExploreStats, EngineError>;
}

/// Builds the engine selected by `strategy` as a trait object.
///
/// `Parallel` requires `E: Send + Sync`, which every expression language in
/// this repository satisfies (they are plain data).
pub fn explorer<E: Expr + Send + Sync>(
    strategy: Strategy,
    config: EngineConfig,
) -> Box<dyn Explorer<E>> {
    match strategy {
        // A reduced walk visits a subset of traces, not of canonical
        // states; callers that need the full visited-state contract get
        // the sequential DFS engine. Outcome enumeration routes Dpor to
        // the reduced engine in `crate::explore` instead.
        Strategy::Dfs | Strategy::Dpor => Box::new(WorklistEngine::new(config, SearchOrder::Dfs)),
        Strategy::Bfs => Box::new(WorklistEngine::new(config, SearchOrder::Bfs)),
        Strategy::Parallel => Box::new(ParallelEngine::new(config)),
        Strategy::WorkStealing => Box::new(WorkStealingEngine::new(config)),
    }
}
