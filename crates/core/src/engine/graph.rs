//! The interned successor graph and the recorded trace tree: explore
//! once, re-check new predicates without re-running the semantics.
//!
//! Exploration cost in this codebase is dominated by the transition
//! semantics — every [`crate::machine::Machine::transitions`] call clones
//! machines, and every reached machine is canonicalized. Both structures
//! in this module cache the part of that work that checkers actually
//! consume, so a second (third, …) predicate over the same program pays
//! none of it:
//!
//! * [`StateGraph`] — the deduplicated canonical state space as a compact
//!   CSR table: per dense [`StateId`], its successor ids and terminal
//!   flag, plus the id-ordered [`CanonState`]s handed over by the
//!   interner. Recorded by `WorklistEngine::explore_graph` and
//!   `WorkStealingEngine::explore_graph`; replayed with
//!   [`StateGraph::replay`]. State predicates (terminal outcome
//!   extraction, reachability counts) re-check in a linear scan.
//! * [`TraceGraph`] — the *trace tree* of the program, recorded once,
//!   unfiltered and unpruned, by `TraceEngine::record`: per node, the
//!   transition label that created it and the labels enabled at its
//!   target. Trace-dependent checkers (data races, happens-before,
//!   L-stability, Theorem 15 soundness) consume exactly label sequences
//!   and enabled-label sets, so [`TraceGraph::replay`] can drive any
//!   [`ReplayVisitor`] — with its own step filter, pruning, stopping and
//!   budget — over the cached tree and produce verdicts identical to a
//!   live [`crate::engine::TraceEngine`] walk. Because the recording is
//!   unfiltered it is a supertree of every filtered walk; replaying a
//!   filter simply skips the subtrees the live walk would never have
//!   entered.
//!
//! A note on why *state*-graph paths cannot replace the trace tree for
//! race checking: distinct traces reaching one canonical state are merged
//! in the state graph, and transition labels along a state-graph path mix
//! timestamps from different representative machines — happens-before
//! over such a path is not the happens-before of any real trace. The
//! trace tree keeps the label sequences exact; the state graph serves the
//! state predicates. Both are budget-bounded by the recording engine's
//! [`crate::engine::EngineConfig`].

use crate::engine::{CanonState, Control, EngineConfig, EngineError, ExploreStats, StateId};
use crate::machine::TransitionLabel;
use crate::trace::TraceLabels;
use crate::wire::{Codec, Reader, WireError};

/// The explored state space as a compact successor table (CSR) over the
/// interner's dense ids, with the canonical states retained for
/// re-checking.
#[derive(Debug)]
pub struct StateGraph<E> {
    /// Canonical states, indexed by [`StateId`].
    states: Vec<CanonState<E>>,
    /// CSR row offsets: successors of `i` live at
    /// `succs[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// Concatenated successor ids (one entry per transition, so duplicate
    /// targets — several transitions reaching one canonical state — are
    /// kept, mirroring the branching structure).
    succs: Vec<StateId>,
    /// Per-state terminal flag (no enabled transition).
    terminal: Vec<bool>,
}

impl<E> StateGraph<E> {
    /// Assembles the CSR from the interner's id-ordered states, the
    /// recorded `(from, to)` edges, and the per-id terminal flags.
    pub(crate) fn from_parts(
        states: Vec<CanonState<E>>,
        edges: &[(StateId, StateId)],
        terminal: Vec<bool>,
    ) -> StateGraph<E> {
        debug_assert_eq!(states.len(), terminal.len());
        let n = states.len();
        let mut counts = vec![0u32; n];
        for (from, _) in edges {
            counts[from.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut next: Vec<u32> = offsets[..n].to_vec();
        let mut succs = vec![StateId(0); edges.len()];
        for (from, to) in edges {
            let slot = next[from.index()];
            succs[slot as usize] = *to;
            next[from.index()] += 1;
        }
        StateGraph {
            states,
            offsets,
            succs,
            terminal,
        }
    }

    /// Number of canonical states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True for the graph of an empty exploration.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total number of recorded transitions (CSR entries).
    pub fn edge_count(&self) -> usize {
        self.succs.len()
    }

    /// The canonical state with the given id.
    pub fn state(&self, id: StateId) -> &CanonState<E> {
        &self.states[id.index()]
    }

    /// The successor ids of `id`, one entry per transition.
    pub fn successors(&self, id: StateId) -> &[StateId] {
        let lo = self.offsets[id.index()] as usize;
        let hi = self.offsets[id.index() + 1] as usize;
        &self.succs[lo..hi]
    }

    /// True iff `id` has no enabled transition.
    pub fn is_terminal(&self, id: StateId) -> bool {
        self.terminal[id.index()]
    }

    /// The ids of all terminal states, in id order.
    pub fn terminal_ids(&self) -> impl Iterator<Item = StateId> + '_ {
        self.terminal
            .iter()
            .enumerate()
            .filter(|(_, t)| **t)
            .map(|(i, _)| StateId(i as u32))
    }

    /// Serializes the graph for the content-addressed result store
    /// ([`crate::wire`]): states, CSR offsets, successor ids, terminal
    /// flags, in that order. `E` must itself be wire-codable (the litmus
    /// language's thread states are).
    pub fn encode(&self, out: &mut Vec<u8>)
    where
        E: Codec,
    {
        self.states.encode(out);
        self.offsets.encode(out);
        self.succs.encode(out);
        self.terminal.encode(out);
    }

    /// Decodes a graph previously written by [`StateGraph::encode`],
    /// re-validating every structural invariant the exploration engines
    /// guarantee — a corrupted entry must become a [`WireError`], never a
    /// graph that panics (or lies) when replayed.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; in particular [`WireError::Invalid`] when the
    /// CSR table is malformed (non-monotone offsets, out-of-range
    /// successor ids, terminal flags contradicting the successor lists).
    pub fn decode(r: &mut Reader<'_>) -> Result<StateGraph<E>, WireError>
    where
        E: Codec,
    {
        let states: Vec<CanonState<E>> = Vec::decode(r)?;
        let offsets: Vec<u32> = Vec::decode(r)?;
        let succs: Vec<StateId> = Vec::decode(r)?;
        let terminal: Vec<bool> = Vec::decode(r)?;
        let n = states.len();
        if offsets.len() != n + 1 || terminal.len() != n {
            return Err(WireError::Invalid("CSR table sizes"));
        }
        if offsets[0] != 0
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets[n] as usize != succs.len()
        {
            return Err(WireError::Invalid("CSR offsets"));
        }
        if succs.iter().any(|s| s.index() >= n) {
            return Err(WireError::Invalid("successor id out of range"));
        }
        let graph = StateGraph {
            states,
            offsets,
            succs,
            terminal,
        };
        for i in 0..n {
            let id = StateId(i as u32);
            if graph.terminal[i] != graph.successors(id).is_empty() {
                return Err(WireError::Invalid("terminal flag contradicts successors"));
            }
        }
        Ok(graph)
    }

    /// Re-checks a state predicate over the cached graph: `visit` is
    /// invoked once per state, in id order, with the state's successors
    /// and terminal flag — no transition semantics run. Returning
    /// [`Control::Stop`] ends the replay early ([`Control::Prune`] is
    /// meaningless over an already-complete graph and is treated as
    /// continue); the count of states visited is returned.
    pub fn replay(
        &self,
        mut visit: impl FnMut(StateId, &CanonState<E>, &[StateId], bool) -> Control,
    ) -> usize {
        for i in 0..self.states.len() {
            let id = StateId(i as u32);
            if let Control::Stop = visit(id, &self.states[i], self.successors(id), self.terminal[i])
            {
                return i + 1;
            }
        }
        self.states.len()
    }
}

/// One recorded node of the trace tree: see [`TraceGraph`].
#[derive(Clone, Copy, Debug)]
struct TraceNode {
    /// The transition label whose extension created this node.
    label: TransitionLabel,
    /// Slice `(start, len)` into the enabled-label pool: the labels
    /// enabled at this node's target machine.
    enabled: (u32, u32),
}

/// What a [`ReplayVisitor`] sees at one replayed trace extension: the
/// extension's label, the labels enabled at the reached machine, and
/// whether that machine is terminal.
#[derive(Clone, Copy, Debug)]
pub struct ReplayStep<'g> {
    /// The label of the transition just (re)taken.
    pub label: TransitionLabel,
    /// The labels of every transition enabled at the reached machine.
    pub enabled: &'g [TransitionLabel],
    /// True iff the reached machine has no enabled transition.
    pub terminal: bool,
}

/// A trace visitor over a recorded [`TraceGraph`]: the label-level
/// counterpart of [`crate::engine::TraceVisitor`]. Every checker in
/// [`crate::localdrf`] consumes only labels, so it implements both traits
/// over shared logic.
pub trait ReplayVisitor {
    /// Whether this label may extend the current trace (mirrors
    /// [`crate::engine::TraceVisitor::step_filter`]).
    fn step_filter(&mut self, _label: &TransitionLabel) -> bool {
        true
    }

    /// Inspects one replayed extension; `trace` ends with `step.label`.
    fn visit(&mut self, trace: &TraceLabels, step: ReplayStep<'_>) -> Control;
}

/// The complete trace tree of a program, recorded once (unfiltered,
/// unpruned, budget-bounded) and replayable under any number of
/// predicates. Nodes are stored in depth-first preorder; the children
/// lists (CSR) preserve sibling order, so a replay walks extensions in
/// exactly the order a live [`crate::engine::TraceEngine`] walk would.
#[derive(Debug)]
pub struct TraceGraph {
    nodes: Vec<TraceNode>,
    /// Pool backing every node's `enabled` slice.
    enabled_pool: Vec<TransitionLabel>,
    /// CSR over `nodes.len() + 1` rows; the last row is the virtual root
    /// (the initial machine), whose children are the depth-1 nodes.
    child_offsets: Vec<u32>,
    children: Vec<u32>,
    /// The labels enabled at the initial machine (the root's `enabled`).
    root_enabled: Vec<TransitionLabel>,
}

impl TraceGraph {
    /// Assembles the children CSR from parent pointers (`u32::MAX` marks
    /// depth-1 nodes).
    pub(crate) fn from_parts(
        nodes: Vec<RecordedNode>,
        enabled_pool: Vec<TransitionLabel>,
        root_enabled: Vec<TransitionLabel>,
    ) -> TraceGraph {
        let n = nodes.len();
        let row_of = |parent: u32| -> usize {
            if parent == u32::MAX {
                n
            } else {
                parent as usize
            }
        };
        let mut counts = vec![0u32; n + 1];
        for node in &nodes {
            counts[row_of(node.parent)] += 1;
        }
        let mut child_offsets = Vec::with_capacity(n + 2);
        let mut acc = 0u32;
        child_offsets.push(0);
        for c in &counts {
            acc += c;
            child_offsets.push(acc);
        }
        let mut next: Vec<u32> = child_offsets[..=n].to_vec();
        let mut children = vec![0u32; n];
        // Node ids increase in creation (preorder) order, so filling in id
        // order keeps every children row in sibling order.
        for (i, node) in nodes.iter().enumerate() {
            let row = row_of(node.parent);
            children[next[row] as usize] = i as u32;
            next[row] += 1;
        }
        TraceGraph {
            nodes: nodes
                .into_iter()
                .map(|s| TraceNode {
                    label: s.label,
                    enabled: s.enabled,
                })
                .collect(),
            enabled_pool,
            child_offsets,
            children,
            root_enabled,
        }
    }

    /// Number of recorded trace extensions (nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the initial machine is terminal (no trace extends it).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The labels enabled at the initial machine.
    pub fn root_enabled(&self) -> &[TransitionLabel] {
        &self.root_enabled
    }

    fn enabled_of(&self, node: usize) -> &[TransitionLabel] {
        let (start, len) = self.nodes[node].enabled;
        &self.enabled_pool[start as usize..(start + len) as usize]
    }

    fn children_of(&self, row: usize) -> &[u32] {
        let lo = self.child_offsets[row] as usize;
        let hi = self.child_offsets[row + 1] as usize;
        &self.children[lo..hi]
    }

    /// Serializes the trace tree for the content-addressed result store
    /// ([`crate::wire`]): node labels, enabled slices, the enabled pool,
    /// the children CSR, and the root's enabled labels, in that order.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let labels: Vec<TransitionLabel> = self.nodes.iter().map(|n| n.label).collect();
        labels.encode(out);
        let enabled: Vec<(u32, u32)> = self.nodes.iter().map(|n| n.enabled).collect();
        enabled.encode(out);
        self.enabled_pool.encode(out);
        self.child_offsets.encode(out);
        self.children.encode(out);
        self.root_enabled.encode(out);
    }

    /// Decodes a tree previously written by [`TraceGraph::encode`],
    /// re-validating every structural invariant `TraceEngine::record`
    /// guarantees — a corrupted entry must become a [`WireError`], never
    /// a tree that panics, loops, or replays differently from the
    /// recording.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; in particular [`WireError::Invalid`] when the
    /// children CSR is not the preorder tree shape the recorder emits
    /// (non-monotone offsets, a node with zero or several parents, a
    /// child preceding its parent, a children row disagreeing with the
    /// node's enabled-label count) or an enabled slice escapes the pool.
    pub fn decode(r: &mut Reader<'_>) -> Result<TraceGraph, WireError> {
        let labels: Vec<TransitionLabel> = Vec::decode(r)?;
        let enabled: Vec<(u32, u32)> = Vec::decode(r)?;
        let enabled_pool: Vec<TransitionLabel> = Vec::decode(r)?;
        let child_offsets: Vec<u32> = Vec::decode(r)?;
        let children: Vec<u32> = Vec::decode(r)?;
        let root_enabled: Vec<TransitionLabel> = Vec::decode(r)?;
        let n = labels.len();
        if enabled.len() != n || child_offsets.len() != n + 2 || children.len() != n {
            return Err(WireError::Invalid("trace CSR table sizes"));
        }
        if child_offsets[0] != 0
            || child_offsets.windows(2).any(|w| w[0] > w[1])
            || child_offsets[n + 1] as usize != n
        {
            return Err(WireError::Invalid("trace CSR offsets"));
        }
        for &(start, len) in &enabled {
            if (start as u64 + len as u64) > enabled_pool.len() as u64 {
                return Err(WireError::Invalid("enabled slice out of the pool"));
            }
        }
        // The children rows must be a preorder tree: every node has
        // exactly one parent, appears after it, rows are in sibling
        // (ascending-id) order, and — because a successful recording is
        // complete — each row is exactly as wide as its node's
        // enabled-label set (the virtual root row matches root_enabled).
        let mut seen = vec![false; n];
        for row in 0..=n {
            let lo = child_offsets[row] as usize;
            let hi = child_offsets[row + 1] as usize;
            let want = if row == n {
                root_enabled.len()
            } else {
                enabled[row].1 as usize
            };
            if hi - lo != want {
                return Err(WireError::Invalid("children row width vs enabled labels"));
            }
            let mut prev: Option<u32> = None;
            for &c in &children[lo..hi] {
                let ci = c as usize;
                if ci >= n || seen[ci] || (row < n && ci <= row) || prev.is_some_and(|p| p >= c) {
                    return Err(WireError::Invalid("children rows are not a preorder tree"));
                }
                seen[ci] = true;
                prev = Some(c);
            }
        }
        Ok(TraceGraph {
            nodes: labels
                .into_iter()
                .zip(enabled)
                .map(|(label, enabled)| TraceNode { label, enabled })
                .collect(),
            enabled_pool,
            child_offsets,
            children,
            root_enabled,
        })
    }

    /// Replays the recorded tree under `visitor`, reproducing the exact
    /// depth-first order, filtering, pruning, stopping, and budget
    /// semantics of a live [`crate::engine::TraceEngine::explore`] walk —
    /// without invoking the transition semantics at all. Verdicts are
    /// therefore identical to the live walk's for any visitor whose
    /// decisions depend only on labels (every checker in
    /// [`crate::localdrf`] and the Theorem 15 soundness scan qualify).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BudgetExceeded`] after `config.max_traces`
    /// filter-passing extensions, exactly like the live walk.
    pub fn replay<V: ReplayVisitor>(
        &self,
        config: EngineConfig,
        visitor: &mut V,
    ) -> Result<ExploreStats, EngineError> {
        struct Frame<'g> {
            children: &'g [u32],
            next: usize,
        }
        let mut stats = ExploreStats::default();
        let mut budget = config.max_traces;
        let mut trace = TraceLabels::new();
        let root = self.nodes.len();
        let mut frames = vec![Frame {
            children: self.children_of(root),
            next: 0,
        }];
        while let Some(frame) = frames.last_mut() {
            if frame.next >= frame.children.len() {
                frames.pop();
                if !frames.is_empty() {
                    trace.pop();
                }
                continue;
            }
            let node = frame.children[frame.next] as usize;
            frame.next += 1;
            stats.transitions += 1;
            let label = self.nodes[node].label;
            if !visitor.step_filter(&label) {
                continue;
            }
            if budget == 0 {
                return Err(EngineError::budget(config.max_traces + 1));
            }
            budget -= 1;
            stats.visited += 1;
            trace.push(label);
            let enabled = self.enabled_of(node);
            let step = ReplayStep {
                label,
                enabled,
                terminal: enabled.is_empty(),
            };
            match visitor.visit(&trace, step) {
                Control::Stop => return Ok(stats),
                Control::Prune => {
                    trace.pop();
                }
                Control::Continue => {
                    frames.push(Frame {
                        children: self.children_of(node),
                        next: 0,
                    });
                }
            }
        }
        Ok(stats)
    }
}

/// The raw node shape the recorder produces (parent pointers survive only
/// until the children CSR is built).
#[derive(Clone, Copy, Debug)]
pub(crate) struct RecordedNode {
    pub(crate) parent: u32,
    pub(crate) label: TransitionLabel,
    pub(crate) enabled: (u32, u32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SearchOrder, TraceEngine, TraceVisitor, WorklistEngine};
    use crate::loc::{Loc, LocKind, LocSet, Val};
    use crate::machine::{Machine, RecordedExpr, StepLabel, Transition};

    fn locs_ab() -> (LocSet, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        (l, a, b)
    }

    fn sb_machine(locs: &LocSet, a: Loc, b: Loc) -> Machine<RecordedExpr> {
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
        Machine::initial(locs, [p0, p1])
    }

    #[test]
    fn state_graph_matches_live_exploration() {
        let (locs, a, b) = locs_ab();
        let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs);
        let (graph, stats) = engine
            .explore_graph(&locs, sb_machine(&locs, a, b))
            .unwrap();
        assert_eq!(graph.len(), stats.visited);
        assert_eq!(graph.edge_count(), stats.transitions);
        // Every non-terminal state has successors; terminals have none.
        for i in 0..graph.len() {
            let id = StateId(i as u32);
            assert_eq!(graph.is_terminal(id), graph.successors(id).is_empty());
        }
        assert!(graph.terminal_ids().count() > 0);
    }

    #[test]
    fn state_graph_round_trips_through_the_wire() {
        let (locs, a, b) = locs_ab();
        let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs);
        let (graph, _) = engine
            .explore_graph(&locs, sb_machine(&locs, a, b))
            .unwrap();
        let mut bytes = Vec::new();
        graph.encode(&mut bytes);
        let decoded =
            StateGraph::<RecordedExpr>::decode(&mut crate::wire::Reader::new(&bytes)).unwrap();
        assert_eq!(decoded.len(), graph.len());
        assert_eq!(decoded.edge_count(), graph.edge_count());
        for i in 0..graph.len() {
            let id = StateId(i as u32);
            assert_eq!(decoded.state(id), graph.state(id));
            assert_eq!(decoded.successors(id), graph.successors(id));
            assert_eq!(decoded.is_terminal(id), graph.is_terminal(id));
        }
    }

    #[test]
    fn corrupted_state_graph_bytes_are_rejected() {
        let (locs, a, b) = locs_ab();
        let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs);
        let (graph, _) = engine
            .explore_graph(&locs, sb_machine(&locs, a, b))
            .unwrap();
        let mut bytes = Vec::new();
        graph.encode(&mut bytes);
        // Truncation anywhere must be an error, never a panic.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                StateGraph::<RecordedExpr>::decode(&mut crate::wire::Reader::new(&bytes[..cut]))
                    .is_err(),
                "truncation at {cut} decoded"
            );
        }
        // Flipping any single byte must either fail to decode or decode
        // to a structurally valid graph (the CSR invariants re-checked) —
        // walk a few positions across the buffer.
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            if let Ok(g) = StateGraph::<RecordedExpr>::decode(&mut crate::wire::Reader::new(&bad)) {
                for s in 0..g.len() {
                    let id = StateId(s as u32);
                    assert_eq!(g.is_terminal(id), g.successors(id).is_empty());
                    assert!(g.successors(id).iter().all(|t| t.index() < g.len()));
                }
            }
        }
    }

    #[test]
    fn state_graph_replay_stops_early() {
        let (locs, a, b) = locs_ab();
        let engine = WorklistEngine::new(EngineConfig::default(), SearchOrder::Bfs);
        let (graph, _) = engine
            .explore_graph(&locs, sb_machine(&locs, a, b))
            .unwrap();
        let mut seen = 0usize;
        let visited = graph.replay(|_, _, _, _| {
            seen += 1;
            if seen == 3 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(seen, 3);
        assert_eq!(visited, 3);
    }

    /// Counts complete interleavings of length `len` — usable both live
    /// and replayed.
    struct CountComplete {
        len: usize,
        complete: usize,
    }

    impl TraceVisitor<RecordedExpr> for CountComplete {
        fn visit(&mut self, trace: &TraceLabels, t: &Transition<RecordedExpr>) -> Control {
            if trace.len() == self.len && t.target.is_terminal() {
                self.complete += 1;
            }
            Control::Continue
        }
    }

    impl ReplayVisitor for CountComplete {
        fn visit(&mut self, trace: &TraceLabels, step: ReplayStep<'_>) -> Control {
            if trace.len() == self.len && step.terminal {
                self.complete += 1;
            }
            Control::Continue
        }
    }

    #[test]
    fn trace_graph_replay_matches_live_walk() {
        let (locs, a, b) = locs_ab();
        let m0 = sb_machine(&locs, a, b);
        let engine = TraceEngine::new(EngineConfig::default());
        let mut live = CountComplete {
            len: 4,
            complete: 0,
        };
        let live_stats = engine.explore(&locs, m0.clone(), &mut live).unwrap();

        let (graph, rec_stats) = engine.record(&locs, m0).unwrap();
        assert_eq!(rec_stats.visited, live_stats.visited);
        let mut replayed = CountComplete {
            len: 4,
            complete: 0,
        };
        let rep_stats = graph
            .replay(EngineConfig::default(), &mut replayed)
            .unwrap();
        assert_eq!(live.complete, replayed.complete);
        assert_eq!(live_stats.visited, rep_stats.visited);
        assert_eq!(live_stats.transitions, rep_stats.transitions);
    }

    #[test]
    fn trace_graph_replay_budget_matches_live() {
        let (locs, a, b) = locs_ab();
        let m0 = sb_machine(&locs, a, b);
        let total = TraceEngine::new(EngineConfig::default())
            .record(&locs, m0.clone())
            .unwrap()
            .1
            .visited;
        let tight = EngineConfig {
            max_states: usize::MAX,
            max_traces: total - 1,
        };
        struct Go;
        impl TraceVisitor<RecordedExpr> for Go {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                Control::Continue
            }
        }
        impl ReplayVisitor for Go {
            fn visit(&mut self, _: &TraceLabels, _: ReplayStep<'_>) -> Control {
                Control::Continue
            }
        }
        let live = TraceEngine::new(tight).explore(&locs, m0.clone(), &mut Go);
        let (graph, _) = TraceEngine::new(EngineConfig::default())
            .record(&locs, m0.clone())
            .unwrap();
        let replayed = graph.replay(tight, &mut Go);
        assert_eq!(live.unwrap_err(), replayed.unwrap_err());
        // Recording under the tight budget trips identically.
        assert_eq!(
            TraceEngine::new(tight).record(&locs, m0).unwrap_err(),
            EngineError::budget(tight.max_traces + 1)
        );
    }

    #[test]
    fn trace_graph_round_trips_through_the_wire() {
        let (locs, a, b) = locs_ab();
        let (graph, _) = TraceEngine::new(EngineConfig::default())
            .record(&locs, sb_machine(&locs, a, b))
            .unwrap();
        let mut bytes = Vec::new();
        graph.encode(&mut bytes);
        let decoded = TraceGraph::decode(&mut crate::wire::Reader::new(&bytes)).unwrap();
        assert_eq!(decoded.len(), graph.len());
        assert_eq!(decoded.root_enabled(), graph.root_enabled());
        // The decoded tree replays identically to the original.
        let mut live = CountComplete {
            len: 4,
            complete: 0,
        };
        graph.replay(EngineConfig::default(), &mut live).unwrap();
        let mut replayed = CountComplete {
            len: 4,
            complete: 0,
        };
        let stats = decoded
            .replay(EngineConfig::default(), &mut replayed)
            .unwrap();
        assert_eq!(live.complete, replayed.complete);
        assert!(stats.visited > 0);
        // And re-encodes to the same bytes (canonical encoding).
        let mut again = Vec::new();
        decoded.encode(&mut again);
        assert_eq!(bytes, again);
    }

    #[test]
    fn corrupted_trace_graph_bytes_are_rejected() {
        let (locs, a, b) = locs_ab();
        let (graph, _) = TraceEngine::new(EngineConfig::default())
            .record(&locs, sb_machine(&locs, a, b))
            .unwrap();
        let mut bytes = Vec::new();
        graph.encode(&mut bytes);
        // Truncation anywhere must be an error, never a panic.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                TraceGraph::decode(&mut crate::wire::Reader::new(&bytes[..cut])).is_err(),
                "truncation at {cut} decoded"
            );
        }
        // Flipping any single byte must either fail to decode or decode
        // to a tree whose replay still terminates with the recorded
        // structural invariants intact (walk a few positions).
        for i in (0..bytes.len()).step_by(5) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            if let Ok(g) = TraceGraph::decode(&mut crate::wire::Reader::new(&bad)) {
                struct Go;
                impl ReplayVisitor for Go {
                    fn visit(&mut self, _: &TraceLabels, _: ReplayStep<'_>) -> Control {
                        Control::Continue
                    }
                }
                let stats = g.replay(EngineConfig::default(), &mut Go).unwrap();
                assert_eq!(stats.visited, g.len(), "replay lost nodes after flip {i}");
            }
        }
    }

    #[test]
    fn trace_graph_replay_honours_filters_and_pruning() {
        let (locs, a, b) = locs_ab();
        let m0 = sb_machine(&locs, a, b);
        // Filter: thread 0 only. Live and replayed walks must agree.
        struct OnlyP0 {
            seen: usize,
        }
        impl TraceVisitor<RecordedExpr> for OnlyP0 {
            fn step_filter(&mut self, t: &Transition<RecordedExpr>) -> bool {
                t.label.thread.index() == 0
            }
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                self.seen += 1;
                Control::Continue
            }
        }
        impl ReplayVisitor for OnlyP0 {
            fn step_filter(&mut self, label: &TransitionLabel) -> bool {
                label.thread.index() == 0
            }
            fn visit(&mut self, _: &TraceLabels, _: ReplayStep<'_>) -> Control {
                self.seen += 1;
                Control::Continue
            }
        }
        let mut live = OnlyP0 { seen: 0 };
        TraceEngine::new(EngineConfig::default())
            .explore(&locs, m0.clone(), &mut live)
            .unwrap();
        let (graph, _) = TraceEngine::new(EngineConfig::default())
            .record(&locs, m0)
            .unwrap();
        let mut replayed = OnlyP0 { seen: 0 };
        graph
            .replay(EngineConfig::default(), &mut replayed)
            .unwrap();
        assert_eq!(live.seen, replayed.seen);
        assert!(live.seen > 0);
    }
}
