//! Parallel frontier expansion, and the shared fork/join helper used by
//! the corpus sweeps.
//!
//! [`ParallelEngine`] explores the state space level by level: the current
//! BFS frontier is expanded by a pool of scoped worker threads which claim
//! frontier slots from a shared atomic cursor (dynamic load balancing —
//! fast workers steal the slots slow workers never reach). Newly reached
//! states are admitted through the sharded [`SharedInterner`], whose
//! claim-exactly-once semantics guarantees the visitor still sees each
//! canonical state exactly once; the visited state *set* is therefore
//! identical to the sequential engines', which the engine tests and the
//! litmus corpus sweep verify outcome-for-outcome.
//!
//! [`parallel_map`] shards an arbitrary slice over the same deque-based
//! work-stealing substrate as [`crate::engine::WorkStealingEngine`]
//! ([`crate::engine::steal`]): the litmus corpus runner shards tests
//! across it, the §8 simulator shards workloads across it, and the
//! axiomatic enumerator shards rf/co odometer ranges across it. Items
//! are seeded round-robin onto per-worker deques; a worker that drains
//! its own deque steals from the others, so uneven item costs (litmus
//! tests vary by orders of magnitude) still balance without a shared
//! cursor in the hot path.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::engine::steal::{engine_threads, StealDeques};
use crate::engine::{
    claim_canonical, CanonState, Control, EngineConfig, EngineError, ExploreStats, Explorer,
    SharedInterner, StateId, StateVisitor,
};
use crate::loc::LocSet;
use crate::machine::{Expr, Machine};

/// Fingerprint-first claim: `Some(id)` iff this call admitted the state.
fn claim<E: Expr>(
    interner: &SharedInterner<CanonState<E>>,
    locs: &LocSet,
    m: &Machine<E>,
) -> Result<Option<StateId>, EngineError> {
    let (id, fresh) = claim_canonical(interner, locs, m)?;
    Ok(fresh.then_some(id))
}

/// The states one worker claimed while expanding a frontier level.
type Claimed<E> = Vec<(StateId, Machine<E>)>;

/// The parallel state-space engine: level-synchronous BFS frontier
/// expansion over scoped threads.
///
/// The visitor runs on the coordinating thread between levels (it needs
/// neither `Send` nor locking); workers only expand machines and claim
/// canonical states. Within a level, claimed states are presented to the
/// visitor in [`StateId`] order.
#[derive(Clone, Copy, Debug)]
pub struct ParallelEngine {
    /// Budgets.
    pub config: EngineConfig,
    /// Worker thread count; 0 means all available cores.
    pub threads: usize,
}

impl ParallelEngine {
    /// An engine using every available core.
    pub fn new(config: EngineConfig) -> ParallelEngine {
        ParallelEngine { config, threads: 0 }
    }

    /// An engine with an explicit worker count.
    pub fn with_threads(config: EngineConfig, threads: usize) -> ParallelEngine {
        ParallelEngine { config, threads }
    }
}

impl<E: Expr + Send + Sync> Explorer<E> for ParallelEngine {
    fn explore(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        visitor: &mut dyn StateVisitor<E>,
    ) -> Result<ExploreStats, EngineError> {
        let workers = engine_threads(self.threads);
        let mut span = bdrst_obs::span(bdrst_obs::Phase::Explore);
        let started = std::time::Instant::now();
        let finish = |stats: ExploreStats, span: &mut bdrst_obs::SpanGuard| {
            bdrst_obs::counter_add(
                bdrst_obs::Counter::ExploreNanos,
                started.elapsed().as_nanos() as u64,
            );
            span.set_arg(stats.visited as u64);
            stats
        };
        let interner: SharedInterner<CanonState<E>> = SharedInterner::new();
        let mut stats = ExploreStats::default();

        let id = claim(&interner, locs, &m0)?.expect("initial state claims an empty interner");
        stats.visited += 1;
        bdrst_obs::counter_add(bdrst_obs::Counter::StatesVisited, 1);
        let mut frontier: Vec<Machine<E>> = match visitor.visit(&m0, id) {
            Control::Stop | Control::Prune => return Ok(finish(stats, &mut span)),
            Control::Continue => vec![m0],
        };

        while !frontier.is_empty() {
            bdrst_obs::counter_max(bdrst_obs::Counter::FrontierHighWater, frontier.len() as u64);
            let cursor = AtomicUsize::new(0);
            let transitions = AtomicUsize::new(0);
            let max_states = self.config.max_states;
            // Expand the whole frontier: each worker repeatedly claims the
            // next unexpanded slot and claims this level's fresh states.
            let results: Vec<Result<Claimed<E>, EngineError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut claimed = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(m) = frontier.get(i) else { break };
                                for t in m.transitions(locs) {
                                    transitions.fetch_add(1, Ordering::Relaxed);
                                    if let Some(id) = claim(&interner, locs, &t.target)? {
                                        claimed.push((id, t.target));
                                    }
                                }
                                if interner.len() > max_states {
                                    return Err(EngineError::budget(interner.len()));
                                }
                            }
                            Ok(claimed)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });

            let mut level: Vec<(StateId, Machine<E>)> = Vec::new();
            for r in results {
                level.extend(r?);
            }
            stats.transitions += transitions.load(Ordering::Relaxed);
            if interner.len() > self.config.max_states {
                return Err(EngineError::budget(interner.len()));
            }
            // Deterministic *within-run* presentation order.
            level.sort_by_key(|(id, _)| *id);
            let mut next = Vec::with_capacity(level.len());
            for (id, m) in level {
                stats.visited += 1;
                bdrst_obs::counter_add(bdrst_obs::Counter::StatesVisited, 1);
                bdrst_obs::progress_tick(stats.visited as u64, self.config.max_states as u64);
                match visitor.visit(&m, id) {
                    Control::Stop => return Ok(finish(stats, &mut span)),
                    Control::Prune => {}
                    Control::Continue => next.push(m),
                }
            }
            frontier = next;
        }
        Ok(finish(stats, &mut span))
    }
}

/// Applies `f` to every item of `items` across all available cores,
/// preserving input order in the result.
///
/// Items are seeded round-robin onto per-worker stealing deques
/// ([`StealDeques`]); a worker that exhausts its own deque steals from
/// the others, so uneven item costs (litmus tests vary by orders of
/// magnitude) still balance. Panics in `f` propagate to the caller.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, 0, f)
}

/// [`parallel_map`] with an explicit worker count (0 = all cores,
/// honouring `BDRST_ENGINE_THREADS`; see
/// [`crate::engine::steal::engine_threads`]).
pub fn parallel_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = engine_threads(threads).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let deques: StealDeques<usize> = StealDeques::new(workers);
    for i in 0..items.len() {
        deques.push(i % workers, i);
    }
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (deques, f) = (&deques, &f);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    while let Some(i) = deques.take(w) {
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("parallel_map worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SearchOrder, WorklistEngine};
    use crate::loc::{Loc, LocKind, Val};
    use crate::machine::{RecordedExpr, StepLabel};
    use std::collections::BTreeSet;

    fn locs_abf() -> (LocSet, Loc, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        let f = l.fresh("F", LocKind::Atomic);
        (l, a, b, f)
    }

    fn mp_machine(locs: &LocSet, a: Loc, f: Loc) -> Machine<RecordedExpr> {
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
        ]);
        let p1 = RecordedExpr::new(vec![StepLabel::Read(f), StepLabel::Read(a)]);
        Machine::initial(locs, [p0, p1])
    }

    fn outcome_set(
        engine: &dyn Explorer<RecordedExpr>,
        locs: &LocSet,
        m0: Machine<RecordedExpr>,
    ) -> BTreeSet<Vec<i64>> {
        let mut outcomes = BTreeSet::new();
        engine
            .explore(locs, m0, &mut |m: &Machine<RecordedExpr>, _id: StateId| {
                if m.is_terminal() {
                    outcomes.insert(
                        m.threads
                            .iter()
                            .flat_map(|t| t.expr.reads.iter().map(|v| v.0))
                            .collect(),
                    );
                }
                Control::Continue
            })
            .unwrap();
        outcomes
    }

    #[test]
    fn parallel_matches_sequential_on_message_passing() {
        let (locs, a, _b, f) = locs_abf();
        let seq = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs);
        let par = ParallelEngine::with_threads(EngineConfig::default(), 4);
        let s = outcome_set(&seq, &locs, mp_machine(&locs, a, f));
        let p = outcome_set(&par, &locs, mp_machine(&locs, a, f));
        assert_eq!(s, p);
        // MP guarantee intact under the parallel engine: no [1, 0].
        assert!(!p.contains(&vec![1, 0]));
    }

    #[test]
    fn parallel_budget_is_enforced() {
        let (locs, a, _, _) = locs_abf();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        let tiny = EngineConfig {
            max_states: 10,
            max_traces: 10,
        };
        let par = ParallelEngine::with_threads(tiny, 4);
        let r = par.explore(&locs, m0, &mut |_: &Machine<RecordedExpr>, _: StateId| {
            Control::Continue
        });
        assert!(matches!(r, Err(EngineError::BudgetExceeded { .. })));
    }

    #[test]
    fn parallel_map_preserves_order_and_covers_all() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let out1 = parallel_map_with(&items, 1, |x| x + 1);
        assert_eq!(out1[0], 1);
        assert_eq!(out1.len(), 257);
    }

    #[test]
    fn parallel_map_empty_slice() {
        let items: Vec<u64> = Vec::new();
        assert!(parallel_map(&items, |x| *x).is_empty());
    }
}
