//! Deque-based work-stealing: the persistent worker pool behind
//! [`WorkStealingEngine`] and [`crate::engine::parallel_map`].
//!
//! The level-synchronous [`crate::engine::ParallelEngine`] pays a full
//! thread barrier per BFS level; litmus-scale state spaces have shallow,
//! narrow levels, so that barrier dominates. The work-stealing engine
//! instead keeps one pool of workers alive for the whole exploration:
//!
//! * each worker owns a deque ([`StealDeques`], riding the lock-free
//!   [`ChaseLev`] deque) of machines awaiting expansion, pushed and
//!   popped LIFO at the owner end (depth-first locality: the hottest
//!   subtree stays in cache);
//! * an idle worker steals from the *top* of a victim's deque — the
//!   oldest entry roots the largest unexplored subtree, so one steal
//!   buys the most work per synchronisation — with no lock anywhere on
//!   the steal path;
//! * newly reached states are admitted through the claim-exactly-once
//!   [`SharedInterner`], probed **fingerprint-first**
//!   ([`canonical_fingerprint`]): a re-visit costs zero allocation, and
//!   the full canonical state is built only on first claim (or verified
//!   fingerprint collision), exactly as in the sequential engines;
//! * the caller's [`StateVisitor`] — which is `&mut` and need not be
//!   `Send` — runs on the coordinating thread, fed by a channel of
//!   freshly claimed states; admitted states return to the pool through
//!   one coordinator-owned lock-free [`ChaseLev`] *injector* (the
//!   coordinator is its single bottom-end owner, workers steal from the
//!   top), so every idle worker sees every admitted state immediately —
//!   no state can stall behind one worker's backoff. A state is never
//!   expanded before the visitor admits it, so
//!   [`Control::Prune`]/[`Control::Stop`] steer the search exactly as
//!   they do sequentially.
//!
//! Termination uses a single `pending` counter covering every state that
//! is queued, being expanded, or awaiting its visitor verdict: when it
//! reaches zero the space is exhausted. Budget and corruption errors are
//! recorded first-error-wins and surfaced as the same [`EngineError`]
//! values the sequential engines produce.
//!
//! [`WorkStealingEngine::explore_graph`] runs the same pool without a
//! visitor (full exploration, nothing to admit or prune): workers push
//! fresh claims straight onto their own deques and record, per expanded
//! [`StateId`], its successor ids and terminal flag — the raw material of
//! the [`crate::engine::StateGraph`].
//!
//! # Thread-count knobs
//!
//! Every parallel entry point in this crate resolves its worker count
//! through [`engine_threads`]: an explicit nonzero count is used as
//! given; `0` (the "all cores" default) consults the
//! `BDRST_ENGINE_THREADS` environment variable before falling back to
//! [`std::thread::available_parallelism`]. CI runs the whole test suite
//! once with `BDRST_ENGINE_THREADS=1` (forcing every defaulted pool to a
//! single worker) and once unset, so both paths stay exercised.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

use crate::engine::deque::{ChaseLev, Steal};
use crate::engine::{
    claim_canonical, CanonState, Control, EngineConfig, EngineError, ExploreStats, Explorer,
    SearchOrder, SharedInterner, StateGraph, StateId, StateVisitor, WorklistEngine,
};
use crate::loc::LocSet;
use crate::machine::{Expr, Machine};

/// Resolves a requested worker count: nonzero counts are taken verbatim,
/// `0` means "all available" — first the `BDRST_ENGINE_THREADS`
/// environment variable (if set to a positive integer), then
/// [`std::thread::available_parallelism`].
pub fn engine_threads(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    if let Ok(s) = std::env::var("BDRST_ENGINE_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// One lock-free [`ChaseLev`] deque per worker, with LIFO owner access
/// and FIFO stealing.
///
/// The owner protocol: `push(w, _)`/`pop(w)` belong to worker `w`'s
/// owner thread (they serialize through the deque's uncontended owner
/// latch, so even misuse cannot corrupt the structure); `steal`/`take`
/// may be called from anywhere and never block on the owner.
pub struct StealDeques<T> {
    queues: Vec<ChaseLev<T>>,
}

impl<T> StealDeques<T> {
    /// Empty deques for `workers` workers.
    pub fn new(workers: usize) -> StealDeques<T> {
        StealDeques {
            queues: (0..workers).map(|_| ChaseLev::new()).collect(),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Pushes `item` onto `worker`'s deque (owner side).
    pub fn push(&self, worker: usize, item: T) {
        self.queues[worker].push(item);
    }

    /// Pops from `worker`'s own deque (LIFO: depth-first locality).
    pub fn pop(&self, worker: usize) -> Option<T> {
        self.queues[worker].pop()
    }

    /// Steals from the top of some other worker's deque (FIFO: the
    /// oldest entry roots the largest subtree). Victims are scanned
    /// round-robin starting after the thief; a lost CAS race retries the
    /// same victim.
    pub fn steal(&self, thief: usize) -> Option<T> {
        let n = self.queues.len();
        for k in 1..n {
            let victim = (thief + k) % n;
            loop {
                match self.queues[victim].steal() {
                    Steal::Success(item) => return Some(item),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    /// Owner pop, falling back to stealing.
    pub fn take(&self, worker: usize) -> Option<T> {
        self.pop(worker).or_else(|| self.steal(worker))
    }
}

/// Records the first error any worker hits; later errors are dropped.
struct FirstError {
    slot: Mutex<Option<EngineError>>,
}

impl FirstError {
    fn new() -> FirstError {
        FirstError {
            slot: Mutex::new(None),
        }
    }

    fn record(&self, e: EngineError) {
        let mut slot = self.slot.lock().expect("error slot poisoned");
        slot.get_or_insert(e);
    }

    fn into_inner(self) -> Option<EngineError> {
        self.slot.into_inner().expect("error slot poisoned")
    }
}

/// Brief-yield-then-sleep backoff for a worker that found no work: when
/// the coordinator's visitor is the bottleneck the deques stay empty for
/// long stretches and spinning would burn cores.
fn idle_backoff(idle_spins: &mut u32) {
    if *idle_spins < 64 {
        *idle_spins += 1;
        std::thread::yield_now();
    } else {
        std::thread::sleep(Duration::from_micros(100));
    }
}

/// The work-stealing state-space engine: a persistent pool of workers
/// expanding machines from per-worker lock-free deques, no per-level
/// barrier.
///
/// Deep explorations scale because a worker never waits for a level to
/// drain — it either pops its own deque or steals. The visitor runs on
/// the coordinating (calling) thread and admits every state before it is
/// expanded, so pruning and stopping behave exactly as in the sequential
/// engines; the visited canonical state *set* is identical across all
/// engines (claim-exactly-once interning), only the visit order differs.
#[derive(Clone, Copy, Debug)]
pub struct WorkStealingEngine {
    /// Budgets.
    pub config: EngineConfig,
    /// Worker thread count; 0 means all available cores (see
    /// [`engine_threads`]).
    pub threads: usize,
}

impl WorkStealingEngine {
    /// An engine using every available core.
    pub fn new(config: EngineConfig) -> WorkStealingEngine {
        WorkStealingEngine { config, threads: 0 }
    }

    /// An engine with an explicit worker count.
    pub fn with_threads(config: EngineConfig, threads: usize) -> WorkStealingEngine {
        WorkStealingEngine { config, threads }
    }

    /// Fully explores the state space from `m0` across the pool (no
    /// visitor, no pruning), recording the interned successor graph:
    /// workers push fresh claims straight onto their own deques, and
    /// each expansion logs its successor ids (every endpoint has a known
    /// id thanks to claim-or-lookup interning) and terminal flag. The
    /// resulting [`StateGraph`] is identical in content to
    /// [`WorklistEngine::explore_graph`]'s, up to id permutation from
    /// the claiming race.
    ///
    /// # Errors
    ///
    /// As [`Explorer::explore`]: budget exhaustion or a corrupted
    /// machine.
    pub fn explore_graph<E: Expr + Send + Sync>(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
    ) -> Result<(StateGraph<E>, ExploreStats), EngineError> {
        let workers = engine_threads(self.threads);
        if workers <= 1 {
            return WorklistEngine::new(self.config, SearchOrder::Bfs).explore_graph(locs, m0);
        }
        let mut span = bdrst_obs::span(bdrst_obs::Phase::Explore);
        let started = std::time::Instant::now();

        let interner: SharedInterner<CanonState<E>> = SharedInterner::new();
        let (id0, _) = claim_canonical(&interner, locs, &m0)?;
        let deques: StealDeques<(StateId, Machine<E>)> = StealDeques::new(workers);
        deques.push(0, (id0, m0));
        let pending = AtomicUsize::new(1);
        let stop = AtomicBool::new(false);
        let transitions = AtomicUsize::new(0);
        let failure = FirstError::new();
        let max_states = self.config.max_states;

        // Per-worker recordings, merged after the scope joins.
        type Recording = (Vec<(StateId, StateId)>, Vec<(StateId, bool)>);
        let recordings: Vec<Recording> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (deques, pending, stop, transitions, failure, interner) =
                        (&deques, &pending, &stop, &transitions, &failure, &interner);
                    scope.spawn(move || {
                        let mut edges: Vec<(StateId, StateId)> = Vec::new();
                        let mut terminals: Vec<(StateId, bool)> = Vec::new();
                        let mut idle_spins = 0u32;
                        while !stop.load(Ordering::Acquire) {
                            let Some((id, m)) = deques.take(w) else {
                                if pending.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                idle_backoff(&mut idle_spins);
                                continue;
                            };
                            idle_spins = 0;
                            bdrst_obs::counter_add(bdrst_obs::Counter::StatesVisited, 1);
                            bdrst_obs::progress_tick(interner.len() as u64, max_states as u64);
                            let ts = m.transitions(locs);
                            terminals.push((id, ts.is_empty()));
                            let mut err = None;
                            for t in ts {
                                transitions.fetch_add(1, Ordering::Relaxed);
                                match claim_canonical(interner, locs, &t.target) {
                                    Ok((succ, fresh)) => {
                                        edges.push((id, succ));
                                        if fresh {
                                            let depth = pending.fetch_add(1, Ordering::AcqRel) + 1;
                                            bdrst_obs::counter_max(
                                                bdrst_obs::Counter::FrontierHighWater,
                                                depth as u64,
                                            );
                                            deques.push(w, (succ, t.target));
                                        }
                                    }
                                    Err(e) => {
                                        err = Some(e);
                                        break;
                                    }
                                }
                            }
                            if err.is_none() && interner.len() > max_states {
                                err = Some(EngineError::budget(interner.len()));
                            }
                            if let Some(e) = err {
                                failure.record(e);
                                stop.store(true, Ordering::Release);
                                break;
                            }
                            pending.fetch_sub(1, Ordering::AcqRel);
                        }
                        (edges, terminals)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        if let Some(e) = failure.into_inner() {
            return Err(e);
        }
        let mut edges = Vec::new();
        let mut terminal = vec![false; interner.len()];
        for (worker_edges, worker_terminals) in recordings {
            edges.extend(worker_edges);
            for (id, t) in worker_terminals {
                terminal[id.index()] = t;
            }
        }
        let stats = ExploreStats {
            visited: interner.len(),
            transitions: transitions.load(Ordering::Relaxed),
        };
        bdrst_obs::counter_add(
            bdrst_obs::Counter::ExploreNanos,
            started.elapsed().as_nanos() as u64,
        );
        span.set_arg(stats.visited as u64);
        Ok((
            StateGraph::from_parts(interner.into_states(), &edges, terminal),
            stats,
        ))
    }
}

/// A batch of freshly claimed states travelling worker → coordinator.
type Claimed<E> = Vec<(StateId, Machine<E>)>;

impl<E: Expr + Send + Sync> Explorer<E> for WorkStealingEngine {
    fn explore(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        visitor: &mut dyn StateVisitor<E>,
    ) -> Result<ExploreStats, EngineError> {
        let workers = engine_threads(self.threads);
        if workers <= 1 {
            // One worker degenerates to a sequential frontier walk; the
            // worklist engine produces the identical state set and error
            // surface without the channel machinery.
            return WorklistEngine::new(self.config, SearchOrder::Bfs).explore(locs, m0, visitor);
        }
        let mut span = bdrst_obs::span(bdrst_obs::Phase::Explore);
        let started = std::time::Instant::now();

        let interner: SharedInterner<CanonState<E>> = SharedInterner::new();
        let mut stats = ExploreStats::default();
        let (id, _) = claim_canonical(&interner, locs, &m0)?;
        stats.visited += 1;
        bdrst_obs::counter_add(bdrst_obs::Counter::StatesVisited, 1);
        match visitor.visit(&m0, id) {
            Control::Stop | Control::Prune => return Ok(stats),
            Control::Continue => {}
        }

        // Admitted machines return to the pool through one lock-free
        // injector: the coordinating thread is its single bottom-end
        // owner (only it pushes), every worker steals from the top, so
        // each admitted state is visible to the whole pool immediately.
        let injector: ChaseLev<Machine<E>> = ChaseLev::new();
        injector.push(m0);
        // `pending` counts states that are queued for expansion (in the
        // injector), being expanded, or sitting in the channel awaiting
        // their visitor verdict. Zero means the whole space has been
        // processed.
        let pending = AtomicUsize::new(1);
        let stop = AtomicBool::new(false);
        let transitions = AtomicUsize::new(0);
        let failure = FirstError::new();
        let max_states = self.config.max_states;

        let (tx, rx) = mpsc::channel::<Claimed<E>>();
        let mut visitor_stopped = false;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let (injector, pending, stop, transitions, failure, interner) = (
                    &injector,
                    &pending,
                    &stop,
                    &transitions,
                    &failure,
                    &interner,
                );
                scope.spawn(move || {
                    let mut idle_spins = 0u32;
                    while !stop.load(Ordering::Acquire) {
                        let m = match injector.steal() {
                            Steal::Success(m) => m,
                            // Lost a race: another worker took it.
                            Steal::Retry => continue,
                            Steal::Empty => {
                                if pending.load(Ordering::Acquire) == 0 {
                                    break;
                                }
                                idle_backoff(&mut idle_spins);
                                continue;
                            }
                        };
                        idle_spins = 0;
                        let mut claimed: Claimed<E> = Vec::new();
                        let mut err = None;
                        for t in m.transitions(locs) {
                            transitions.fetch_add(1, Ordering::Relaxed);
                            match claim_canonical(interner, locs, &t.target) {
                                Ok((id, fresh)) => {
                                    if fresh {
                                        claimed.push((id, t.target));
                                    }
                                }
                                Err(e) => {
                                    err = Some(e);
                                    break;
                                }
                            }
                        }
                        if err.is_none() && interner.len() > max_states {
                            err = Some(EngineError::budget(interner.len()));
                        }
                        if let Some(e) = err {
                            failure.record(e);
                            stop.store(true, Ordering::Release);
                            break;
                        }
                        if !claimed.is_empty() {
                            let depth =
                                pending.fetch_add(claimed.len(), Ordering::AcqRel) + claimed.len();
                            bdrst_obs::counter_max(
                                bdrst_obs::Counter::FrontierHighWater,
                                depth as u64,
                            );
                            // The coordinator only hangs up after `stop`;
                            // a failed send means shutdown is under way.
                            let _ = tx.send(claimed);
                        }
                        pending.fetch_sub(1, Ordering::AcqRel);
                    }
                });
            }
            drop(tx); // workers hold the remaining senders

            // Coordinator: admit states through the visitor and feed the
            // survivors back to the pool through the injector (this
            // thread is the injector's only owner, so the push below is
            // the single-owner Chase–Lev bottom operation).
            'coordinate: loop {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(batch) => {
                        for (id, m) in batch {
                            stats.visited += 1;
                            bdrst_obs::counter_add(bdrst_obs::Counter::StatesVisited, 1);
                            bdrst_obs::progress_tick(stats.visited as u64, max_states as u64);
                            match visitor.visit(&m, id) {
                                Control::Continue => {
                                    injector.push(m);
                                }
                                Control::Prune => {
                                    pending.fetch_sub(1, Ordering::AcqRel);
                                }
                                Control::Stop => {
                                    visitor_stopped = true;
                                    stop.store(true, Ordering::Release);
                                    break 'coordinate;
                                }
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if pending.load(Ordering::Acquire) == 0 {
                            break;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            stop.store(true, Ordering::Release);
        });

        match failure.into_inner() {
            // Corruption is never masked by verdicts.
            Some(e @ EngineError::CorruptFrontier { .. }) => return Err(e),
            // A visitor Stop is a definitive verdict, so a budget trip an
            // in-flight worker recorded concurrently does not override
            // it. Whether the stop or the budget lands first in this
            // regime is search-order dependent even for the sequential
            // engines (DFS and BFS intern different state prefixes, and
            // the budget check precedes each visit); this engine resolves
            // the race deterministically in favour of the verdict — the
            // same precedence `TraceEngine::explore_sharded` gives a
            // stopped shard.
            Some(e) if !visitor_stopped => return Err(e),
            _ => {}
        }
        stats.transitions = transitions.load(Ordering::Relaxed);
        bdrst_obs::counter_add(
            bdrst_obs::Counter::ExploreNanos,
            started.elapsed().as_nanos() as u64,
        );
        span.set_arg(stats.visited as u64);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::{Loc, LocKind, Val};
    use crate::machine::{RecordedExpr, StepLabel};
    use std::collections::BTreeSet;

    fn locs_abf() -> (LocSet, Loc, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        let f = l.fresh("F", LocKind::Atomic);
        (l, a, b, f)
    }

    fn mp_machine(locs: &LocSet, a: Loc, f: Loc) -> Machine<RecordedExpr> {
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
        ]);
        let p1 = RecordedExpr::new(vec![StepLabel::Read(f), StepLabel::Read(a)]);
        Machine::initial(locs, [p0, p1])
    }

    fn outcome_set(
        engine: &dyn Explorer<RecordedExpr>,
        locs: &LocSet,
        m0: Machine<RecordedExpr>,
    ) -> BTreeSet<Vec<i64>> {
        let mut outcomes = BTreeSet::new();
        engine
            .explore(locs, m0, &mut |m: &Machine<RecordedExpr>, _id: StateId| {
                if m.is_terminal() {
                    outcomes.insert(
                        m.threads
                            .iter()
                            .flat_map(|t| t.expr.reads.iter().map(|v| v.0))
                            .collect(),
                    );
                }
                Control::Continue
            })
            .unwrap();
        outcomes
    }

    #[test]
    fn deques_lifo_owner_fifo_thief() {
        let d: StealDeques<u32> = StealDeques::new(2);
        d.push(0, 1);
        d.push(0, 2);
        d.push(0, 3);
        // Thief takes the oldest item, owner the newest.
        assert_eq!(d.steal(1), Some(1));
        assert_eq!(d.pop(0), Some(3));
        assert_eq!(d.take(1), Some(2)); // own deque empty → steal
        assert_eq!(d.take(0), None);
    }

    #[test]
    fn worksteal_matches_sequential_on_message_passing() {
        let (locs, a, _b, f) = locs_abf();
        let seq = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs);
        let ws = WorkStealingEngine::with_threads(EngineConfig::default(), 4);
        let s = outcome_set(&seq, &locs, mp_machine(&locs, a, f));
        let w = outcome_set(&ws, &locs, mp_machine(&locs, a, f));
        assert_eq!(s, w);
        assert!(!w.contains(&vec![1, 0]));
    }

    #[test]
    fn worksteal_single_thread_delegates() {
        let (locs, a, _b, f) = locs_abf();
        let ws1 = WorkStealingEngine::with_threads(EngineConfig::default(), 1);
        let ws4 = WorkStealingEngine::with_threads(EngineConfig::default(), 4);
        assert_eq!(
            outcome_set(&ws1, &locs, mp_machine(&locs, a, f)),
            outcome_set(&ws4, &locs, mp_machine(&locs, a, f))
        );
    }

    #[test]
    fn worksteal_budget_is_enforced() {
        let (locs, a, _, _) = locs_abf();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        let tiny = EngineConfig {
            max_states: 10,
            max_traces: 10,
        };
        let ws = WorkStealingEngine::with_threads(tiny, 4);
        let r = ws.explore(&locs, m0, &mut |_: &Machine<RecordedExpr>, _: StateId| {
            Control::Continue
        });
        assert!(matches!(r, Err(EngineError::BudgetExceeded { .. })));
    }

    #[test]
    fn worksteal_prune_and_stop() {
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 3]);
        let m0 = Machine::initial(&locs, [p0]);
        let ws = WorkStealingEngine::with_threads(EngineConfig::default(), 4);
        let mut seen = 0usize;
        ws.explore(
            &locs,
            m0.clone(),
            &mut |_: &Machine<RecordedExpr>, _: StateId| {
                seen += 1;
                Control::Prune
            },
        )
        .unwrap();
        assert_eq!(seen, 1); // initial state only: everything else pruned

        let mut stopped_after = 0usize;
        ws.explore(&locs, m0, &mut |_: &Machine<RecordedExpr>, _: StateId| {
            stopped_after += 1;
            Control::Stop
        })
        .unwrap();
        assert_eq!(stopped_after, 1);
    }

    #[test]
    fn worksteal_graph_matches_sequential_graph() {
        let (locs, a, _b, f) = locs_abf();
        let m0 = mp_machine(&locs, a, f);
        let (seq_graph, seq_stats) = WorklistEngine::new(EngineConfig::default(), SearchOrder::Dfs)
            .explore_graph(&locs, m0.clone())
            .unwrap();
        let ws = WorkStealingEngine::with_threads(EngineConfig::default(), 4);
        let (ws_graph, ws_stats) = ws.explore_graph(&locs, m0).unwrap();
        assert_eq!(seq_graph.len(), ws_graph.len());
        assert_eq!(seq_graph.edge_count(), ws_graph.edge_count());
        assert_eq!(seq_stats.visited, ws_stats.visited);
        assert_eq!(seq_stats.transitions, ws_stats.transitions);
        assert_eq!(
            seq_graph.terminal_ids().count(),
            ws_graph.terminal_ids().count()
        );
    }

    #[test]
    fn worksteal_graph_budget_is_enforced() {
        let (locs, a, _, _) = locs_abf();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        let tiny = EngineConfig {
            max_states: 10,
            max_traces: 10,
        };
        let ws = WorkStealingEngine::with_threads(tiny, 4);
        assert!(matches!(
            ws.explore_graph(&locs, m0),
            Err(EngineError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn engine_threads_resolution() {
        assert_eq!(engine_threads(3), 3);
        assert!(engine_threads(0) >= 1);
    }
}
