//! A Chase–Lev work-stealing deque: lock-free steals, allocation-free
//! owner operations, bounded `unsafe`.
//!
//! This is the deque of Chase & Lev, *Dynamic Circular Work-Stealing
//! Deque* (SPAA 2005), with the memory orderings of Lê, Pop, Cohen &
//! Zappa Nardelli, *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP 2013):
//!
//! * the **owner** pushes and pops at the *bottom* of a circular buffer
//!   with plain loads/stores (one `SeqCst` fence and, for the last
//!   element, one CAS);
//! * **thieves** take from the *top* with a CAS — no locks anywhere on
//!   the steal path, so a stalled thief never blocks the owner or other
//!   thieves;
//! * when the buffer fills, the owner grows it; *retired* buffers stay
//!   alive until the deque drops, because a concurrent thief may still be
//!   reading them (the classic leak-until-drop reclamation, bounded by
//!   log₂(peak size) buffers).
//!
//! One deviation from the textbook structure: the owner side is guarded
//! by an *owner latch* (a `Mutex<()>`). Chase–Lev is only correct when
//! push/pop are called from a single thread at a time, but
//! [`crate::engine::StealDeques`] exposes a safe `&self` API; the latch
//! turns the "single owner" protocol requirement into a runtime
//! guarantee instead of library-level UB. Used correctly (one owner
//! thread), the latch is never contended and costs one uncontended
//! lock/unlock per operation — the *steal* path, where the contention
//! actually lives, takes no lock at all.
//!
//! All `unsafe` in this workspace's deques is confined to this module;
//! the invariants are spelled out inline. The stress tests at the bottom
//! hammer the push/pop/steal races across threads and check element
//! conservation and drop-exactly-once.

use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicIsize, AtomicPtr, Ordering};
use std::sync::Mutex;

/// The outcome of one steal attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with another thief (or the owner taking the last
    /// element); retrying may succeed.
    Retry,
    /// Stole one element.
    Success(T),
}

/// A growable circular buffer of `MaybeUninit<T>` slots. Slots in
/// `top..bottom` are initialized; everything else is garbage. Raw reads
/// and writes go through indices that increase monotonically and are
/// masked into the array.
struct Buffer<T> {
    data: *mut MaybeUninit<T>,
    cap: usize,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let mut slots: Vec<MaybeUninit<T>> = Vec::with_capacity(cap);
        // SAFETY: MaybeUninit<T> is valid uninitialized; the length equals
        // the capacity just reserved.
        unsafe { slots.set_len(cap) };
        let data = Box::into_raw(slots.into_boxed_slice()) as *mut MaybeUninit<T>;
        Box::into_raw(Box::new(Buffer { data, cap }))
    }

    /// Frees the buffer *array* (not the elements — callers drain those
    /// first, or the bits are duplicates whose owners live elsewhere).
    ///
    /// # Safety
    ///
    /// `buf` must come from [`Buffer::alloc`] and not be freed twice.
    unsafe fn dealloc(buf: *mut Buffer<T>) {
        let b = Box::from_raw(buf);
        drop(Box::from_raw(ptr::slice_from_raw_parts_mut(b.data, b.cap)));
    }

    unsafe fn slot(&self, i: isize) -> *mut MaybeUninit<T> {
        self.data.add(i as usize & (self.cap - 1))
    }

    /// Copies the bits out of slot `i` without claiming ownership.
    ///
    /// # Safety
    ///
    /// Caller must only `assume_init` the result while it has exclusive
    /// logical ownership of index `i` (owner with `top < bottom`, or a
    /// thief whose CAS on `top` succeeded).
    unsafe fn read(&self, i: isize) -> MaybeUninit<T> {
        ptr::read(self.slot(i))
    }

    /// # Safety
    ///
    /// Caller must own index `i` (the owner writing at `bottom`).
    unsafe fn write(&self, i: isize, v: T) {
        ptr::write(self.slot(i), MaybeUninit::new(v));
    }
}

const MIN_CAP: usize = 16;

/// The Chase–Lev deque. See the module docs for the protocol; the public
/// surface is `push`/`pop` (owner end, latched) and `steal` (lock-free).
pub struct ChaseLev<T> {
    /// Next index the owner writes (grows without bound; masked into the
    /// buffer).
    bottom: AtomicIsize,
    /// Next index thieves claim.
    top: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Grown-out-of buffers, kept until drop (thieves may still read
    /// them).
    retired: Mutex<Vec<*mut Buffer<T>>>,
    /// Serializes owner operations so the safe API cannot express the
    /// multi-owner races Chase–Lev forbids. Uncontended in correct use.
    owner: Mutex<()>,
}

// SAFETY: elements move between threads (that is the point); all shared
// mutable state is behind atomics or the mutexes above.
unsafe impl<T: Send> Send for ChaseLev<T> {}
unsafe impl<T: Send> Sync for ChaseLev<T> {}

impl<T> Default for ChaseLev<T> {
    fn default() -> ChaseLev<T> {
        ChaseLev::new()
    }
}

impl<T> ChaseLev<T> {
    /// An empty deque.
    pub fn new() -> ChaseLev<T> {
        ChaseLev {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::alloc(MIN_CAP)),
            retired: Mutex::new(Vec::new()),
            owner: Mutex::new(()),
        }
    }

    /// A snapshot of the number of queued elements (exact when quiescent,
    /// a hint under concurrency).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// True if the deque appears empty (same caveat as [`ChaseLev::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Doubles the buffer, copying the live range `t..b`. Owner-only
    /// (holds the latch). The old buffer is retired, not freed: thieves
    /// that loaded it before the swap still read valid (unchanged)
    /// memory, and the live slots they may touch are never rewritten in
    /// the old array.
    fn grow(&self, old: *mut Buffer<T>, t: isize, b: isize) -> *mut Buffer<T> {
        // SAFETY: `old` is the current buffer (only the latched owner
        // replaces buffers); `t..b` are its initialized slots.
        unsafe {
            let new = Buffer::alloc(((*old).cap * 2).max(MIN_CAP));
            for i in t..b {
                ptr::write((*new).slot(i), (*old).read(i));
            }
            self.buffer.store(new, Ordering::Release);
            self.retired.lock().expect("retire list poisoned").push(old);
            new
        }
    }

    /// Pushes onto the owner end.
    pub fn push(&self, value: T) {
        let _latch = self.owner.lock().expect("owner latch poisoned");
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        // SAFETY: latched owner; cap is stable under us.
        if b - t >= unsafe { (*buf).cap } as isize {
            buf = self.grow(buf, t, b);
        }
        // SAFETY: index b is outside every thief's reach (they claim
        // below bottom) and inside the (possibly grown) capacity.
        unsafe { (*buf).write(b, value) };
        // Publish the element: thieves acquire `bottom`.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Pops from the owner end (LIFO).
    pub fn pop(&self) -> Option<T> {
        let _latch = self.owner.lock().expect("owner latch poisoned");
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            if t == b {
                // Last element: race the thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    // SAFETY: the CAS claimed index b == t exclusively;
                    // no thief reads a claimed index, and the owner
                    // cannot overwrite it before this read (we hold the
                    // latch).
                    Some(unsafe { (*buf).read(b).assume_init() })
                } else {
                    None
                }
            } else {
                // SAFETY: t < b, so index b is unreachable by thieves
                // (they claim top-side indices < b) and initialized.
                Some(unsafe { (*buf).read(b).assume_init() })
            }
        } else {
            // Empty: restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Attempts to steal from the top (FIFO side). Lock-free: never
    /// blocks on the owner latch.
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = self.buffer.load(Ordering::Acquire);
        // Copy the bits out *before* claiming: once the CAS lands another
        // party may reuse the slot. If the CAS fails the copy is
        // discarded un-assumed (MaybeUninit: no drop, no use), so a torn
        // copy from a racing overwrite is never observed — the standard
        // Chase–Lev read-validate-claim pattern.
        let value = unsafe { (*buf).read(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: the CAS claimed index t while it held an element:
            // the copy read above is that element, now exclusively ours.
            Steal::Success(unsafe { value.assume_init() })
        } else {
            Steal::Retry
        }
    }
}

impl<T> Drop for ChaseLev<T> {
    fn drop(&mut self) {
        // Exclusive access: drain remaining elements so their destructors
        // run, then free the current and retired buffers.
        while self.pop().is_some() {}
        // SAFETY: all buffers came from Buffer::alloc; nothing references
        // them after drop.
        unsafe {
            Buffer::dealloc(self.buffer.load(Ordering::Relaxed));
            for old in self
                .retired
                .get_mut()
                .expect("retire list poisoned")
                .drain(..)
            {
                Buffer::dealloc(old);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn lifo_owner_order() {
        let d = ChaseLev::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn fifo_thief_order() {
        let d = ChaseLev::new();
        for i in 0..5 {
            d.push(i);
        }
        assert!(matches!(d.steal(), Steal::Success(0)));
        assert!(matches!(d.steal(), Steal::Success(1)));
        assert_eq!(d.pop(), Some(4));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn growth_preserves_elements() {
        let d = ChaseLev::new();
        let n = 10_000; // forces many growths from MIN_CAP
        for i in 0..n {
            d.push(i);
        }
        let mut seen = Vec::new();
        while let Some(x) = d.pop() {
            seen.push(x);
        }
        seen.reverse();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_steals_conserve_elements() {
        const N: usize = 20_000;
        const THIEVES: usize = 4;
        let d = Arc::new(ChaseLev::new());
        let produced: BTreeSet<usize> = (0..N).collect();
        let done = Arc::new(AtomicIsize::new(0));

        let mut handles = Vec::new();
        for _ in 0..THIEVES {
            let d = Arc::clone(&d);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match d.steal() {
                        Steal::Success(x) => got.push(x),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) == 1 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                got
            }));
        }

        // Owner: interleave pushes with occasional pops.
        let mut owner_got = Vec::new();
        for i in 0..N {
            d.push(i);
            if i % 7 == 0 {
                if let Some(x) = d.pop() {
                    owner_got.push(x);
                }
            }
        }
        done.store(1, Ordering::Release);
        let mut all: Vec<usize> = owner_got;
        for h in handles {
            all.extend(h.join().unwrap());
        }
        // Whatever remains after the thieves bailed out:
        while let Some(x) = d.pop() {
            all.push(x);
        }
        assert_eq!(all.len(), N, "elements lost or duplicated");
        assert_eq!(all.into_iter().collect::<BTreeSet<_>>(), produced);
    }

    #[test]
    fn drops_run_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let d = ChaseLev::new();
            for _ in 0..100 {
                d.push(Token);
            }
            for _ in 0..40 {
                drop(d.pop());
            }
            for _ in 0..10 {
                if let Steal::Success(t) = d.steal() {
                    drop(t)
                }
            }
            // 50 tokens still queued: freed by ChaseLev::drop.
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn owner_races_last_element_with_thieves() {
        // Repeatedly race pop against steals over a single element; the
        // element must go to exactly one side every round.
        let d = Arc::new(ChaseLev::new());
        for round in 0..2_000usize {
            d.push(round);
            let stolen = {
                let d = Arc::clone(&d);
                std::thread::spawn(move || loop {
                    match d.steal() {
                        Steal::Success(x) => break Some(x),
                        Steal::Retry => continue,
                        Steal::Empty => break None,
                    }
                })
            };
            let popped = d.pop();
            let stolen = stolen.join().unwrap();
            assert!(
                popped.is_some() != stolen.is_some(),
                "round {round}: popped {popped:?}, stolen {stolen:?}"
            );
            assert_eq!(popped.or(stolen), Some(round));
        }
    }
}
