//! Dynamic partial-order reduction: source-DPOR backtracking with
//! per-node sleep sets over the trace tree.
//!
//! The full trace enumeration ([`crate::engine::TraceEngine`]) walks every
//! interleaving the budget allows, although most of them differ only in
//! the order of *independent* transitions — steps on different threads
//! that commute without changing any label or any reachable final state.
//! [`DporEngine`] explores one representative per Mazurkiewicz class
//! instead:
//!
//! * **Backtrack sets** (the source-DPOR half): each node starts with a
//!   single thread to explore. When an executed transition `e` is found
//!   dependent on an earlier cross-thread transition `d`, the thread of
//!   `e` is added to the backtrack set of the node `d` was executed from
//!   (or every thread enabled there, when `e`'s thread is not), so the
//!   reversal of the race is scheduled. Dependence is computed from
//!   [`TransitionLabel`] data alone: same thread, or same location with
//!   at least one write ([`dependent`]).
//! * **Sleep sets**: a thread fully explored at a node is put to sleep
//!   for its siblings and stays asleep down the sibling subtrees while
//!   every transition it could take commutes with what executes; a node
//!   whose every enabled thread sleeps is a pruned leaf — every maximal
//!   trace through it is equivalent to one already explored.
//!
//! Within a chosen thread, *data* nondeterminism (one read, many readable
//! history entries) is never pruned: all of the thread's transitions are
//! explored, exactly like the full walk.
//!
//! # Dependence modes
//!
//! [`Dependence::Conservative`] treats every same-location pair with at
//! least one write as dependent. Commuting transitions that are
//! independent in this sense permutes a trace without changing any label
//! (weak flags included), its happens-before relation, or its data races,
//! so *label-predicate* checkers — the SC/race/local-DRF family in
//! [`crate::localdrf`] and the race detector — keep their verdicts under
//! this mode. The `*_reduced` checker variants use it.
//!
//! [`Dependence::Observational`] additionally treats a nonatomic read and
//! a nonatomic write to the same location as independent when the read
//! does not observe that exact write (their history timestamps differ):
//! the read commutes with the write (histories only grow, and an occupied
//! timestamp is never a write gap), reaching the same final state. This
//! prunes coherence-shaped programs (`CoRR`) that the conservative mode
//! cannot, but reordering can flip a *weak* flag (reading the latest
//! value before, rather than after, a newer write arrives), so this mode
//! is only sound for properties of final states — outcome enumeration
//! and trace counting. It is the [`crate::engine::Strategy::Dpor`]
//! outcome lane.
//!
//! # What the visitor sees
//!
//! [`DporEngine::explore`] drives an ordinary [`TraceVisitor`]: one
//! `visit` per executed extension, depth-first, with the same budget
//! discipline as the full walk (`max_traces` executed extensions, then
//! [`EngineError::BudgetExceeded`]). The visitor only sees the explored
//! subset of prefixes, so it must check a property that is invariant
//! across the equivalence classes of the chosen [`Dependence`] mode.
//! `step_filter` is honoured, but it must be label-determined (as every
//! filter in this repository is): transitions are filtered once per
//! node, not once per visit position.
//!
//! # Example
//!
//! ```
//! use bdrst_core::engine::dpor::{full_complete_traces, DporEngine};
//! use bdrst_core::engine::{Control, EngineConfig, TraceVisitor};
//! use bdrst_core::loc::{LocKind, LocSet, Val};
//! use bdrst_core::machine::{Machine, RecordedExpr, StepLabel, Transition};
//! use bdrst_core::trace::TraceLabels;
//!
//! let mut locs = LocSet::new();
//! let a = locs.fresh("a", LocKind::Nonatomic);
//! let b = locs.fresh("b", LocKind::Nonatomic);
//! // Two independent writes: both interleavings reach the same state.
//! let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
//! let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1))]);
//! let m0 = Machine::initial(&locs, [p0, p1]);
//!
//! struct Go;
//! impl TraceVisitor<RecordedExpr> for Go {
//!     fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
//!         Control::Continue
//!     }
//! }
//! let stats = DporEngine::new(EngineConfig::default())
//!     .explore(&locs, m0.clone(), &mut Go)?;
//! let full = full_complete_traces(&locs, m0, EngineConfig::default())?;
//! assert_eq!(stats.complete_traces, 1); // one representative
//! assert_eq!(full, 2); // of two equivalent interleavings
//! # Ok::<(), bdrst_core::engine::EngineError>(())
//! ```

use std::collections::BTreeSet;

use crate::engine::{
    intern_canonical, CanonState, Control, EngineConfig, EngineError, StateInterner, TraceVisitor,
};
use crate::loc::LocSet;
use crate::machine::{Expr, Machine, ThreadId, Transition, TransitionLabel};
use crate::trace::TraceLabels;

/// Which pairs of transitions the reduction treats as dependent (may not
/// commute). See the module docs for the soundness contract of each mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dependence {
    /// Same location with at least one write. Preserves every label along
    /// a trace (weak flags included), happens-before, and data races —
    /// sound for the trace-predicate checkers.
    Conservative,
    /// As `Conservative`, but a nonatomic read and write to the same
    /// location are independent when the read observes a *different*
    /// timestamp. Preserves reachable final states only — sound for
    /// outcome enumeration and trace counting, not for weak-flag
    /// predicates.
    Observational,
}

/// The conservative dependence relation on transition labels: same
/// thread, or accesses to the same location with at least one write
/// (atomic locations included — an atomic write changes the published
/// frontier, so it commutes with neither reads nor writes of that
/// location). Silent transitions are independent of everything
/// cross-thread; so are two reads of the same location.
pub fn dependent(l1: &TransitionLabel, l2: &TransitionLabel) -> bool {
    if l1.thread == l2.thread {
        return true;
    }
    match (l1.action, l2.action) {
        (Some(a1), Some(a2)) => a1.loc == a2.loc && (a1.action.is_write() || a2.action.is_write()),
        _ => false,
    }
}

/// [`dependent`] refined by the chosen mode: under
/// [`Dependence::Observational`], a nonatomic read/write pair on the same
/// location is independent when the read observes a different timestamp
/// than the write creates (both carry their history timestamp in the
/// label; atomic operations carry none and stay dependent). This is the
/// *commutation* relation — two adjacent executed transitions may be
/// swapped without changing either label or the final state — used for
/// the happens-after chains of the backtrack computation.
fn mode_dependent(mode: Dependence, l1: &TransitionLabel, l2: &TransitionLabel) -> bool {
    if !dependent(l1, l2) {
        return false;
    }
    if l1.thread == l2.thread || mode == Dependence::Conservative {
        return true;
    }
    match (l1.action, l2.action) {
        (Some(a1), Some(a2)) if a1.action.is_write() != a2.action.is_write() => {
            match (l1.timestamp, l2.timestamp) {
                (Some(t1), Some(t2)) => t1 == t2,
                _ => true,
            }
        }
        _ => true,
    }
}

/// Whether the ordered pair `d` (earlier) / `e` (later) is a race whose
/// reversal must be scheduled. This is *asymmetric*: commutation of
/// executed events is not the whole story, because a write also creates
/// branches.
///
/// * write/write (or any atomic pair with a write): a race — order
///   changes the final state (or the acquired frontier).
/// * earlier read, later write: always a race. The write adds a readable
///   history entry, so the read executed *after* the write has branches
///   the read-first subtree can never produce.
/// * earlier nonatomic write, later nonatomic read: under
///   [`Dependence::Observational`], never a race. Every entry the read
///   could observe before the write exists after it too, so each
///   read-first trace commutes (timestamps necessarily differ) into a
///   write-first one the explored subtree already covers. Conservative
///   mode keeps the pair racing.
fn is_race(mode: Dependence, d: &TransitionLabel, e: &TransitionLabel) -> bool {
    if d.thread == e.thread {
        return false;
    }
    let (Some(ad), Some(ae)) = (d.action, e.action) else {
        return false;
    };
    if ad.loc != ae.loc {
        return false;
    }
    match (ad.action.is_write(), ae.action.is_write()) {
        (false, false) => false,
        (true, true) | (false, true) => true,
        (true, false) => {
            mode == Dependence::Conservative || d.timestamp.is_none() || e.timestamp.is_none()
        }
    }
}

/// Whether a sleeping thread's potential transition `branch` stays asleep
/// across the executed cross-thread transition `e`.
///
/// Sleeping is kept exactly when `branch`'s set of transitions is
/// unchanged by `e` and each commutes with it:
///
/// * different locations, silent steps, and read/read pairs always keep
///   sleeping;
/// * a sleeping *reader* wakes on any same-location write — the write
///   adds a readable history entry, so the reader gains a branch that was
///   never explored;
/// * a sleeping *writer* over a same-location nonatomic read keeps
///   sleeping under [`Dependence::Observational`]: reads leave the
///   history (and hence the writer's gap set) untouched, and an occupied
///   read timestamp can never equal a write gap, so the pending writes
///   commute with the read. Conservative mode wakes (the pair is
///   dependent there);
/// * write/write pairs and atomic same-location pairs with a write wake.
fn keeps_sleeping(mode: Dependence, branch: &TransitionLabel, e: &TransitionLabel) -> bool {
    let (Some(b), Some(a)) = (branch.action, e.action) else {
        return true; // a silent step on either side commutes with anything
    };
    if b.loc != a.loc {
        return true;
    }
    match (b.action.is_write(), a.action.is_write()) {
        (false, false) => true,
        // The executed write adds a readable entry: new branch, wake.
        (false, true) => false,
        // Pending writes commute with a nonatomic read (which carries a
        // timestamp); atomic reads (no timestamp) merge the location's
        // frontier and stay dependent.
        (true, false) => mode == Dependence::Observational && e.timestamp.is_some(),
        (true, true) => false,
    }
}

/// Statistics of a finished reduced exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DporStats {
    /// Trace extensions executed (the analogue of
    /// [`crate::engine::ExploreStats::visited`] in trace mode).
    pub visited: usize,
    /// Transitions enumerated at nodes (before sleep pruning decides
    /// whether their thread runs).
    pub transitions: usize,
    /// Complete (maximal) traces reached — extensions whose target is
    /// terminal. The pruning ratio is this against
    /// [`full_complete_traces`].
    pub complete_traces: usize,
    /// Prefixes abandoned because every enabled thread was asleep: each
    /// is a subtree whose maximal traces were all equivalent to explored
    /// ones.
    pub sleep_blocked: usize,
}

/// One thread's enabled transitions at a node. Labels are snapshotted so
/// sleep retention can consult them after the transitions are consumed.
struct Group<E> {
    thread: ThreadId,
    labels: Vec<TransitionLabel>,
    transitions: Vec<Option<Transition<E>>>,
}

/// One suspended node of the reduced walk.
struct Node<E> {
    groups: Vec<Group<E>>,
    /// Threads scheduled for exploration at this node.
    backtrack: BTreeSet<ThreadId>,
    /// Threads fully explored at this node.
    done: BTreeSet<ThreadId>,
    /// Threads whose exploration here would only reproduce an explored
    /// equivalence class. Grows as siblings finish.
    sleep: BTreeSet<ThreadId>,
    /// `(group, next branch)` of the thread currently being explored.
    current: Option<(usize, usize)>,
}

/// The reduced depth-first trace enumerator. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct DporEngine {
    /// Budgets (`max_traces` bounds executed extensions, as in the full
    /// walk).
    pub config: EngineConfig,
    /// The dependence relation driving backtracking and sleep retention.
    pub dependence: Dependence,
}

impl DporEngine {
    /// The outcome-lane engine: observational dependence.
    pub fn new(config: EngineConfig) -> DporEngine {
        DporEngine {
            config,
            dependence: Dependence::Observational,
        }
    }

    /// An engine with an explicit [`Dependence`] mode (the `*_reduced`
    /// checkers use [`Dependence::Conservative`]).
    pub fn with_dependence(config: EngineConfig, dependence: Dependence) -> DporEngine {
        DporEngine { config, dependence }
    }

    /// Builds the node for `m`, inheriting `sleep` from the incoming edge.
    ///
    /// Every enabled successor is materialised up front and parked in its
    /// group until the schedule (or a backtrack) reaches it — cheap
    /// because sibling targets structurally share the parent's store:
    /// each is at most one O(log n) path copy into the persistent radix
    /// map ([`crate::pmap`]), every off-path subtree pointer-identical
    /// across the whole frontier, however long the sleep sets keep it
    /// parked.
    fn node<E: Expr>(
        locs: &LocSet,
        m: &Machine<E>,
        sleep: BTreeSet<ThreadId>,
        visitor: &mut dyn TraceVisitor<E>,
        stats: &mut DporStats,
    ) -> Node<E> {
        let mut groups: Vec<Group<E>> = Vec::new();
        for t in m.transitions(locs) {
            stats.transitions += 1;
            bdrst_obs::counter_add(bdrst_obs::Counter::DporBranches, 1);
            if !visitor.step_filter(&t) {
                continue;
            }
            if groups.last().is_none_or(|g| g.thread != t.label.thread) {
                groups.push(Group {
                    thread: t.label.thread,
                    labels: Vec::new(),
                    transitions: Vec::new(),
                });
            }
            let g = groups.last_mut().expect("group just ensured");
            g.labels.push(t.label);
            g.transitions.push(Some(t));
        }
        let mut backtrack = BTreeSet::new();
        if let Some(g) = groups.iter().find(|g| !sleep.contains(&g.thread)) {
            backtrack.insert(g.thread);
        } else if !groups.is_empty() {
            stats.sleep_blocked += 1;
            bdrst_obs::counter_add(bdrst_obs::Counter::DporSleepBlocked, 1);
        }
        Node {
            groups,
            backtrack,
            done: BTreeSet::new(),
            sleep,
            current: None,
        }
    }

    /// Walks a reduced set of traces from `m0` in depth-first order,
    /// driving `visitor` through one representative per equivalence class
    /// of maximal traces (plus the sleep-blocked prefixes the sleep sets
    /// abandon early).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BudgetExceeded`] after `config.max_traces`
    /// executed extensions, with the same reported count as the full
    /// walk.
    pub fn explore<E: Expr>(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        visitor: &mut dyn TraceVisitor<E>,
    ) -> Result<DporStats, EngineError> {
        let mut span = bdrst_obs::span(bdrst_obs::Phase::Explore);
        let started = std::time::Instant::now();
        let result = self.explore_inner(locs, m0, visitor);
        bdrst_obs::counter_add(
            bdrst_obs::Counter::ExploreNanos,
            started.elapsed().as_nanos() as u64,
        );
        if let Ok(stats) = &result {
            span.set_arg(stats.visited as u64);
        }
        result
    }

    fn explore_inner<E: Expr>(
        &self,
        locs: &LocSet,
        m0: Machine<E>,
        visitor: &mut dyn TraceVisitor<E>,
    ) -> Result<DporStats, EngineError> {
        let mut stats = DporStats::default();
        let mut budget = self.config.max_traces;
        let mut trace = TraceLabels::new();
        let mut stack = vec![Self::node(locs, &m0, BTreeSet::new(), visitor, &mut stats)];
        loop {
            let depth = stack.len() - 1;
            let top = stack.last_mut().expect("loop keeps the stack non-empty");
            let Some((gi, bi)) = top.current else {
                // Pick the next scheduled thread; none left means the
                // node is exhausted (or sleep-blocked).
                let pick = top.groups.iter().position(|g| {
                    top.backtrack.contains(&g.thread)
                        && !top.done.contains(&g.thread)
                        && !top.sleep.contains(&g.thread)
                });
                match pick {
                    Some(gi) => top.current = Some((gi, 0)),
                    None => {
                        stack.pop();
                        if stack.is_empty() {
                            return Ok(stats);
                        }
                        trace.pop();
                    }
                }
                continue;
            };
            if bi >= top.groups[gi].transitions.len() {
                // Every branch (and its subtree) of this thread explored:
                // siblings may let it sleep.
                let finished = top.groups[gi].thread;
                top.done.insert(finished);
                top.sleep.insert(finished);
                top.current = None;
                continue;
            }
            top.current = Some((gi, bi + 1));
            let t = top.groups[gi].transitions[bi]
                .take()
                .expect("transition consumed once");
            if budget == 0 {
                return Err(EngineError::budget(self.config.max_traces + 1));
            }
            budget -= 1;
            stats.visited += 1;
            bdrst_obs::counter_add(bdrst_obs::Counter::StatesVisited, 1);
            bdrst_obs::progress_tick(stats.visited as u64, self.config.max_traces as u64);
            let e = t.label;
            // Source-DPOR backtracking: for every *direct* race `d ⋖ e`
            // (cross-thread, dependent, with no intermediate
            // happens-after chain joining them), schedule a thread that
            // can begin the reversing sequence `notdep(d)·e` at the node
            // `d` was executed from. Just `e`'s thread is not enough:
            // when `e` happens-after an intermediate event of another
            // thread, only that thread's event — a happens-before-minimal
            // ("initial") event of the sequence — reproduces the race
            // from `pre(d)`.
            let bt_span = bdrst_obs::span(bdrst_obs::Phase::DporBacktrack);
            let mut backtrack_added: u64 = 0;
            for j in (0..depth).rev() {
                let d = trace.labels()[j];
                if !is_race(self.dependence, &d, &e) {
                    continue;
                }
                // Events of the window strictly between `d` and `e` that
                // happen-after `d` (dependence-path-connected to it).
                let window = &trace.labels()[j + 1..depth];
                let mut after = vec![false; window.len()];
                for (i, w) in window.iter().enumerate() {
                    after[i] = mode_dependent(self.dependence, &d, w)
                        || window[..i]
                            .iter()
                            .enumerate()
                            .any(|(m, u)| after[m] && mode_dependent(self.dependence, u, w));
                }
                // A derived race — `e` already happens-after `d` through
                // an intermediate — reverses through its constituent
                // direct races instead.
                if window
                    .iter()
                    .enumerate()
                    .any(|(i, w)| after[i] && mode_dependent(self.dependence, w, &e))
                {
                    continue;
                }
                // Initials of `notdep(d)·e`: threads whose first event of
                // the sequence depends on nothing earlier in it.
                let mut initials: BTreeSet<ThreadId> = BTreeSet::new();
                let notdep = || window.iter().enumerate().filter(|(i, _)| !after[*i]);
                for (i, w) in notdep() {
                    if notdep()
                        .take_while(|(m, _)| *m < i)
                        .all(|(_, u)| !mode_dependent(self.dependence, u, w))
                    {
                        initials.insert(w.thread);
                    }
                }
                if notdep().all(|(_, u)| !mode_dependent(self.dependence, u, &e)) {
                    initials.insert(e.thread);
                }
                let pre = &mut stack[j];
                if initials.iter().any(|q| pre.backtrack.contains(q)) {
                    continue; // some initial is already scheduled
                }
                let enabled_initials: Vec<ThreadId> = pre
                    .groups
                    .iter()
                    .map(|g| g.thread)
                    .filter(|q| initials.contains(q))
                    .collect();
                let before = pre.backtrack.len();
                if enabled_initials.is_empty() {
                    // No initial runnable at `pre(d)` (filtered away):
                    // fall back to scheduling everything enabled.
                    let all: Vec<ThreadId> = pre.groups.iter().map(|g| g.thread).collect();
                    pre.backtrack.extend(all);
                } else {
                    pre.backtrack.extend(enabled_initials);
                }
                backtrack_added += (pre.backtrack.len() - before) as u64;
            }
            bdrst_obs::counter_add(bdrst_obs::Counter::DporBacktrackPoints, backtrack_added);
            drop(bt_span);
            if t.target.is_terminal() {
                stats.complete_traces += 1;
            }
            trace.push(e);
            match visitor.visit(&trace, &t) {
                Control::Stop => return Ok(stats),
                Control::Prune => {
                    trace.pop();
                }
                Control::Continue => {
                    let parent = stack.last().expect("top still on the stack");
                    let child_sleep: BTreeSet<ThreadId> = parent
                        .sleep
                        .iter()
                        .copied()
                        .filter(|q| {
                            parent
                                .groups
                                .iter()
                                .find(|g| g.thread == *q)
                                .is_none_or(|g| {
                                    g.labels
                                        .iter()
                                        .all(|b| keeps_sleeping(self.dependence, b, &e))
                                })
                        })
                        .collect();
                    let child = Self::node(locs, &t.target, child_sleep, visitor, &mut stats);
                    stack.push(child);
                }
            }
        }
    }
}

/// Counts the complete (maximal) traces of the *full* enumeration from
/// `m0` — the unreduced reference for pruning ratios.
///
/// # Errors
///
/// As [`crate::engine::TraceEngine::explore`].
pub fn full_complete_traces<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
) -> Result<usize, EngineError> {
    struct Count(usize);
    impl<E: Expr> TraceVisitor<E> for Count {
        fn visit(&mut self, _: &TraceLabels, t: &Transition<E>) -> Control {
            if t.target.is_terminal() {
                self.0 += 1;
            }
            Control::Continue
        }
    }
    let mut v = Count(0);
    crate::engine::TraceEngine::new(config).explore(locs, m0, &mut v)?;
    Ok(v.0)
}

/// Terminal machines reachable from `m0` under the reduced exploration,
/// deduplicated canonically — the [`crate::engine::Strategy::Dpor`]
/// outcome lane. Returns the reduction statistics alongside.
///
/// # Errors
///
/// As [`DporEngine::explore`], plus [`EngineError::CorruptFrontier`] if a
/// terminal fails to canonicalize.
pub fn dpor_reachable_terminals<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
    dependence: Dependence,
) -> Result<(Vec<Machine<E>>, DporStats), EngineError> {
    struct Collect<'a, E: Expr> {
        locs: &'a LocSet,
        interner: StateInterner<CanonState<E>>,
        terminals: Vec<Machine<E>>,
        error: Option<EngineError>,
    }
    impl<E: Expr> TraceVisitor<E> for Collect<'_, E> {
        fn visit(&mut self, _: &TraceLabels, t: &Transition<E>) -> Control {
            if !t.target.is_terminal() {
                return Control::Continue;
            }
            match intern_canonical(&mut self.interner, self.locs, &t.target) {
                Ok((_, true)) => self.terminals.push(t.target.clone()),
                Ok((_, false)) => {}
                Err(e) => {
                    self.error = Some(e);
                    return Control::Stop;
                }
            }
            Control::Continue
        }
    }
    let mut collect = Collect {
        locs,
        interner: StateInterner::new(),
        terminals: Vec::new(),
        error: None,
    };
    let initially_terminal = m0.is_terminal();
    let stats =
        DporEngine::with_dependence(config, dependence).explore(locs, m0.clone(), &mut collect)?;
    if let Some(e) = collect.error {
        return Err(e);
    }
    let mut terminals = collect.terminals;
    if initially_terminal {
        terminals.push(m0);
    }
    Ok((terminals, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{
        EngineConfig as ExploreConfig, Explorer, SearchOrder, StateId, WorklistEngine,
    };
    use crate::loc::{Loc, LocKind, Val};
    use crate::machine::{RecordedExpr, StepLabel};
    use std::collections::BTreeSet;

    struct Go;
    impl TraceVisitor<RecordedExpr> for Go {
        fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
            Control::Continue
        }
    }

    fn locs_ab() -> (LocSet, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        (l, a, b)
    }

    /// Terminal read observations of the full state-space exploration.
    fn full_outcomes(locs: &LocSet, m0: Machine<RecordedExpr>) -> BTreeSet<Vec<i64>> {
        let mut out = BTreeSet::new();
        WorklistEngine::new(ExploreConfig::default(), SearchOrder::Dfs)
            .explore(locs, m0, &mut |m: &Machine<RecordedExpr>, _: StateId| {
                if m.is_terminal() {
                    out.insert(reads(m));
                }
                Control::Continue
            })
            .unwrap();
        out
    }

    fn reads(m: &Machine<RecordedExpr>) -> Vec<i64> {
        m.threads
            .iter()
            .flat_map(|t| t.expr.reads.iter().map(|v| v.0))
            .collect()
    }

    fn dpor_outcomes(
        locs: &LocSet,
        m0: Machine<RecordedExpr>,
        dependence: Dependence,
    ) -> (BTreeSet<Vec<i64>>, DporStats) {
        let (terms, stats) =
            dpor_reachable_terminals(locs, m0, ExploreConfig::default(), dependence).unwrap();
        (terms.iter().map(reads).collect(), stats)
    }

    #[test]
    fn dependence_relation_on_labels() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let m0 = Machine::initial(
            &locs,
            [
                RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]),
                RecordedExpr::new(vec![StepLabel::Read(a)]),
                RecordedExpr::new(vec![StepLabel::Read(f)]),
                RecordedExpr::new(vec![StepLabel::Silent]),
            ],
        );
        let ts = m0.transitions(&locs);
        let label = |tid: u32| {
            ts.iter()
                .find(|t| t.label.thread == ThreadId(tid))
                .unwrap()
                .label
        };
        let (w, r, rf, s) = (label(0), label(1), label(2), label(3));
        assert!(dependent(&w, &r), "same-loc write/read");
        assert!(dependent(&w, &w), "same thread");
        assert!(!dependent(&w, &rf), "different locations");
        assert!(!dependent(&r, &rf), "reads of different locations");
        assert!(!dependent(&s, &w), "silent commutes with everything");
        assert!(!dependent(&rf, &rf.clone()) || rf.thread == rf.thread);
    }

    #[test]
    fn independent_writes_explore_one_representative() {
        let (locs, a, b) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let full = full_complete_traces(&locs, m0.clone(), ExploreConfig::default()).unwrap();
        assert_eq!(full, 2);
        for dep in [Dependence::Conservative, Dependence::Observational] {
            let mut go = Go;
            let stats = DporEngine::with_dependence(ExploreConfig::default(), dep)
                .explore(&locs, m0.clone(), &mut go)
                .unwrap();
            // One thread never even gets scheduled: no race, no
            // backtrack point, no second interleaving.
            assert_eq!(stats.complete_traces, 1, "{dep:?}");
            assert_eq!(stats.visited, 2, "{dep:?}");
        }
    }

    #[test]
    fn store_buffering_prunes_and_preserves_outcomes() {
        let (locs, a, b) = locs_ab();
        let mk = || {
            let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
            let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
            Machine::initial(&locs, [p0, p1])
        };
        let full_traces = full_complete_traces(&locs, mk(), ExploreConfig::default()).unwrap();
        let reference = full_outcomes(&locs, mk());
        assert_eq!(reference.len(), 4); // SB is racy: all four outcomes
        for dep in [Dependence::Conservative, Dependence::Observational] {
            let (outcomes, stats) = dpor_outcomes(&locs, mk(), dep);
            assert_eq!(outcomes, reference, "{dep:?}");
            assert!(
                stats.complete_traces < full_traces,
                "{dep:?}: {} !< {full_traces}",
                stats.complete_traces
            );
        }
    }

    /// CoRR — one writer, one double reader, a single location — is the
    /// program only the observational mode can prune: every cross-thread
    /// pair shares the location, but a read observing timestamp 0 commutes
    /// with the pending write.
    #[test]
    fn corr_prunes_only_under_observational_dependence() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let mk = || {
            let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
            let p1 = RecordedExpr::new(vec![StepLabel::Read(a), StepLabel::Read(a)]);
            Machine::initial(&locs, [p0, p1])
        };
        let full_traces = full_complete_traces(&locs, mk(), ExploreConfig::default()).unwrap();
        assert_eq!(full_traces, 7); // 4 (write first) + 2 + 1
        let reference = full_outcomes(&locs, mk());

        let (obs_outcomes, obs) = dpor_outcomes(&locs, mk(), Dependence::Observational);
        assert_eq!(obs_outcomes, reference);
        assert_eq!(obs.complete_traces, 4, "only write-first orders remain");
        // The write-first subtree alone: its write, then 2 × 2 read
        // branches — the read-first orders are never even scheduled (a
        // pending write over an already-readable entry is no race).
        assert_eq!(obs.visited, 7);

        // The conservative mode keeps the read/write pairs dependent and
        // explores the full seven.
        let (con_outcomes, con) = dpor_outcomes(&locs, mk(), Dependence::Conservative);
        assert_eq!(con_outcomes, reference);
        assert_eq!(con.complete_traces, full_traces);
    }

    #[test]
    fn atomic_reads_commute() {
        let mut locs = LocSet::new();
        let f = locs.fresh("F", LocKind::Atomic);
        let p0 = RecordedExpr::new(vec![StepLabel::Read(f)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Read(f)]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let full = full_complete_traces(&locs, m0.clone(), ExploreConfig::default()).unwrap();
        assert_eq!(full, 2);
        let mut go = Go;
        let stats = DporEngine::new(ExploreConfig::default())
            .explore(&locs, m0, &mut go)
            .unwrap();
        assert_eq!(stats.complete_traces, 1);
    }

    #[test]
    fn budget_trips_mid_backtrack() {
        // Establish the reduced walk's exact extension count, then rerun
        // with one less: the walk must die with the same budget error the
        // full engine reports, partway through its backtracking.
        let (locs, a, b) = locs_ab();
        let mk = || {
            let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
            let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
            Machine::initial(&locs, [p0, p1])
        };
        let mut go = Go;
        let stats = DporEngine::new(ExploreConfig::default())
            .explore(&locs, mk(), &mut go)
            .unwrap();
        assert!(stats.visited > 2);
        let tight = EngineConfig {
            max_states: usize::MAX,
            max_traces: stats.visited - 1,
        };
        let mut go = Go;
        let r = DporEngine::new(tight).explore(&locs, mk(), &mut go);
        assert_eq!(r.unwrap_err(), EngineError::budget(stats.visited));

        // An exact budget succeeds.
        let exact = EngineConfig {
            max_states: usize::MAX,
            max_traces: stats.visited,
        };
        let mut go = Go;
        assert!(DporEngine::new(exact).explore(&locs, mk(), &mut go).is_ok());
    }

    #[test]
    fn stop_aborts_immediately() {
        let (locs, a, b) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 3]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)); 3]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        struct StopNow(usize);
        impl TraceVisitor<RecordedExpr> for StopNow {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                self.0 += 1;
                Control::Stop
            }
        }
        let mut v = StopNow(0);
        DporEngine::new(ExploreConfig::default())
            .explore(&locs, m0, &mut v)
            .unwrap();
        assert_eq!(v.0, 1);
    }

    #[test]
    fn step_filter_is_honoured() {
        // Filter out thread 1 entirely: the walk degenerates to thread
        // 0's three writes, one maximal trace.
        let (locs, a, b) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 3]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)); 3]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        struct OnlyThreadZero(usize);
        impl TraceVisitor<RecordedExpr> for OnlyThreadZero {
            fn step_filter(&mut self, t: &Transition<RecordedExpr>) -> bool {
                t.label.thread == ThreadId(0)
            }
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                self.0 += 1;
                Control::Continue
            }
        }
        let mut v = OnlyThreadZero(0);
        let stats = DporEngine::new(ExploreConfig::default())
            .explore(&locs, m0, &mut v)
            .unwrap();
        assert_eq!(v.0, 3);
        assert_eq!(stats.visited, 3);
        // Thread 1 never runs, so no "complete" (terminal) trace exists.
        assert_eq!(stats.complete_traces, 0);
    }

    #[test]
    fn prune_abandons_the_subtree() {
        let (locs, a, b) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 2]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)); 2]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        struct PruneAll(usize);
        impl TraceVisitor<RecordedExpr> for PruneAll {
            fn visit(&mut self, _: &TraceLabels, _: &Transition<RecordedExpr>) -> Control {
                self.0 += 1;
                Control::Prune
            }
        }
        let mut v = PruneAll(0);
        DporEngine::new(ExploreConfig::default())
            .explore(&locs, m0, &mut v)
            .unwrap();
        // Only the root's scheduled thread runs: one extension, pruned.
        assert_eq!(v.0, 1);
    }

    #[test]
    fn terminal_initial_machine_yields_itself() {
        let (locs, _, _) = locs_ab();
        let m0: Machine<RecordedExpr> = Machine::initial(&locs, []);
        let (terms, stats) = dpor_reachable_terminals(
            &locs,
            m0,
            ExploreConfig::default(),
            Dependence::Observational,
        )
        .unwrap();
        assert_eq!(terms.len(), 1);
        assert_eq!(stats.visited, 0);
    }
}
