//! # bdrst-core — the local-DRF operational memory model
//!
//! An executable implementation of the operational semantics of
//! *Bounding Data Races in Space and Time* (Dolan, Sivaramakrishnan,
//! Madhavapeddy; PLDI 2018), the memory model adopted by multicore OCaml.
//!
//! Memory maps nonatomic locations to timestamped *histories* and atomic
//! locations to *(frontier, value)* pairs; each thread carries a *frontier*
//! recording the latest write it is guaranteed to see per location
//! ([`store`], [`history`], [`frontier`]). The four memory-operation rules
//! live in [`memop`]; machines and traces in [`machine`] and [`trace`];
//! and the paper's headline guarantees — the local DRF theorem
//! (Theorem 13) and the derived global DRF theorem (Theorem 14) — as
//! executable checkers in [`localdrf`].
//!
//! Everything above is *checked by exhaustive exploration*, and that
//! exploration is provided by the pluggable [`engine`] layer: an iterative
//! worklist with DFS/BFS selection, canonical states interned to dense
//! `u32` ids ([`engine::StateInterner`]), a parallel frontier-expansion
//! engine ([`engine::ParallelEngine`]) that is outcome-equivalent to the
//! sequential one, and an iterative trace enumerator
//! ([`engine::TraceEngine`]) for the trace-dependent checkers. The
//! historical helpers ([`explore::reachable_terminals`],
//! [`explore::for_each_trace`]) remain as thin wrappers.
//!
//! ## Quick example: message passing
//!
//! ```
//! use bdrst_core::loc::{LocSet, LocKind, Val};
//! use bdrst_core::machine::{Machine, RecordedExpr, StepLabel};
//! use bdrst_core::explore::{reachable_terminals, ExploreConfig};
//!
//! let mut locs = LocSet::new();
//! let data = locs.fresh("data", LocKind::Nonatomic);
//! let flag = locs.fresh("flag", LocKind::Atomic);
//!
//! // P0: data = 1; flag = 1      P1: r0 = flag; r1 = data
//! let p0 = RecordedExpr::new(vec![
//!     StepLabel::Write(data, Val(1)),
//!     StepLabel::Write(flag, Val(1)),
//! ]);
//! let p1 = RecordedExpr::new(vec![StepLabel::Read(flag), StepLabel::Read(data)]);
//!
//! let m0 = Machine::initial(&locs, [p0, p1]);
//! let finals = reachable_terminals(&locs, m0, ExploreConfig::default())?;
//! // flag = 1 implies data = 1: the relaxed outcome (1, 0) never appears.
//! assert!(finals.iter().all(|m| {
//!     let r = &m.threads[1].expr.reads;
//!     !(r[0] == Val(1) && r[1] == Val(0))
//! }));
//! # Ok::<(), bdrst_core::engine::EngineError>(())
//! ```

pub mod engine;
pub mod explore;
pub mod frontier;
pub mod history;
pub mod loc;
pub mod localdrf;
pub mod machine;
pub mod memop;
pub mod pmap;
pub mod relation;
pub mod store;
pub mod timestamp;
pub mod trace;
pub mod wire;

pub use engine::{
    Control, EngineConfig, EngineError, Explorer, ParallelEngine, SearchOrder, StateId,
    StateVisitor, Strategy, TraceEngine, TraceVisitor, WorkStealingEngine, WorklistEngine,
};
pub use explore::{ExploreConfig, ExploreStats};
pub use frontier::Frontier;
pub use history::History;
pub use loc::{Action, LabeledAction, Loc, LocKind, LocSet, Val};
pub use machine::{
    semantics_probes, Expr, Machine, StepLabel, Steps, ThreadId, ThreadState, Transition,
    TransitionLabel,
};
pub use pmap::{ContentDigest, PMap};
pub use store::{LocContents, Store};
pub use timestamp::{Ratio, Timestamp};
pub use trace::{LocPredicate, TraceLabels};
pub use wire::{Codec, WireError, SEMANTICS_VERSION};
