//! L-stability, the local DRF theorem (Theorem 13) and the derived global
//! DRF theorem (Theorem 14), as executable checkers.
//!
//! * [`is_l_stable`] — Definition 12: `M` is L-stable if no trace through
//!   `M` has a data race between a transition before `M` and an
//!   L-sequential transition after it.
//! * [`check_local_drf`] — Theorem 13: from an L-stable `M`, after any
//!   L-sequential transition sequence, either every enabled transition is
//!   L-sequential, or some enabled *non-weak* transition on a location in
//!   `L` races with one of the transitions taken since `M`.
//! * [`check_global_drf`] — Theorem 14: if every sequentially consistent
//!   trace of a program is race-free, then every trace of the program is
//!   sequentially consistent.
//!
//! These checkers exhaustively verify the theorems on bounded state spaces;
//! they are used by the test suite across the whole litmus corpus, and by
//! the failure-injection tests, which check that deliberately broken
//! semantics (e.g. non-synchronising atomics) are caught.

use crate::explore::{for_each_trace, BudgetExceeded, ExploreConfig, ExploreStats, Visit};
use crate::loc::LocSet;
use crate::machine::{Expr, Machine, TransitionLabel};
use crate::trace::{conflicting, is_l_sequential, LocPredicate, TraceLabels};

/// A counterexample to Theorem 13 found by [`check_local_drf`]: an
/// L-sequential suffix after which a non-L-sequential transition is enabled
/// yet no racing non-weak transition on `L` exists.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocalDrfViolation {
    /// The L-sequential transitions taken since the checked state.
    pub suffix: Vec<TransitionLabel>,
    /// The enabled transition that is not L-sequential.
    pub offending: TransitionLabel,
}

impl std::fmt::Display for LocalDrfViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "local DRF violated after L-sequential suffix:")?;
        for t in &self.suffix {
            writeln!(f, "  {t}")?;
        }
        write!(f, "offending non-L-sequential transition: {}", self.offending)
    }
}

/// The outcome of a DRF-style check that can also run out of budget.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckError<V> {
    /// The property was violated, with a witness.
    Violation(V),
    /// The exploration budget was exhausted before a verdict.
    Budget(BudgetExceeded),
}

impl<V: std::fmt::Debug> std::fmt::Display for CheckError<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Violation(v) => write!(f, "property violated: {v:?}"),
            CheckError::Budget(b) => write!(f, "{b}"),
        }
    }
}

impl<V: std::fmt::Debug> std::error::Error for CheckError<V> {}

impl<V> From<BudgetExceeded> for CheckError<V> {
    fn from(b: BudgetExceeded) -> CheckError<V> {
        CheckError::Budget(b)
    }
}

/// Checks Definition 12 for the state reached by `prefix_machine` via the
/// transitions `prefix`: explores every L-sequential suffix and reports
/// whether any suffix transition races with any prefix transition.
///
/// (Definition 12 quantifies over *all* traces through `M`; callers that
/// need full generality enumerate prefixes reaching `M` and invoke this per
/// prefix. For the paper's reasoning patterns — "no concurrent accesses to
/// `L` before the fragment" — the given-prefix form is the one used.)
///
/// # Errors
///
/// Returns [`BudgetExceeded`] if the suffix exploration exceeds the budget.
pub fn is_l_stable_for_prefix<E: Expr>(
    locs: &LocSet,
    prefix: &[TransitionLabel],
    prefix_machine: Machine<E>,
    l_set: &LocPredicate,
    config: ExploreConfig,
) -> Result<bool, BudgetExceeded> {
    let mut stable = true;
    for_each_trace(
        locs,
        prefix_machine,
        config,
        |t| is_l_sequential(&t.label, l_set),
        |suffix, _t| {
            // Race between some prefix Ti and the transition just taken?
            let mut all = TraceLabels::from_labels(prefix.to_vec());
            for l in suffix.labels() {
                all.push(*l);
            }
            let n = all.len() - 1;
            let hb = all.happens_before(locs);
            let last = all.labels()[n];
            for (i, ti) in all.labels()[..prefix.len()].iter().enumerate() {
                if conflicting(ti, &last, locs) && !hb.contains(i, n) {
                    stable = false;
                    return Visit::Stop;
                }
            }
            Visit::Continue
        },
    )?;
    Ok(stable)
}

/// Checks Theorem 13 from the machine state `m`, assumed L-stable.
///
/// Explores every L-sequential transition sequence from `m` (within
/// budget). At each reached state, if some enabled transition is *not*
/// L-sequential, verifies the theorem's guarantee: an enabled non-weak
/// transition on a location in `L` exists that has a data race with one of
/// the suffix transitions. Returns statistics on success.
///
/// # Errors
///
/// * [`CheckError::Violation`] with a [`LocalDrfViolation`] witness if the
///   theorem fails (impossible for the paper semantics; reachable with the
///   failure-injection semantics).
/// * [`CheckError::Budget`] if exploration exceeds the budget.
pub fn check_local_drf<E: Expr>(
    locs: &LocSet,
    m: Machine<E>,
    l_set: &LocPredicate,
    config: ExploreConfig,
) -> Result<ExploreStats, CheckError<LocalDrfViolation>> {
    let mut violation: Option<LocalDrfViolation> = None;

    // Check the theorem's conclusion at one state, reached via `suffix`.
    let check_state = |suffix: &TraceLabels, machine: &Machine<E>| -> Option<LocalDrfViolation> {
        let transitions = machine.transitions(locs);
        let non_l_seq: Vec<_> = transitions
            .iter()
            .filter(|t| !is_l_sequential(&t.label, l_set))
            .collect();
        if non_l_seq.is_empty() {
            return None; // first disjunct: all transitions L-sequential
        }
        // Second disjunct: find a non-weak transition on L racing with a Ti.
        let witness_exists = transitions.iter().any(|t| {
            if t.label.weak {
                return false;
            }
            let Some(action) = t.label.action else { return false };
            if !l_set.contains(&action.loc) {
                return false;
            }
            // Race between some suffix Ti and this transition?
            let mut all = suffix.clone();
            all.push(t.label);
            let n = all.len() - 1;
            let hb = all.happens_before(locs);
            (0..n).any(|i| conflicting(&all.labels()[i], &t.label, locs) && !hb.contains(i, n))
        });
        if witness_exists {
            None
        } else {
            Some(LocalDrfViolation {
                suffix: suffix.labels().to_vec(),
                offending: non_l_seq[0].label,
            })
        }
    };

    // The empty suffix (state `m` itself) must also satisfy the theorem.
    if let Some(v) = check_state(&TraceLabels::new(), &m) {
        return Err(CheckError::Violation(v));
    }

    let stats = for_each_trace(
        locs,
        m,
        config,
        |t| is_l_sequential(&t.label, l_set),
        |suffix, t| {
            if let Some(v) = check_state(suffix, &t.target) {
                violation = Some(v);
                return Visit::Stop;
            }
            Visit::Continue
        },
    )?;
    match violation {
        Some(v) => Err(CheckError::Violation(v)),
        None => Ok(stats),
    }
}

/// A witness that a program is not data-race-free: a sequentially
/// consistent trace containing a data race.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RaceWitness {
    /// The racy sequentially consistent trace.
    pub trace: Vec<TransitionLabel>,
    /// Indices of the racing pair within `trace`.
    pub pair: (usize, usize),
}

/// Classification of a program by [`sc_race_freedom`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DrfStatus {
    /// Every sequentially consistent trace is race-free.
    RaceFree,
    /// Some sequentially consistent trace has a race.
    Racy(RaceWitness),
}

/// Determines whether the program starting at `m0` is data-race-free in the
/// sense of Theorem 14's hypothesis: all sequentially consistent traces
/// contain no data races.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] on budget exhaustion.
pub fn sc_race_freedom<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: ExploreConfig,
) -> Result<DrfStatus, BudgetExceeded> {
    let mut status = DrfStatus::RaceFree;
    for_each_trace(
        locs,
        m0,
        config,
        |t| !t.label.weak,
        |trace, _t| {
            // Only the freshly appended transition needs checking: earlier
            // pairs were checked on earlier prefixes.
            let n = trace.len() - 1;
            let hb = trace.happens_before(locs);
            let last = trace.labels()[n];
            for i in 0..n {
                if conflicting(&trace.labels()[i], &last, locs) && !hb.contains(i, n) {
                    status = DrfStatus::Racy(RaceWitness {
                        trace: trace.labels().to_vec(),
                        pair: (i, n),
                    });
                    return Visit::Stop;
                }
            }
            Visit::Continue
        },
    )?;
    Ok(status)
}

/// Determines whether *every* trace of the program is sequentially
/// consistent, i.e. no weak transition is ever enabled along a
/// sequentially consistent trace. (The first weak transition of any trace
/// is preceded by an SC prefix, so SC-reachability suffices.)
///
/// # Errors
///
/// Returns [`BudgetExceeded`] on budget exhaustion.
pub fn all_traces_sequentially_consistent<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: ExploreConfig,
) -> Result<bool, BudgetExceeded> {
    let mut all_sc = true;
    for_each_trace(
        locs,
        m0,
        config,
        |_| true,
        |trace, _t| {
            // Enumerate all transitions but prune below any weak one: we
            // only need SC-reachable states, plus the weak transitions
            // enabled at them.
            if trace.labels().iter().any(|l| l.weak) {
                all_sc = false;
                return Visit::Stop;
            }
            Visit::Continue
        },
    )?;
    Ok(all_sc)
}

/// A counterexample to Theorem 14: the program is data-race-free under
/// sequential consistency, yet admits a non-SC trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GlobalDrfViolation {
    /// The weak transition that should have been impossible.
    pub weak_transition: TransitionLabel,
}

/// Checks Theorem 14 on the program starting at `m0`: if the program is
/// data-race-free (per [`sc_race_freedom`]), verifies that all traces are
/// sequentially consistent. Racy programs satisfy the theorem vacuously.
///
/// # Errors
///
/// * [`CheckError::Violation`] if the theorem fails (never, for the paper
///   semantics).
/// * [`CheckError::Budget`] on budget exhaustion.
pub fn check_global_drf<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: ExploreConfig,
) -> Result<DrfStatus, CheckError<GlobalDrfViolation>> {
    let status = sc_race_freedom(locs, m0.clone(), config)?;
    if let DrfStatus::RaceFree = status {
        let mut witness = None;
        for_each_trace(
            locs,
            m0,
            config,
            |_| true,
            |trace, _t| {
                let last = *trace.labels().last().expect("non-empty");
                if last.weak {
                    witness = Some(last);
                    return Visit::Stop;
                }
                Visit::Continue
            },
        )
        .map_err(CheckError::from)?;
        if let Some(weak_transition) = witness {
            return Err(CheckError::Violation(GlobalDrfViolation { weak_transition }));
        }
    }
    Ok(status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::{Loc, LocKind, Val};
    use crate::machine::{RecordedExpr, StepLabel};

    fn cfg() -> ExploreConfig {
        ExploreConfig::default()
    }

    fn locs_abf() -> (LocSet, Loc, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        let f = l.fresh("F", LocKind::Atomic);
        (l, a, b, f)
    }

    #[test]
    fn drf_program_is_globally_sc() {
        // Message passing through an atomic is data-race-free... only if
        // the reader's access to `a` is conditional on the flag. A reader
        // that accesses `a` unconditionally races. Here: both threads write
        // disjoint locations with atomic flag sync — race-free.
        let (locs, a, _b, f) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Write(f, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Read(f)]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let status = check_global_drf(&locs, m0, cfg()).unwrap();
        assert_eq!(status, DrfStatus::RaceFree);
    }

    #[test]
    fn racy_program_detected() {
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        match sc_race_freedom(&locs, m0, cfg()).unwrap() {
            DrfStatus::Racy(w) => {
                assert_eq!(w.pair.0 < w.pair.1, true);
            }
            DrfStatus::RaceFree => panic!("expected a race"),
        }
    }

    #[test]
    fn racy_program_has_weak_traces() {
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(a)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        assert!(!all_traces_sequentially_consistent(&locs, m0, cfg()).unwrap());
    }

    #[test]
    fn theorem13_holds_from_initial_state() {
        // Initial states are trivially L-stable; the theorem must hold for
        // any L. Use the SB shape, L = {a}.
        let (locs, a, b, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let l: LocPredicate = [a].into_iter().collect();
        check_local_drf(&locs, m0, &l, cfg()).unwrap();
    }

    #[test]
    fn theorem13_holds_all_locations() {
        // L = all nonatomic locations: local DRF specialises to the global
        // guarantee (Theorem 14's proof uses exactly this instance).
        let (locs, a, b, f) = locs_abf();
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
            StepLabel::Read(b),
        ]);
        let p1 = RecordedExpr::new(vec![
            StepLabel::Read(f),
            StepLabel::Write(b, Val(1)),
            StepLabel::Read(a),
        ]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let l: LocPredicate = [a, b].into_iter().collect();
        check_local_drf(&locs, m0, &l, cfg()).unwrap();
    }

    #[test]
    fn initial_state_is_l_stable() {
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let l: LocPredicate = [a].into_iter().collect();
        // Empty prefix: nothing to race with.
        assert!(is_l_stable_for_prefix(&locs, &[], m0, &l, cfg()).unwrap());
    }

    #[test]
    fn mid_race_state_is_not_l_stable() {
        // After P0's write to `a` (the prefix), P1's conflicting write is
        // still to come: the state is not {a}-stable.
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        // Take P0's write.
        let t = m0
            .transitions(&locs)
            .into_iter()
            .find(|t| t.label.thread.index() == 0)
            .unwrap();
        let l: LocPredicate = [a].into_iter().collect();
        let stable =
            is_l_stable_for_prefix(&locs, &[t.label], t.target, &l, cfg()).unwrap();
        assert!(!stable);
    }
}
