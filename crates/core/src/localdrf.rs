//! L-stability, the local DRF theorem (Theorem 13) and the derived global
//! DRF theorem (Theorem 14), as executable checkers.
//!
//! * [`is_l_stable_for_prefix`] — Definition 12: `M` is L-stable if no
//!   trace through `M` has a data race between a transition before `M` and
//!   an L-sequential transition after it.
//! * [`check_local_drf`] — Theorem 13: from an L-stable `M`, after any
//!   L-sequential transition sequence, either every enabled transition is
//!   L-sequential, or some enabled *non-weak* transition on a location in
//!   `L` races with one of the transitions taken since `M`.
//! * [`check_global_drf`] — Theorem 14: if every sequentially consistent
//!   trace of a program is race-free, then every trace of the program is
//!   sequentially consistent.
//!
//! These checkers exhaustively verify the theorems on bounded state spaces;
//! they are used by the test suite across the whole litmus corpus, and by
//! the failure-injection tests, which check that deliberately broken
//! semantics (e.g. non-synchronising atomics) are caught.
//!
//! Each checker drives the [`crate::engine::TraceEngine`] through its own
//! [`TraceVisitor`] implementation — no intermediate closure plumbing —
//! so the engine's budget and error surface ([`EngineError`]) apply
//! uniformly.
//!
//! Every checker also has a `*_sharded` variant that forks the trace walk
//! at the root frontier over the work-stealing pool
//! ([`TraceEngine::explore_sharded`]): each enabled root transition gets
//! an independent label stack and a fresh visitor, verdicts are merged
//! afterwards (any shard's violation wins), and the trace budget is a
//! single shared counter — a budget split never changes a verdict. The
//! differential suites assert the sharded verdicts match the sequential
//! ones across the corpus and generated programs.

use crate::engine::{Control, EngineConfig, EngineError, ExploreStats, TraceEngine, TraceVisitor};
use crate::loc::LocSet;
use crate::machine::{Expr, Machine, Transition, TransitionLabel};
use crate::trace::{conflicting, is_l_sequential, LocPredicate, TraceLabels};

/// A counterexample to Theorem 13 found by [`check_local_drf`]: an
/// L-sequential suffix after which a non-L-sequential transition is enabled
/// yet no racing non-weak transition on `L` exists.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocalDrfViolation {
    /// The L-sequential transitions taken since the checked state.
    pub suffix: Vec<TransitionLabel>,
    /// The enabled transition that is not L-sequential.
    pub offending: TransitionLabel,
}

impl std::fmt::Display for LocalDrfViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "local DRF violated after L-sequential suffix:")?;
        for t in &self.suffix {
            writeln!(f, "  {t}")?;
        }
        write!(
            f,
            "offending non-L-sequential transition: {}",
            self.offending
        )
    }
}

/// The outcome of a DRF-style check that can also fail inside the engine
/// (budget exhaustion or state corruption).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckError<V> {
    /// The property was violated, with a witness.
    Violation(V),
    /// The exploration engine failed before a verdict.
    Engine(EngineError),
}

impl<V: std::fmt::Debug> std::fmt::Display for CheckError<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Violation(v) => write!(f, "property violated: {v:?}"),
            CheckError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl<V: std::fmt::Debug> std::error::Error for CheckError<V> {}

impl<V> From<EngineError> for CheckError<V> {
    fn from(e: EngineError) -> CheckError<V> {
        CheckError::Engine(e)
    }
}

/// If the transition just appended to `all` (at index `n`) races with one
/// of the first `limit` transitions, returns the index of that partner.
fn races_with_prefix(locs: &LocSet, all: &TraceLabels, limit: usize) -> Option<usize> {
    let n = all.len() - 1;
    let hb = all.happens_before(locs);
    let last = all.labels()[n];
    all.labels()[..limit]
        .iter()
        .enumerate()
        .find(|(i, ti)| conflicting(ti, &last, locs) && !hb.contains(*i, n))
        .map(|(i, _)| i)
}

/// Visitor for Definition 12: explores L-sequential suffixes and reports a
/// race between any suffix transition and any prefix transition.
struct LStabilityVisitor<'a> {
    locs: &'a LocSet,
    prefix: &'a [TransitionLabel],
    l_set: &'a LocPredicate,
    stable: bool,
}

impl<E: Expr> TraceVisitor<E> for LStabilityVisitor<'_> {
    fn step_filter(&mut self, t: &Transition<E>) -> bool {
        is_l_sequential(&t.label, self.l_set)
    }

    fn visit(&mut self, suffix: &TraceLabels, _t: &Transition<E>) -> Control {
        // Race between some prefix Ti and the transition just taken?
        let mut all = TraceLabels::from_labels(self.prefix.to_vec());
        for l in suffix.labels() {
            all.push(*l);
        }
        if races_with_prefix(self.locs, &all, self.prefix.len()).is_some() {
            self.stable = false;
            return Control::Stop;
        }
        Control::Continue
    }
}

/// Checks Definition 12 for the state reached by `prefix_machine` via the
/// transitions `prefix`: explores every L-sequential suffix and reports
/// whether any suffix transition races with any prefix transition.
///
/// (Definition 12 quantifies over *all* traces through `M`; callers that
/// need full generality enumerate prefixes reaching `M` and invoke this per
/// prefix. For the paper's reasoning patterns — "no concurrent accesses to
/// `L` before the fragment" — the given-prefix form is the one used.)
///
/// # Errors
///
/// Returns [`EngineError`] if the suffix exploration exceeds the budget.
pub fn is_l_stable_for_prefix<E: Expr>(
    locs: &LocSet,
    prefix: &[TransitionLabel],
    prefix_machine: Machine<E>,
    l_set: &LocPredicate,
    config: EngineConfig,
) -> Result<bool, EngineError> {
    let mut v = LStabilityVisitor {
        locs,
        prefix,
        l_set,
        stable: true,
    };
    TraceEngine::new(config).explore(locs, prefix_machine, &mut v)?;
    Ok(v.stable)
}

/// [`is_l_stable_for_prefix`], with the suffix exploration sharded at the
/// root frontier across `threads` workers (0 = all cores). The state is
/// L-stable iff every shard found its subtree race-free.
///
/// # Errors
///
/// As [`is_l_stable_for_prefix`]; the budget is shared across shards.
pub fn is_l_stable_for_prefix_sharded<E: Expr + Send + Sync>(
    locs: &LocSet,
    prefix: &[TransitionLabel],
    prefix_machine: Machine<E>,
    l_set: &LocPredicate,
    config: EngineConfig,
    threads: usize,
) -> Result<bool, EngineError> {
    let (_, visitors) =
        TraceEngine::new(config).explore_sharded(locs, prefix_machine, threads, || {
            LStabilityVisitor {
                locs,
                prefix,
                l_set,
                stable: true,
            }
        })?;
    Ok(visitors.iter().all(|v| v.stable))
}

/// Visitor for Theorem 13: walks L-sequential suffixes, checking the
/// theorem's conclusion at every reached state.
struct LocalDrfVisitor<'a> {
    locs: &'a LocSet,
    l_set: &'a LocPredicate,
    violation: Option<LocalDrfViolation>,
}

impl<'a> LocalDrfVisitor<'a> {
    /// Checks the theorem's conclusion at one state, reached via `suffix`.
    fn check_state<E: Expr>(
        &self,
        suffix: &TraceLabels,
        machine: &Machine<E>,
    ) -> Option<LocalDrfViolation> {
        let transitions = machine.transitions(self.locs);
        let non_l_seq: Vec<_> = transitions
            .iter()
            .filter(|t| !is_l_sequential(&t.label, self.l_set))
            .collect();
        if non_l_seq.is_empty() {
            return None; // first disjunct: all transitions L-sequential
        }
        // Second disjunct: find a non-weak transition on L racing with a Ti.
        let witness_exists = transitions.iter().any(|t| {
            if t.label.weak {
                return false;
            }
            let Some(action) = t.label.action else {
                return false;
            };
            if !self.l_set.contains(&action.loc) {
                return false;
            }
            // Race between some suffix Ti and this transition?
            let mut all = suffix.clone();
            all.push(t.label);
            races_with_prefix(self.locs, &all, all.len() - 1).is_some()
        });
        if witness_exists {
            None
        } else {
            Some(LocalDrfViolation {
                suffix: suffix.labels().to_vec(),
                offending: non_l_seq[0].label,
            })
        }
    }
}

impl<E: Expr> TraceVisitor<E> for LocalDrfVisitor<'_> {
    fn step_filter(&mut self, t: &Transition<E>) -> bool {
        is_l_sequential(&t.label, self.l_set)
    }

    fn visit(&mut self, suffix: &TraceLabels, t: &Transition<E>) -> Control {
        if let Some(v) = self.check_state(suffix, &t.target) {
            self.violation = Some(v);
            return Control::Stop;
        }
        Control::Continue
    }
}

/// Checks Theorem 13 from the machine state `m`, assumed L-stable.
///
/// Explores every L-sequential transition sequence from `m` (within
/// budget). At each reached state, if some enabled transition is *not*
/// L-sequential, verifies the theorem's guarantee: an enabled non-weak
/// transition on a location in `L` exists that has a data race with one of
/// the suffix transitions. Returns statistics on success.
///
/// # Errors
///
/// * [`CheckError::Violation`] with a [`LocalDrfViolation`] witness if the
///   theorem fails (impossible for the paper semantics; reachable with the
///   failure-injection semantics).
/// * [`CheckError::Engine`] if exploration exceeds the budget.
pub fn check_local_drf<E: Expr>(
    locs: &LocSet,
    m: Machine<E>,
    l_set: &LocPredicate,
    config: EngineConfig,
) -> Result<ExploreStats, CheckError<LocalDrfViolation>> {
    let mut visitor = LocalDrfVisitor {
        locs,
        l_set,
        violation: None,
    };

    // The empty suffix (state `m` itself) must also satisfy the theorem.
    if let Some(v) = visitor.check_state(&TraceLabels::new(), &m) {
        return Err(CheckError::Violation(v));
    }

    let stats = TraceEngine::new(config).explore(locs, m, &mut visitor)?;
    match visitor.violation {
        Some(v) => Err(CheckError::Violation(v)),
        None => Ok(stats),
    }
}

/// [`check_local_drf`], with the L-sequential suffix walk sharded at the
/// root frontier across `threads` workers (0 = all cores). Any shard's
/// counterexample fails the theorem (the first, in root-transition order,
/// is reported).
///
/// # Errors
///
/// As [`check_local_drf`]; the budget is shared across shards.
pub fn check_local_drf_sharded<E: Expr + Send + Sync>(
    locs: &LocSet,
    m: Machine<E>,
    l_set: &LocPredicate,
    config: EngineConfig,
    threads: usize,
) -> Result<ExploreStats, CheckError<LocalDrfViolation>> {
    let probe = LocalDrfVisitor {
        locs,
        l_set,
        violation: None,
    };
    // The empty suffix (state `m` itself) must also satisfy the theorem.
    if let Some(v) = probe.check_state(&TraceLabels::new(), &m) {
        return Err(CheckError::Violation(v));
    }

    let (stats, visitors) = TraceEngine::new(config)
        .explore_sharded(locs, m, threads, || LocalDrfVisitor {
            locs,
            l_set,
            violation: None,
        })
        .map_err(CheckError::from)?;
    match visitors.into_iter().find_map(|v| v.violation) {
        Some(v) => Err(CheckError::Violation(v)),
        None => Ok(stats),
    }
}

/// A witness that a program is not data-race-free: a sequentially
/// consistent trace containing a data race.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RaceWitness {
    /// The racy sequentially consistent trace.
    pub trace: Vec<TransitionLabel>,
    /// Indices of the racing pair within `trace`.
    pub pair: (usize, usize),
}

/// Classification of a program by [`sc_race_freedom`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DrfStatus {
    /// Every sequentially consistent trace is race-free.
    RaceFree,
    /// Some sequentially consistent trace has a race.
    Racy(RaceWitness),
}

/// Visitor enumerating SC traces and reporting the first race.
struct ScRaceVisitor<'a> {
    locs: &'a LocSet,
    status: DrfStatus,
}

impl<E: Expr> TraceVisitor<E> for ScRaceVisitor<'_> {
    fn step_filter(&mut self, t: &Transition<E>) -> bool {
        !t.label.weak
    }

    fn visit(&mut self, trace: &TraceLabels, _t: &Transition<E>) -> Control {
        // Only the freshly appended transition needs checking: earlier
        // pairs were checked on earlier prefixes.
        let n = trace.len() - 1;
        if let Some(i) = races_with_prefix(self.locs, trace, n) {
            self.status = DrfStatus::Racy(RaceWitness {
                trace: trace.labels().to_vec(),
                pair: (i, n),
            });
            return Control::Stop;
        }
        Control::Continue
    }
}

/// Determines whether the program starting at `m0` is data-race-free in the
/// sense of Theorem 14's hypothesis: all sequentially consistent traces
/// contain no data races.
///
/// # Errors
///
/// Returns [`EngineError`] on budget exhaustion.
pub fn sc_race_freedom<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
) -> Result<DrfStatus, EngineError> {
    let mut v = ScRaceVisitor {
        locs,
        status: DrfStatus::RaceFree,
    };
    TraceEngine::new(config).explore(locs, m0, &mut v)?;
    Ok(v.status)
}

/// [`sc_race_freedom`], with the SC-trace enumeration sharded at the root
/// frontier across `threads` workers (0 = all cores). The program is racy
/// iff any shard's subtree contains a racy SC trace; the classification
/// (not the witness) matches the sequential checker exactly.
///
/// # Errors
///
/// As [`sc_race_freedom`]; the budget is shared across shards.
pub fn sc_race_freedom_sharded<E: Expr + Send + Sync>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
    threads: usize,
) -> Result<DrfStatus, EngineError> {
    let (_, visitors) =
        TraceEngine::new(config).explore_sharded(locs, m0, threads, || ScRaceVisitor {
            locs,
            status: DrfStatus::RaceFree,
        })?;
    Ok(visitors
        .into_iter()
        .map(|v| v.status)
        .find(|s| matches!(s, DrfStatus::Racy(_)))
        .unwrap_or(DrfStatus::RaceFree))
}

/// Visitor that stops at the first trace containing a weak transition.
struct WeakTraceVisitor {
    witness: Option<TransitionLabel>,
}

impl<E: Expr> TraceVisitor<E> for WeakTraceVisitor {
    fn visit(&mut self, trace: &TraceLabels, _t: &Transition<E>) -> Control {
        let last = *trace.labels().last().expect("non-empty");
        if last.weak {
            self.witness = Some(last);
            return Control::Stop;
        }
        Control::Continue
    }
}

/// Determines whether *every* trace of the program is sequentially
/// consistent, i.e. no weak transition is ever enabled along a
/// sequentially consistent trace. (The first weak transition of any trace
/// is preceded by an SC prefix, so SC-reachability suffices.)
///
/// # Errors
///
/// Returns [`EngineError`] on budget exhaustion.
pub fn all_traces_sequentially_consistent<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
) -> Result<bool, EngineError> {
    let mut v = WeakTraceVisitor { witness: None };
    TraceEngine::new(config).explore(locs, m0, &mut v)?;
    Ok(v.witness.is_none())
}

/// [`all_traces_sequentially_consistent`], sharded at the root frontier
/// across `threads` workers (0 = all cores).
///
/// # Errors
///
/// As [`all_traces_sequentially_consistent`]; the budget is shared.
pub fn all_traces_sequentially_consistent_sharded<E: Expr + Send + Sync>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
    threads: usize,
) -> Result<bool, EngineError> {
    let (_, visitors) = TraceEngine::new(config)
        .explore_sharded(locs, m0, threads, || WeakTraceVisitor { witness: None })?;
    Ok(visitors.iter().all(|v| v.witness.is_none()))
}

/// A counterexample to Theorem 14: the program is data-race-free under
/// sequential consistency, yet admits a non-SC trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GlobalDrfViolation {
    /// The weak transition that should have been impossible.
    pub weak_transition: TransitionLabel,
}

/// Checks Theorem 14 on the program starting at `m0`: if the program is
/// data-race-free (per [`sc_race_freedom`]), verifies that all traces are
/// sequentially consistent. Racy programs satisfy the theorem vacuously.
///
/// # Errors
///
/// * [`CheckError::Violation`] if the theorem fails (never, for the paper
///   semantics).
/// * [`CheckError::Engine`] on budget exhaustion.
pub fn check_global_drf<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
) -> Result<DrfStatus, CheckError<GlobalDrfViolation>> {
    let status = sc_race_freedom(locs, m0.clone(), config)?;
    if let DrfStatus::RaceFree = status {
        let mut v = WeakTraceVisitor { witness: None };
        TraceEngine::new(config)
            .explore(locs, m0, &mut v)
            .map_err(CheckError::from)?;
        if let Some(weak_transition) = v.witness {
            return Err(CheckError::Violation(GlobalDrfViolation {
                weak_transition,
            }));
        }
    }
    Ok(status)
}

/// [`check_global_drf`], with both trace enumerations (the SC race scan
/// and the weak-transition scan) sharded at the root frontier across
/// `threads` workers (0 = all cores).
///
/// # Errors
///
/// As [`check_global_drf`]; both budgets are shared across their shards.
pub fn check_global_drf_sharded<E: Expr + Send + Sync>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
    threads: usize,
) -> Result<DrfStatus, CheckError<GlobalDrfViolation>> {
    let status = sc_race_freedom_sharded(locs, m0.clone(), config, threads)?;
    if let DrfStatus::RaceFree = status {
        let (_, visitors) = TraceEngine::new(config)
            .explore_sharded(locs, m0, threads, || WeakTraceVisitor { witness: None })
            .map_err(CheckError::from)?;
        if let Some(weak_transition) = visitors.into_iter().find_map(|v| v.witness) {
            return Err(CheckError::Violation(GlobalDrfViolation {
                weak_transition,
            }));
        }
    }
    Ok(status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::{Loc, LocKind, Val};
    use crate::machine::{RecordedExpr, StepLabel};

    fn cfg() -> EngineConfig {
        EngineConfig::default()
    }

    fn locs_abf() -> (LocSet, Loc, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        let f = l.fresh("F", LocKind::Atomic);
        (l, a, b, f)
    }

    #[test]
    fn drf_program_is_globally_sc() {
        // Message passing through an atomic is data-race-free... only if
        // the reader's access to `a` is conditional on the flag. A reader
        // that accesses `a` unconditionally races. Here: both threads write
        // disjoint locations with atomic flag sync — race-free.
        let (locs, a, _b, f) = locs_abf();
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
        ]);
        let p1 = RecordedExpr::new(vec![StepLabel::Read(f)]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let status = check_global_drf(&locs, m0, cfg()).unwrap();
        assert_eq!(status, DrfStatus::RaceFree);
    }

    #[test]
    fn racy_program_detected() {
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        match sc_race_freedom(&locs, m0, cfg()).unwrap() {
            DrfStatus::Racy(w) => {
                assert!(w.pair.0 < w.pair.1);
            }
            DrfStatus::RaceFree => panic!("expected a race"),
        }
    }

    #[test]
    fn racy_program_has_weak_traces() {
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(a)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        assert!(!all_traces_sequentially_consistent(&locs, m0, cfg()).unwrap());
    }

    #[test]
    fn theorem13_holds_from_initial_state() {
        // Initial states are trivially L-stable; the theorem must hold for
        // any L. Use the SB shape, L = {a}.
        let (locs, a, b, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let l: LocPredicate = [a].into_iter().collect();
        check_local_drf(&locs, m0, &l, cfg()).unwrap();
    }

    #[test]
    fn theorem13_holds_all_locations() {
        // L = all nonatomic locations: local DRF specialises to the global
        // guarantee (Theorem 14's proof uses exactly this instance).
        let (locs, a, b, f) = locs_abf();
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
            StepLabel::Read(b),
        ]);
        let p1 = RecordedExpr::new(vec![
            StepLabel::Read(f),
            StepLabel::Write(b, Val(1)),
            StepLabel::Read(a),
        ]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let l: LocPredicate = [a, b].into_iter().collect();
        check_local_drf(&locs, m0, &l, cfg()).unwrap();
    }

    #[test]
    fn initial_state_is_l_stable() {
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let l: LocPredicate = [a].into_iter().collect();
        // Empty prefix: nothing to race with.
        assert!(is_l_stable_for_prefix(&locs, &[], m0, &l, cfg()).unwrap());
    }

    #[test]
    fn mid_race_state_is_not_l_stable() {
        // After P0's write to `a` (the prefix), P1's conflicting write is
        // still to come: the state is not {a}-stable.
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        // Take P0's write.
        let t = m0
            .transitions(&locs)
            .into_iter()
            .find(|t| t.label.thread.index() == 0)
            .unwrap();
        let l: LocPredicate = [a].into_iter().collect();
        let stable = is_l_stable_for_prefix(&locs, &[t.label], t.target, &l, cfg()).unwrap();
        assert!(!stable);
    }

    #[test]
    fn sharded_checkers_agree_with_sequential() {
        let (locs, a, _b, f) = locs_abf();
        // Race-free MP-style program.
        let drf0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
        ]);
        let drf1 = RecordedExpr::new(vec![StepLabel::Read(f)]);
        // Racy program.
        let racy0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(a)]);
        let racy1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        for m0 in [
            Machine::initial(&locs, [drf0, drf1]),
            Machine::initial(&locs, [racy0, racy1]),
        ] {
            let seq = sc_race_freedom(&locs, m0.clone(), cfg()).unwrap();
            let shd = sc_race_freedom_sharded(&locs, m0.clone(), cfg(), 4).unwrap();
            assert_eq!(
                matches!(seq, DrfStatus::Racy(_)),
                matches!(shd, DrfStatus::Racy(_))
            );
            assert_eq!(
                all_traces_sequentially_consistent(&locs, m0.clone(), cfg()).unwrap(),
                all_traces_sequentially_consistent_sharded(&locs, m0.clone(), cfg(), 4).unwrap()
            );
            let seq_g = check_global_drf(&locs, m0.clone(), cfg());
            let shd_g = check_global_drf_sharded(&locs, m0, cfg(), 4);
            assert_eq!(seq_g.is_ok(), shd_g.is_ok());
        }
    }

    #[test]
    fn sharded_local_drf_agrees_with_sequential() {
        let (locs, a, b, f) = locs_abf();
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
            StepLabel::Read(b),
        ]);
        let p1 = RecordedExpr::new(vec![
            StepLabel::Read(f),
            StepLabel::Write(b, Val(1)),
            StepLabel::Read(a),
        ]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let l: LocPredicate = [a, b].into_iter().collect();
        assert!(check_local_drf(&locs, m0.clone(), &l, cfg()).is_ok());
        assert!(check_local_drf_sharded(&locs, m0.clone(), &l, cfg(), 4).is_ok());
        assert_eq!(
            is_l_stable_for_prefix(&locs, &[], m0.clone(), &l, cfg()).unwrap(),
            is_l_stable_for_prefix_sharded(&locs, &[], m0, &l, cfg(), 4).unwrap()
        );
    }

    #[test]
    fn sharded_budget_trips_mid_shard() {
        // Budget large enough that every shard starts walking but the
        // whole tree exceeds it: the shared counter must trip and surface
        // the same CheckError::Engine(BudgetExceeded) as the sequential
        // checker.
        let (locs, a, _, _) = locs_abf();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        let tiny = EngineConfig {
            max_states: 50,
            max_traces: 50,
        };
        let l: LocPredicate = [a].into_iter().collect();
        let seq = check_local_drf(&locs, m0.clone(), &l, tiny);
        let shd = check_local_drf_sharded(&locs, m0.clone(), &l, tiny, 4);
        for r in [seq, shd] {
            match r {
                Err(CheckError::Engine(EngineError::BudgetExceeded { visited })) => {
                    assert_eq!(visited, tiny.max_traces + 1);
                }
                other => panic!("expected budget error, got {other:?}"),
            }
        }
        // Same story for the SC race scan, on a conflict-free program so
        // the race visitor never stops early.
        let (locs2, a2, b2, _) = locs_abf();
        let q0 = RecordedExpr::new(vec![StepLabel::Write(a2, Val(1)); 6]);
        let q1 = RecordedExpr::new(vec![StepLabel::Write(b2, Val(1)); 6]);
        let free = Machine::initial(&locs2, [q0, q1]);
        let seq_sc = sc_race_freedom(&locs2, free.clone(), tiny);
        let shd_sc = sc_race_freedom_sharded(&locs2, free, tiny, 4);
        for r in [seq_sc, shd_sc] {
            match r {
                Err(EngineError::BudgetExceeded { visited }) => {
                    assert_eq!(visited, tiny.max_traces + 1)
                }
                other => panic!("expected budget error, got {other:?}"),
            }
        }
    }

    #[test]
    fn engine_error_converts_into_check_error() {
        let (locs, a, _, _) = locs_abf();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        let tiny = EngineConfig {
            max_states: 4,
            max_traces: 4,
        };
        let l: LocPredicate = [a].into_iter().collect();
        match check_local_drf(&locs, m0, &l, tiny) {
            Err(CheckError::Engine(EngineError::BudgetExceeded { .. })) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }
}
