//! L-stability, the local DRF theorem (Theorem 13) and the derived global
//! DRF theorem (Theorem 14), as executable checkers.
//!
//! * [`is_l_stable_for_prefix`] — Definition 12: `M` is L-stable if no
//!   trace through `M` has a data race between a transition before `M` and
//!   an L-sequential transition after it.
//! * [`check_local_drf`] — Theorem 13: from an L-stable `M`, after any
//!   L-sequential transition sequence, either every enabled transition is
//!   L-sequential, or some enabled *non-weak* transition on a location in
//!   `L` races with one of the transitions taken since `M`.
//! * [`check_global_drf`] — Theorem 14: if every sequentially consistent
//!   trace of a program is race-free, then every trace of the program is
//!   sequentially consistent.
//!
//! These checkers exhaustively verify the theorems on bounded state spaces;
//! they are used by the test suite across the whole litmus corpus, and by
//! the failure-injection tests, which check that deliberately broken
//! semantics (e.g. non-synchronising atomics) are caught.
//!
//! Each checker drives the [`crate::engine::TraceEngine`] through its own
//! [`TraceVisitor`] implementation — no intermediate closure plumbing —
//! so the engine's budget and error surface ([`EngineError`]) apply
//! uniformly.
//!
//! Every checker also has a `*_sharded` variant that forks the trace walk
//! over the work-stealing pool
//! ([`TraceEngine::explore_sharded_merged`]): each fork gets an
//! independent label stack and a fresh visitor, verdicts are folded back
//! through [`MergeableVisitor`] (any subtree's violation wins), and the
//! trace budget is a single shared counter — a budget split never changes
//! a verdict. The differential suites assert the sharded verdicts match
//! the sequential ones across the corpus and generated programs.
//!
//! The core checkers additionally have `*_reduced` variants that walk a
//! partial-order-reduced trace tree ([`DporEngine`] under
//! [`Dependence::Conservative`]) instead of the full enumeration.
//! Conservative commutations preserve transition labels, happens-before,
//! data races and weak flags, so trace-existence verdicts ("some SC trace
//! races", "some trace has a weak transition") are invariant across each
//! explored equivalence class and the reduced walk classifies programs
//! exactly as the full one — in a fraction of the traces. The
//! differential suites assert the agreement corpus-wide and on generated
//! programs.
//!
//! Finally, every checker has a `*_replayed` variant over a recorded
//! [`TraceGraph`] ([`TraceEngine::record`]): the verdict logic of each
//! visitor consumes only transition *labels* (and the labels enabled at
//! reached states), so it implements [`ReplayVisitor`] alongside
//! [`TraceVisitor`] and re-checks against the cached tree without running
//! the transition semantics at all. Record the tree once, then check
//! L-stability for many `L` sets, SC-race-freedom, and the weak-trace
//! scan against the same recording — [`check_global_drf_cached`] does
//! exactly that for Theorem 14's two scans.

use crate::engine::{
    Control, Dependence, DporEngine, DporStats, EngineConfig, EngineError, ExploreStats,
    MergeableVisitor, ReplayStep, ReplayVisitor, TraceEngine, TraceGraph, TraceVisitor,
};
use crate::loc::LocSet;
use crate::machine::{Expr, Machine, Transition, TransitionLabel};
use crate::trace::{conflicting, is_l_sequential, LocPredicate, TraceLabels};

/// A counterexample to Theorem 13 found by [`check_local_drf`]: an
/// L-sequential suffix after which a non-L-sequential transition is enabled
/// yet no racing non-weak transition on `L` exists.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocalDrfViolation {
    /// The L-sequential transitions taken since the checked state.
    pub suffix: Vec<TransitionLabel>,
    /// The enabled transition that is not L-sequential.
    pub offending: TransitionLabel,
}

impl std::fmt::Display for LocalDrfViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "local DRF violated after L-sequential suffix:")?;
        for t in &self.suffix {
            writeln!(f, "  {t}")?;
        }
        write!(
            f,
            "offending non-L-sequential transition: {}",
            self.offending
        )
    }
}

/// The outcome of a DRF-style check that can also fail inside the engine
/// (budget exhaustion or state corruption).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckError<V> {
    /// The property was violated, with a witness.
    Violation(V),
    /// The exploration engine failed before a verdict.
    Engine(EngineError),
}

impl<V: std::fmt::Debug> std::fmt::Display for CheckError<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Violation(v) => write!(f, "property violated: {v:?}"),
            CheckError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl<V: std::fmt::Debug> std::error::Error for CheckError<V> {}

impl<V> From<EngineError> for CheckError<V> {
    fn from(e: EngineError) -> CheckError<V> {
        CheckError::Engine(e)
    }
}

/// If the transition just appended to `all` (at index `n`) races with one
/// of the first `limit` transitions, returns the index of that partner.
fn races_with_prefix(locs: &LocSet, all: &TraceLabels, limit: usize) -> Option<usize> {
    let n = all.len() - 1;
    let hb = all.happens_before(locs);
    let last = all.labels()[n];
    all.labels()[..limit]
        .iter()
        .enumerate()
        .find(|(i, ti)| conflicting(ti, &last, locs) && !hb.contains(*i, n))
        .map(|(i, _)| i)
}

/// Visitor for Definition 12: explores L-sequential suffixes and reports a
/// race between any suffix transition and any prefix transition. The
/// verdict consumes labels only, so the visitor drives live walks
/// ([`TraceVisitor`]) and graph replays ([`ReplayVisitor`]) alike.
struct LStabilityVisitor<'a> {
    locs: &'a LocSet,
    prefix: &'a [TransitionLabel],
    l_set: &'a LocPredicate,
    stable: bool,
}

impl LStabilityVisitor<'_> {
    fn check(&mut self, suffix: &TraceLabels) -> Control {
        // Race between some prefix Ti and the transition just taken?
        let mut all = TraceLabels::from_labels(self.prefix.to_vec());
        for l in suffix.labels() {
            all.push(*l);
        }
        if races_with_prefix(self.locs, &all, self.prefix.len()).is_some() {
            self.stable = false;
            return Control::Stop;
        }
        Control::Continue
    }
}

impl<E: Expr> TraceVisitor<E> for LStabilityVisitor<'_> {
    fn step_filter(&mut self, t: &Transition<E>) -> bool {
        is_l_sequential(&t.label, self.l_set)
    }

    fn visit(&mut self, suffix: &TraceLabels, _t: &Transition<E>) -> Control {
        self.check(suffix)
    }
}

impl ReplayVisitor for LStabilityVisitor<'_> {
    fn step_filter(&mut self, label: &TransitionLabel) -> bool {
        is_l_sequential(label, self.l_set)
    }

    fn visit(&mut self, suffix: &TraceLabels, _step: ReplayStep<'_>) -> Control {
        self.check(suffix)
    }
}

impl MergeableVisitor for LStabilityVisitor<'_> {
    fn merge(&mut self, other: Self) {
        self.stable &= other.stable;
    }
}

/// Checks Definition 12 for the state reached by `prefix_machine` via the
/// transitions `prefix`: explores every L-sequential suffix and reports
/// whether any suffix transition races with any prefix transition.
///
/// (Definition 12 quantifies over *all* traces through `M`; callers that
/// need full generality enumerate prefixes reaching `M` and invoke this per
/// prefix. For the paper's reasoning patterns — "no concurrent accesses to
/// `L` before the fragment" — the given-prefix form is the one used.)
///
/// # Errors
///
/// Returns [`EngineError`] if the suffix exploration exceeds the budget.
pub fn is_l_stable_for_prefix<E: Expr>(
    locs: &LocSet,
    prefix: &[TransitionLabel],
    prefix_machine: Machine<E>,
    l_set: &LocPredicate,
    config: EngineConfig,
) -> Result<bool, EngineError> {
    let mut v = LStabilityVisitor {
        locs,
        prefix,
        l_set,
        stable: true,
    };
    TraceEngine::new(config).explore(locs, prefix_machine, &mut v)?;
    Ok(v.stable)
}

/// [`is_l_stable_for_prefix`], with the suffix exploration sharded across
/// `threads` workers (0 = all cores). The state is L-stable iff every
/// subtree was found race-free.
///
/// # Errors
///
/// As [`is_l_stable_for_prefix`]; the budget is shared across shards.
pub fn is_l_stable_for_prefix_sharded<E: Expr + Send + Sync>(
    locs: &LocSet,
    prefix: &[TransitionLabel],
    prefix_machine: Machine<E>,
    l_set: &LocPredicate,
    config: EngineConfig,
    threads: usize,
) -> Result<bool, EngineError> {
    let (_, merged) =
        TraceEngine::new(config).explore_sharded_merged(locs, prefix_machine, threads, || {
            LStabilityVisitor {
                locs,
                prefix,
                l_set,
                stable: true,
            }
        })?;
    Ok(merged.stable)
}

/// [`is_l_stable_for_prefix`] over a recorded [`TraceGraph`] of the
/// prefix machine: re-checks Definition 12 (for this `prefix` and
/// `l_set`) without re-running the transition semantics. One recording
/// serves every `L` set and every prefix reaching the same machine.
///
/// # Errors
///
/// As [`is_l_stable_for_prefix`] (replay mirrors the live budget).
pub fn is_l_stable_for_prefix_replayed(
    locs: &LocSet,
    prefix: &[TransitionLabel],
    graph: &TraceGraph,
    l_set: &LocPredicate,
    config: EngineConfig,
) -> Result<bool, EngineError> {
    let mut v = LStabilityVisitor {
        locs,
        prefix,
        l_set,
        stable: true,
    };
    graph.replay(config, &mut v)?;
    Ok(v.stable)
}

/// Visitor for Theorem 13: walks L-sequential suffixes, checking the
/// theorem's conclusion at every reached state. The conclusion consumes
/// only the *labels* of the transitions enabled at the reached state, so
/// the same visitor drives live walks and graph replays.
struct LocalDrfVisitor<'a> {
    locs: &'a LocSet,
    l_set: &'a LocPredicate,
    violation: Option<LocalDrfViolation>,
}

impl<'a> LocalDrfVisitor<'a> {
    /// Checks the theorem's conclusion at one state, reached via `suffix`,
    /// whose enabled transitions carry the labels `enabled`.
    fn check_state(
        &self,
        suffix: &TraceLabels,
        enabled: impl Iterator<Item = TransitionLabel> + Clone,
    ) -> Option<LocalDrfViolation> {
        let mut non_l_seq = enabled.clone().filter(|l| !is_l_sequential(l, self.l_set));
        let Some(offending) = non_l_seq.next() else {
            return None; // first disjunct: all transitions L-sequential
        };
        // Second disjunct: find a non-weak transition on L racing with a Ti.
        let witness_exists = enabled.into_iter().any(|label| {
            if label.weak {
                return false;
            }
            let Some(action) = label.action else {
                return false;
            };
            if !self.l_set.contains(&action.loc) {
                return false;
            }
            // Race between some suffix Ti and this transition?
            let mut all = suffix.clone();
            all.push(label);
            races_with_prefix(self.locs, &all, all.len() - 1).is_some()
        });
        if witness_exists {
            None
        } else {
            Some(LocalDrfViolation {
                suffix: suffix.labels().to_vec(),
                offending,
            })
        }
    }

    fn check(
        &mut self,
        suffix: &TraceLabels,
        enabled: impl Iterator<Item = TransitionLabel> + Clone,
    ) -> Control {
        if let Some(v) = self.check_state(suffix, enabled) {
            self.violation = Some(v);
            return Control::Stop;
        }
        Control::Continue
    }
}

impl<E: Expr> TraceVisitor<E> for LocalDrfVisitor<'_> {
    fn step_filter(&mut self, t: &Transition<E>) -> bool {
        is_l_sequential(&t.label, self.l_set)
    }

    fn visit(&mut self, suffix: &TraceLabels, t: &Transition<E>) -> Control {
        let enabled = t.target.transitions(self.locs);
        self.check(suffix, enabled.iter().map(|t| t.label))
    }
}

impl ReplayVisitor for LocalDrfVisitor<'_> {
    fn step_filter(&mut self, label: &TransitionLabel) -> bool {
        is_l_sequential(label, self.l_set)
    }

    fn visit(&mut self, suffix: &TraceLabels, step: ReplayStep<'_>) -> Control {
        self.check(suffix, step.enabled.iter().copied())
    }
}

impl MergeableVisitor for LocalDrfVisitor<'_> {
    fn merge(&mut self, other: Self) {
        if self.violation.is_none() {
            self.violation = other.violation;
        }
    }
}

/// Checks Theorem 13 from the machine state `m`, assumed L-stable.
///
/// Explores every L-sequential transition sequence from `m` (within
/// budget). At each reached state, if some enabled transition is *not*
/// L-sequential, verifies the theorem's guarantee: an enabled non-weak
/// transition on a location in `L` exists that has a data race with one of
/// the suffix transitions. Returns statistics on success.
///
/// # Errors
///
/// * [`CheckError::Violation`] with a [`LocalDrfViolation`] witness if the
///   theorem fails (impossible for the paper semantics; reachable with the
///   failure-injection semantics).
/// * [`CheckError::Engine`] if exploration exceeds the budget.
pub fn check_local_drf<E: Expr>(
    locs: &LocSet,
    m: Machine<E>,
    l_set: &LocPredicate,
    config: EngineConfig,
) -> Result<ExploreStats, CheckError<LocalDrfViolation>> {
    let mut visitor = LocalDrfVisitor {
        locs,
        l_set,
        violation: None,
    };

    // The empty suffix (state `m` itself) must also satisfy the theorem.
    let enabled: Vec<TransitionLabel> = m.transitions(locs).iter().map(|t| t.label).collect();
    if let Some(v) = visitor.check_state(&TraceLabels::new(), enabled.iter().copied()) {
        return Err(CheckError::Violation(v));
    }

    let stats = TraceEngine::new(config).explore(locs, m, &mut visitor)?;
    match visitor.violation {
        Some(v) => Err(CheckError::Violation(v)),
        None => Ok(stats),
    }
}

/// [`check_local_drf`], with the L-sequential suffix walk sharded across
/// `threads` workers (0 = all cores). Any subtree's counterexample fails
/// the theorem (the first, in trunk-then-fork order, is reported).
///
/// # Errors
///
/// As [`check_local_drf`]; the budget is shared across shards.
pub fn check_local_drf_sharded<E: Expr + Send + Sync>(
    locs: &LocSet,
    m: Machine<E>,
    l_set: &LocPredicate,
    config: EngineConfig,
    threads: usize,
) -> Result<ExploreStats, CheckError<LocalDrfViolation>> {
    let probe = LocalDrfVisitor {
        locs,
        l_set,
        violation: None,
    };
    // The empty suffix (state `m` itself) must also satisfy the theorem.
    let enabled: Vec<TransitionLabel> = m.transitions(locs).iter().map(|t| t.label).collect();
    if let Some(v) = probe.check_state(&TraceLabels::new(), enabled.iter().copied()) {
        return Err(CheckError::Violation(v));
    }

    let (stats, merged) = TraceEngine::new(config)
        .explore_sharded_merged(locs, m, threads, || LocalDrfVisitor {
            locs,
            l_set,
            violation: None,
        })
        .map_err(CheckError::from)?;
    match merged.violation {
        Some(v) => Err(CheckError::Violation(v)),
        None => Ok(stats),
    }
}

/// [`check_local_drf`] over a recorded [`TraceGraph`] of the checked
/// machine: Theorem 13 is re-verified — for any `l_set` — against the
/// cached tree, without re-running the transition semantics. The
/// recorded per-node enabled labels supply both the theorem's "every
/// enabled transition is L-sequential" disjunct and its racing-witness
/// search.
///
/// # Errors
///
/// As [`check_local_drf`] (replay mirrors the live budget).
pub fn check_local_drf_replayed(
    locs: &LocSet,
    graph: &TraceGraph,
    l_set: &LocPredicate,
    config: EngineConfig,
) -> Result<ExploreStats, CheckError<LocalDrfViolation>> {
    let mut visitor = LocalDrfVisitor {
        locs,
        l_set,
        violation: None,
    };
    // The empty suffix (the recorded root) must also satisfy the theorem.
    if let Some(v) = visitor.check_state(&TraceLabels::new(), graph.root_enabled().iter().copied())
    {
        return Err(CheckError::Violation(v));
    }
    let stats = graph
        .replay(config, &mut visitor)
        .map_err(CheckError::from)?;
    match visitor.violation {
        Some(v) => Err(CheckError::Violation(v)),
        None => Ok(stats),
    }
}

/// [`check_local_drf`] over the partial-order-reduced suffix tree
/// ([`DporEngine`], [`Dependence::Conservative`]): Theorem 13's
/// conclusion is checked at every state along the DPOR-representative
/// L-sequential suffixes instead of all of them.
///
/// Any violation reported is real (the checked states are genuinely
/// reachable). Conversely, the per-state verdict depends only on data
/// that conservative commutations preserve — suffix labels up to
/// reordering of independent pairs, their races, and the (identical)
/// reached machine state — so equivalent suffixes agree on it, and the
/// reduced sweep covers one representative per class. The differential
/// suites assert corpus-wide agreement with [`check_local_drf`].
///
/// # Errors
///
/// As [`check_local_drf`]; statistics come back as [`DporStats`].
pub fn check_local_drf_reduced<E: Expr>(
    locs: &LocSet,
    m: Machine<E>,
    l_set: &LocPredicate,
    config: EngineConfig,
) -> Result<DporStats, CheckError<LocalDrfViolation>> {
    let mut visitor = LocalDrfVisitor {
        locs,
        l_set,
        violation: None,
    };

    // The empty suffix (state `m` itself) must also satisfy the theorem.
    let enabled: Vec<TransitionLabel> = m.transitions(locs).iter().map(|t| t.label).collect();
    if let Some(v) = visitor.check_state(&TraceLabels::new(), enabled.iter().copied()) {
        return Err(CheckError::Violation(v));
    }

    let stats = DporEngine::with_dependence(config, Dependence::Conservative).explore(
        locs,
        m,
        &mut visitor,
    )?;
    match visitor.violation {
        Some(v) => Err(CheckError::Violation(v)),
        None => Ok(stats),
    }
}

/// A witness that a program is not data-race-free: a sequentially
/// consistent trace containing a data race.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RaceWitness {
    /// The racy sequentially consistent trace.
    pub trace: Vec<TransitionLabel>,
    /// Indices of the racing pair within `trace`.
    pub pair: (usize, usize),
}

/// Classification of a program by [`sc_race_freedom`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DrfStatus {
    /// Every sequentially consistent trace is race-free.
    RaceFree,
    /// Some sequentially consistent trace has a race.
    Racy(RaceWitness),
}

/// Visitor enumerating SC traces and reporting the first race.
struct ScRaceVisitor<'a> {
    locs: &'a LocSet,
    status: DrfStatus,
}

impl ScRaceVisitor<'_> {
    fn check(&mut self, trace: &TraceLabels) -> Control {
        // Only the freshly appended transition needs checking: earlier
        // pairs were checked on earlier prefixes.
        let n = trace.len() - 1;
        if let Some(i) = races_with_prefix(self.locs, trace, n) {
            self.status = DrfStatus::Racy(RaceWitness {
                trace: trace.labels().to_vec(),
                pair: (i, n),
            });
            return Control::Stop;
        }
        Control::Continue
    }
}

impl<E: Expr> TraceVisitor<E> for ScRaceVisitor<'_> {
    fn step_filter(&mut self, t: &Transition<E>) -> bool {
        !t.label.weak
    }

    fn visit(&mut self, trace: &TraceLabels, _t: &Transition<E>) -> Control {
        self.check(trace)
    }
}

impl ReplayVisitor for ScRaceVisitor<'_> {
    fn step_filter(&mut self, label: &TransitionLabel) -> bool {
        !label.weak
    }

    fn visit(&mut self, trace: &TraceLabels, _step: ReplayStep<'_>) -> Control {
        self.check(trace)
    }
}

impl MergeableVisitor for ScRaceVisitor<'_> {
    fn merge(&mut self, other: Self) {
        if matches!(self.status, DrfStatus::RaceFree) {
            self.status = other.status;
        }
    }
}

/// Determines whether the program starting at `m0` is data-race-free in the
/// sense of Theorem 14's hypothesis: all sequentially consistent traces
/// contain no data races.
///
/// # Errors
///
/// Returns [`EngineError`] on budget exhaustion.
pub fn sc_race_freedom<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
) -> Result<DrfStatus, EngineError> {
    let mut v = ScRaceVisitor {
        locs,
        status: DrfStatus::RaceFree,
    };
    TraceEngine::new(config).explore(locs, m0, &mut v)?;
    Ok(v.status)
}

/// [`sc_race_freedom`], with the SC-trace enumeration sharded across
/// `threads` workers (0 = all cores). The program is racy iff any
/// subtree contains a racy SC trace; the classification (not the
/// witness) matches the sequential checker exactly.
///
/// # Errors
///
/// As [`sc_race_freedom`]; the budget is shared across shards.
pub fn sc_race_freedom_sharded<E: Expr + Send + Sync>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
    threads: usize,
) -> Result<DrfStatus, EngineError> {
    let (_, merged) =
        TraceEngine::new(config).explore_sharded_merged(locs, m0, threads, || ScRaceVisitor {
            locs,
            status: DrfStatus::RaceFree,
        })?;
    Ok(merged.status)
}

/// [`sc_race_freedom`] over the partial-order-reduced SC trace tree
/// ([`DporEngine`], [`Dependence::Conservative`]): classifies the
/// program from one representative trace per equivalence class.
///
/// The classification matches [`sc_race_freedom`] exactly: conservative
/// commutations preserve labels and happens-before, so a race in any SC
/// trace appears in its explored representative too. The *witness* may
/// differ (a different representative races first), so differential
/// checks compare the [`DrfStatus`] polarity, not the witness.
///
/// # Errors
///
/// As [`sc_race_freedom`].
pub fn sc_race_freedom_reduced<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
) -> Result<DrfStatus, EngineError> {
    let mut v = ScRaceVisitor {
        locs,
        status: DrfStatus::RaceFree,
    };
    DporEngine::with_dependence(config, Dependence::Conservative).explore(locs, m0, &mut v)?;
    Ok(v.status)
}

/// [`sc_race_freedom`] over a recorded [`TraceGraph`]: classifies the
/// program from the cached tree, without re-running the transition
/// semantics. Verdicts — including the witness — are identical to the
/// sequential checker's, because the replay walks extensions in the same
/// depth-first order under the same SC filter.
///
/// # Errors
///
/// As [`sc_race_freedom`] (replay mirrors the live budget).
pub fn sc_race_freedom_replayed(
    locs: &LocSet,
    graph: &TraceGraph,
    config: EngineConfig,
) -> Result<DrfStatus, EngineError> {
    let mut v = ScRaceVisitor {
        locs,
        status: DrfStatus::RaceFree,
    };
    graph.replay(config, &mut v)?;
    Ok(v.status)
}

/// Visitor that stops at the first trace containing a weak transition.
struct WeakTraceVisitor {
    witness: Option<TransitionLabel>,
}

impl WeakTraceVisitor {
    fn check(&mut self, trace: &TraceLabels) -> Control {
        let last = *trace.labels().last().expect("non-empty");
        if last.weak {
            self.witness = Some(last);
            return Control::Stop;
        }
        Control::Continue
    }
}

impl<E: Expr> TraceVisitor<E> for WeakTraceVisitor {
    fn visit(&mut self, trace: &TraceLabels, _t: &Transition<E>) -> Control {
        self.check(trace)
    }
}

impl ReplayVisitor for WeakTraceVisitor {
    fn visit(&mut self, trace: &TraceLabels, _step: ReplayStep<'_>) -> Control {
        self.check(trace)
    }
}

impl MergeableVisitor for WeakTraceVisitor {
    fn merge(&mut self, other: Self) {
        if self.witness.is_none() {
            self.witness = other.witness;
        }
    }
}

/// Determines whether *every* trace of the program is sequentially
/// consistent, i.e. no weak transition is ever enabled along a
/// sequentially consistent trace. (The first weak transition of any trace
/// is preceded by an SC prefix, so SC-reachability suffices.)
///
/// # Errors
///
/// Returns [`EngineError`] on budget exhaustion.
pub fn all_traces_sequentially_consistent<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
) -> Result<bool, EngineError> {
    let mut v = WeakTraceVisitor { witness: None };
    TraceEngine::new(config).explore(locs, m0, &mut v)?;
    Ok(v.witness.is_none())
}

/// [`all_traces_sequentially_consistent`], sharded across `threads`
/// workers (0 = all cores).
///
/// # Errors
///
/// As [`all_traces_sequentially_consistent`]; the budget is shared.
pub fn all_traces_sequentially_consistent_sharded<E: Expr + Send + Sync>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
    threads: usize,
) -> Result<bool, EngineError> {
    let (_, merged) = TraceEngine::new(config)
        .explore_sharded_merged(locs, m0, threads, || WeakTraceVisitor { witness: None })?;
    Ok(merged.witness.is_none())
}

/// [`all_traces_sequentially_consistent`] over the partial-order-reduced
/// trace tree ([`DporEngine`], [`Dependence::Conservative`]): scans one
/// representative per equivalence class for a weak transition.
///
/// Weak flags are part of the transition labels, which conservative
/// commutations preserve — a weak transition in any trace is a weak
/// transition in its explored representative — so the verdict matches
/// the full scan's.
///
/// # Errors
///
/// As [`all_traces_sequentially_consistent`].
pub fn all_traces_sequentially_consistent_reduced<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
) -> Result<bool, EngineError> {
    let mut v = WeakTraceVisitor { witness: None };
    DporEngine::with_dependence(config, Dependence::Conservative).explore(locs, m0, &mut v)?;
    Ok(v.witness.is_none())
}

/// [`all_traces_sequentially_consistent`] over a recorded [`TraceGraph`]:
/// scans the cached tree for a weak transition without re-running the
/// semantics.
///
/// # Errors
///
/// As [`all_traces_sequentially_consistent`] (replay mirrors the live
/// budget).
pub fn all_traces_sequentially_consistent_replayed(
    graph: &TraceGraph,
    config: EngineConfig,
) -> Result<bool, EngineError> {
    let mut v = WeakTraceVisitor { witness: None };
    graph.replay(config, &mut v)?;
    Ok(v.witness.is_none())
}

/// A counterexample to Theorem 14: the program is data-race-free under
/// sequential consistency, yet admits a non-SC trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GlobalDrfViolation {
    /// The weak transition that should have been impossible.
    pub weak_transition: TransitionLabel,
}

/// Checks Theorem 14 on the program starting at `m0`: if the program is
/// data-race-free (per [`sc_race_freedom`]), verifies that all traces are
/// sequentially consistent. Racy programs satisfy the theorem vacuously.
///
/// # Errors
///
/// * [`CheckError::Violation`] if the theorem fails (never, for the paper
///   semantics).
/// * [`CheckError::Engine`] on budget exhaustion.
pub fn check_global_drf<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
) -> Result<DrfStatus, CheckError<GlobalDrfViolation>> {
    let status = sc_race_freedom(locs, m0.clone(), config)?;
    if let DrfStatus::RaceFree = status {
        let mut v = WeakTraceVisitor { witness: None };
        TraceEngine::new(config)
            .explore(locs, m0, &mut v)
            .map_err(CheckError::from)?;
        if let Some(weak_transition) = v.witness {
            return Err(CheckError::Violation(GlobalDrfViolation {
                weak_transition,
            }));
        }
    }
    Ok(status)
}

/// [`check_global_drf`], with both trace enumerations (the SC race scan
/// and the weak-transition scan) sharded at the root frontier across
/// `threads` workers (0 = all cores).
///
/// # Errors
///
/// As [`check_global_drf`]; both budgets are shared across their shards.
pub fn check_global_drf_sharded<E: Expr + Send + Sync>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
    threads: usize,
) -> Result<DrfStatus, CheckError<GlobalDrfViolation>> {
    let status = sc_race_freedom_sharded(locs, m0.clone(), config, threads)?;
    if let DrfStatus::RaceFree = status {
        let (_, merged) = TraceEngine::new(config)
            .explore_sharded_merged(locs, m0, threads, || WeakTraceVisitor { witness: None })
            .map_err(CheckError::from)?;
        if let Some(weak_transition) = merged.witness {
            return Err(CheckError::Violation(GlobalDrfViolation {
                weak_transition,
            }));
        }
    }
    Ok(status)
}

/// [`check_global_drf`] with both trace enumerations partial-order
/// reduced ([`sc_race_freedom_reduced`] for the SC race scan,
/// [`all_traces_sequentially_consistent_reduced`] for the weak-transition
/// scan). Both scans check trace-existence properties that conservative
/// commutations preserve, so the Theorem 14 verdict matches
/// [`check_global_drf`]'s while exploring a fraction of the traces.
///
/// # Errors
///
/// As [`check_global_drf`].
pub fn check_global_drf_reduced<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
) -> Result<DrfStatus, CheckError<GlobalDrfViolation>> {
    let status = sc_race_freedom_reduced(locs, m0.clone(), config)?;
    if let DrfStatus::RaceFree = status {
        let mut v = WeakTraceVisitor { witness: None };
        DporEngine::with_dependence(config, Dependence::Conservative)
            .explore(locs, m0, &mut v)
            .map_err(CheckError::from)?;
        if let Some(weak_transition) = v.witness {
            return Err(CheckError::Violation(GlobalDrfViolation {
                weak_transition,
            }));
        }
    }
    Ok(status)
}
/// trace enumerations (the SC race scan and the weak-transition scan),
/// which the plain checker runs as two live walks. This variant records
/// the trace tree once ([`TraceEngine::record`]) and replays both scans
/// against it, so the transition semantics runs exactly once for the two
/// predicates — the cross-check caching the successor-graph work is
/// about.
///
/// # Errors
///
/// As [`check_global_drf`], with one caveat: the *recording* enumerates
/// the full (unfiltered) tree, so a budget that fits the SC-filtered scan
/// but not the whole tree fails here where the plain checker would
/// succeed. With the default budgets the verdicts coincide on every
/// corpus and generated program (the differential suite checks).
pub fn check_global_drf_cached<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: EngineConfig,
) -> Result<DrfStatus, CheckError<GlobalDrfViolation>> {
    let (graph, _) = TraceEngine::new(config)
        .record(locs, m0)
        .map_err(CheckError::from)?;
    let status = sc_race_freedom_replayed(locs, &graph, config)?;
    if let DrfStatus::RaceFree = status {
        let mut v = WeakTraceVisitor { witness: None };
        graph.replay(config, &mut v).map_err(CheckError::from)?;
        if let Some(weak_transition) = v.witness {
            return Err(CheckError::Violation(GlobalDrfViolation {
                weak_transition,
            }));
        }
    }
    Ok(status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::{Loc, LocKind, Val};
    use crate::machine::{RecordedExpr, StepLabel};

    fn cfg() -> EngineConfig {
        EngineConfig::default()
    }

    fn locs_abf() -> (LocSet, Loc, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        let f = l.fresh("F", LocKind::Atomic);
        (l, a, b, f)
    }

    #[test]
    fn drf_program_is_globally_sc() {
        // Message passing through an atomic is data-race-free... only if
        // the reader's access to `a` is conditional on the flag. A reader
        // that accesses `a` unconditionally races. Here: both threads write
        // disjoint locations with atomic flag sync — race-free.
        let (locs, a, _b, f) = locs_abf();
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
        ]);
        let p1 = RecordedExpr::new(vec![StepLabel::Read(f)]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let status = check_global_drf(&locs, m0, cfg()).unwrap();
        assert_eq!(status, DrfStatus::RaceFree);
    }

    #[test]
    fn racy_program_detected() {
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        match sc_race_freedom(&locs, m0, cfg()).unwrap() {
            DrfStatus::Racy(w) => {
                assert!(w.pair.0 < w.pair.1);
            }
            DrfStatus::RaceFree => panic!("expected a race"),
        }
    }

    #[test]
    fn racy_program_has_weak_traces() {
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(a)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        assert!(!all_traces_sequentially_consistent(&locs, m0, cfg()).unwrap());
    }

    #[test]
    fn theorem13_holds_from_initial_state() {
        // Initial states are trivially L-stable; the theorem must hold for
        // any L. Use the SB shape, L = {a}.
        let (locs, a, b, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let l: LocPredicate = [a].into_iter().collect();
        check_local_drf(&locs, m0, &l, cfg()).unwrap();
    }

    #[test]
    fn theorem13_holds_all_locations() {
        // L = all nonatomic locations: local DRF specialises to the global
        // guarantee (Theorem 14's proof uses exactly this instance).
        let (locs, a, b, f) = locs_abf();
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
            StepLabel::Read(b),
        ]);
        let p1 = RecordedExpr::new(vec![
            StepLabel::Read(f),
            StepLabel::Write(b, Val(1)),
            StepLabel::Read(a),
        ]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let l: LocPredicate = [a, b].into_iter().collect();
        check_local_drf(&locs, m0, &l, cfg()).unwrap();
    }

    #[test]
    fn initial_state_is_l_stable() {
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let l: LocPredicate = [a].into_iter().collect();
        // Empty prefix: nothing to race with.
        assert!(is_l_stable_for_prefix(&locs, &[], m0, &l, cfg()).unwrap());
    }

    #[test]
    fn mid_race_state_is_not_l_stable() {
        // After P0's write to `a` (the prefix), P1's conflicting write is
        // still to come: the state is not {a}-stable.
        let (locs, a, _, _) = locs_abf();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        // Take P0's write.
        let t = m0
            .transitions(&locs)
            .into_iter()
            .find(|t| t.label.thread.index() == 0)
            .unwrap();
        let l: LocPredicate = [a].into_iter().collect();
        let stable = is_l_stable_for_prefix(&locs, &[t.label], t.target, &l, cfg()).unwrap();
        assert!(!stable);
    }

    #[test]
    fn sharded_checkers_agree_with_sequential() {
        let (locs, a, _b, f) = locs_abf();
        // Race-free MP-style program.
        let drf0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
        ]);
        let drf1 = RecordedExpr::new(vec![StepLabel::Read(f)]);
        // Racy program.
        let racy0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(a)]);
        let racy1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        for m0 in [
            Machine::initial(&locs, [drf0, drf1]),
            Machine::initial(&locs, [racy0, racy1]),
        ] {
            let seq = sc_race_freedom(&locs, m0.clone(), cfg()).unwrap();
            let shd = sc_race_freedom_sharded(&locs, m0.clone(), cfg(), 4).unwrap();
            assert_eq!(
                matches!(seq, DrfStatus::Racy(_)),
                matches!(shd, DrfStatus::Racy(_))
            );
            assert_eq!(
                all_traces_sequentially_consistent(&locs, m0.clone(), cfg()).unwrap(),
                all_traces_sequentially_consistent_sharded(&locs, m0.clone(), cfg(), 4).unwrap()
            );
            let seq_g = check_global_drf(&locs, m0.clone(), cfg());
            let shd_g = check_global_drf_sharded(&locs, m0, cfg(), 4);
            assert_eq!(seq_g.is_ok(), shd_g.is_ok());
        }
    }

    #[test]
    fn sharded_local_drf_agrees_with_sequential() {
        let (locs, a, b, f) = locs_abf();
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
            StepLabel::Read(b),
        ]);
        let p1 = RecordedExpr::new(vec![
            StepLabel::Read(f),
            StepLabel::Write(b, Val(1)),
            StepLabel::Read(a),
        ]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let l: LocPredicate = [a, b].into_iter().collect();
        assert!(check_local_drf(&locs, m0.clone(), &l, cfg()).is_ok());
        assert!(check_local_drf_sharded(&locs, m0.clone(), &l, cfg(), 4).is_ok());
        assert_eq!(
            is_l_stable_for_prefix(&locs, &[], m0.clone(), &l, cfg()).unwrap(),
            is_l_stable_for_prefix_sharded(&locs, &[], m0, &l, cfg(), 4).unwrap()
        );
    }

    #[test]
    fn sharded_budget_trips_mid_shard() {
        // Budget large enough that every shard starts walking but the
        // whole tree exceeds it: the shared counter must trip and surface
        // the same CheckError::Engine(BudgetExceeded) as the sequential
        // checker.
        let (locs, a, _, _) = locs_abf();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        let tiny = EngineConfig {
            max_states: 50,
            max_traces: 50,
        };
        let l: LocPredicate = [a].into_iter().collect();
        let seq = check_local_drf(&locs, m0.clone(), &l, tiny);
        let shd = check_local_drf_sharded(&locs, m0.clone(), &l, tiny, 4);
        for r in [seq, shd] {
            match r {
                Err(CheckError::Engine(EngineError::BudgetExceeded { visited })) => {
                    assert_eq!(visited, tiny.max_traces + 1);
                }
                other => panic!("expected budget error, got {other:?}"),
            }
        }
        // Same story for the SC race scan, on a conflict-free program so
        // the race visitor never stops early.
        let (locs2, a2, b2, _) = locs_abf();
        let q0 = RecordedExpr::new(vec![StepLabel::Write(a2, Val(1)); 6]);
        let q1 = RecordedExpr::new(vec![StepLabel::Write(b2, Val(1)); 6]);
        let free = Machine::initial(&locs2, [q0, q1]);
        let seq_sc = sc_race_freedom(&locs2, free.clone(), tiny);
        let shd_sc = sc_race_freedom_sharded(&locs2, free, tiny, 4);
        for r in [seq_sc, shd_sc] {
            match r {
                Err(EngineError::BudgetExceeded { visited }) => {
                    assert_eq!(visited, tiny.max_traces + 1)
                }
                other => panic!("expected budget error, got {other:?}"),
            }
        }
    }

    /// An [`Expr`] wrapper that counts every transition-semantics probe
    /// (`steps()` calls): the instrument behind the no-re-execution
    /// guarantees of the `*_replayed` checkers.
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct CountedExpr(RecordedExpr);

    static STEP_PROBES: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    impl crate::machine::Expr for CountedExpr {
        fn steps(&self) -> crate::machine::Steps {
            STEP_PROBES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.0.steps()
        }

        fn apply_step(&self, index: usize, read_value: Val) -> CountedExpr {
            CountedExpr(self.0.apply_step(index, read_value))
        }
    }

    #[test]
    fn replayed_checkers_match_live_without_semantics() {
        let (locs, a, b, f) = locs_abf();
        // One racy and one race-free program.
        let progs: Vec<Vec<RecordedExpr>> = vec![
            vec![
                RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(a)]),
                RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]),
            ],
            vec![
                RecordedExpr::new(vec![
                    StepLabel::Write(a, Val(1)),
                    StepLabel::Write(f, Val(1)),
                    StepLabel::Read(b),
                ]),
                RecordedExpr::new(vec![
                    StepLabel::Read(f),
                    StepLabel::Write(b, Val(1)),
                    StepLabel::Read(a),
                ]),
            ],
        ];
        let l: LocPredicate = [a, b].into_iter().collect();
        for prog in progs {
            let counted = Machine::initial(&locs, prog.iter().cloned().map(CountedExpr));
            let plain = Machine::initial(&locs, prog);

            // Live verdicts (sequential oracles).
            let live_sc = sc_race_freedom(&locs, plain.clone(), cfg()).unwrap();
            let live_all_sc =
                all_traces_sequentially_consistent(&locs, plain.clone(), cfg()).unwrap();
            let live_drf = check_local_drf(&locs, plain.clone(), &l, cfg());
            let live_stable = is_l_stable_for_prefix(&locs, &[], plain.clone(), &l, cfg()).unwrap();
            let live_global = check_global_drf(&locs, plain, cfg());

            // Record once — this is the only place the semantics runs.
            let (graph, _) = TraceEngine::new(cfg()).record(&locs, counted).unwrap();
            let before = STEP_PROBES.load(std::sync::atomic::Ordering::Relaxed);

            let rep_sc = sc_race_freedom_replayed(&locs, &graph, cfg()).unwrap();
            let rep_all_sc = all_traces_sequentially_consistent_replayed(&graph, cfg()).unwrap();
            let rep_drf = check_local_drf_replayed(&locs, &graph, &l, cfg());
            let rep_stable =
                is_l_stable_for_prefix_replayed(&locs, &[], &graph, &l, cfg()).unwrap();

            // The replays must not have probed the semantics at all.
            let after = STEP_PROBES.load(std::sync::atomic::Ordering::Relaxed);
            assert_eq!(before, after, "replay invoked the transition semantics");

            assert_eq!(live_sc, rep_sc);
            assert_eq!(live_all_sc, rep_all_sc);
            assert_eq!(live_drf.is_ok(), rep_drf.is_ok());
            assert_eq!(live_stable, rep_stable);
            // Theorem 14 holds live, so the replayed scans must be
            // consistent with it: racy, or all traces SC.
            assert!(live_global.is_ok());
            assert!(matches!(rep_sc, DrfStatus::Racy(_)) || rep_all_sc);
        }
    }

    #[test]
    fn cached_global_drf_matches_live() {
        let (locs, a, _b, f) = locs_abf();
        let drf0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
        ]);
        let drf1 = RecordedExpr::new(vec![StepLabel::Read(f)]);
        let racy0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(a)]);
        let racy1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        for m0 in [
            Machine::initial(&locs, [drf0, drf1]),
            Machine::initial(&locs, [racy0, racy1]),
        ] {
            let live = check_global_drf(&locs, m0.clone(), cfg());
            let cached = check_global_drf_cached(&locs, m0, cfg());
            match (&live, &cached) {
                (Ok(a), Ok(b)) => assert_eq!(
                    matches!(a, DrfStatus::Racy(_)),
                    matches!(b, DrfStatus::Racy(_))
                ),
                other => panic!("verdicts diverge: {other:?}"),
            }
        }
    }

    #[test]
    fn engine_error_converts_into_check_error() {
        let (locs, a, _, _) = locs_abf();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        let tiny = EngineConfig {
            max_states: 4,
            max_traces: 4,
        };
        let l: LocPredicate = [a].into_iter().collect();
        match check_local_drf(&locs, m0, &l, tiny) {
            Err(CheckError::Engine(EngineError::BudgetExceeded { .. })) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }
}
