//! Machine configurations and the small-step relation (Fig. 1a/1b).
//!
//! A machine `M = ⟨S, P⟩` pairs a store with a program: a finite map from
//! thread identifiers to `(frontier, expression)` pairs. The semantics of
//! memory does not fix the form of expressions; this module captures the
//! required interface as the [`Expr`] trait (whose read transitions must
//! satisfy Proposition 4: a read accepts any value).

use std::fmt;
use std::hash::Hash;

use crate::frontier::Frontier;
use crate::loc::{LabeledAction, Loc, LocSet, Val};
use crate::memop::{perform_read, perform_write, StoreDelta};
use crate::store::Store;
use crate::timestamp::Timestamp;

/// A thread identifier `i`: index into the machine's thread vector.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The thread's raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The label of one enabled expression step.
///
/// For [`StepLabel::Read`] the value is *not* part of the label: per
/// Proposition 4 the expression must accept whatever value memory supplies,
/// via [`Expr::apply_step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StepLabel {
    /// A silent step `e —ϵ→ e′`: no memory access.
    #[default]
    Silent,
    /// A read step `e —ℓ:read x→ e_x` for every value `x`.
    Read(Loc),
    /// A write step `e —ℓ:write x→ e′`.
    Write(Loc, Val),
}

/// How many step labels [`Steps`] holds before spilling to the heap.
/// Every expression language in this repository exposes at most one
/// enabled step per thread, so the inline buffer is already generous.
const STEPS_INLINE: usize = 4;

/// The enabled steps of an expression: a small inline buffer that spills
/// to a `Vec` only past [`STEPS_INLINE`] entries.
///
/// `Expr::steps` sits on the hottest loop of every engine — once per
/// thread per expansion — and used to allocate a `Vec` on each call.
/// Returning `Steps` keeps the common case (zero or one label)
/// allocation-free; the counting-allocator lane in `engine_baseline`
/// asserts it stays that way.
#[derive(Clone, Debug, Default)]
pub struct Steps {
    /// Number of inline labels (meaningless once `spill` is non-empty).
    len: u8,
    inline: [StepLabel; STEPS_INLINE],
    /// Once spilled, holds *all* labels (inline buffer abandoned).
    spill: Vec<StepLabel>,
}

impl Steps {
    /// No enabled steps (a terminated or stuck thread).
    pub fn none() -> Steps {
        Steps::default()
    }

    /// Exactly one enabled step.
    pub fn one(label: StepLabel) -> Steps {
        let mut s = Steps::default();
        s.push(label);
        s
    }

    /// Appends a label, spilling to the heap past the inline capacity.
    pub fn push(&mut self, label: StepLabel) {
        if !self.spill.is_empty() {
            self.spill.push(label);
        } else if (self.len as usize) < STEPS_INLINE {
            self.inline[self.len as usize] = label;
            self.len += 1;
        } else {
            self.spill = self.inline.to_vec();
            self.spill.push(label);
        }
    }

    /// The enabled labels as a slice.
    pub fn as_slice(&self) -> &[StepLabel] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// Number of enabled steps.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when no step is enabled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the labels by value ([`StepLabel`] is `Copy`).
    pub fn iter(&self) -> impl Iterator<Item = StepLabel> + '_ {
        self.as_slice().iter().copied()
    }
}

impl PartialEq for Steps {
    fn eq(&self, other: &Steps) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Steps {}

impl FromIterator<StepLabel> for Steps {
    fn from_iter<I: IntoIterator<Item = StepLabel>>(iter: I) -> Steps {
        let mut s = Steps::default();
        for label in iter {
            s.push(label);
        }
        s
    }
}

impl From<Vec<StepLabel>> for Steps {
    fn from(labels: Vec<StepLabel>) -> Steps {
        labels.into_iter().collect()
    }
}

/// By-value iterator over [`Steps`] (labels are `Copy`).
pub struct StepsIter {
    steps: Steps,
    pos: usize,
}

impl Iterator for StepsIter {
    type Item = StepLabel;

    fn next(&mut self) -> Option<StepLabel> {
        let out = self.steps.as_slice().get(self.pos).copied();
        self.pos += out.is_some() as usize;
        out
    }
}

impl IntoIterator for Steps {
    type Item = StepLabel;
    type IntoIter = StepsIter;

    fn into_iter(self) -> StepsIter {
        StepsIter {
            steps: self,
            pos: 0,
        }
    }
}

/// Counts every probe of the transition semantics — [`Expr::steps`]
/// enumerations made by [`Machine::transitions`], and equivalent direct
/// per-thread step walks (the axiomatic generator). The replay/cache test
/// suites read it to prove that warm paths (graph replays, cache hits)
/// never re-run the semantics: record the counter, run the warm path,
/// assert it did not move. A single relaxed increment per expansion is
/// noise next to the expansion itself.
///
/// The count lives in the shared [`bdrst_obs`] counter registry (slot
/// [`bdrst_obs::Counter::SemanticsProbes`]) rather than a private
/// static, so profiles and server gauges see the same number the test
/// suites assert on.
pub fn record_semantics_probe() {
    bdrst_obs::counter_add(bdrst_obs::Counter::SemanticsProbes, 1);
}

/// Total transition-semantics probes made by this process so far.
pub fn semantics_probes() -> u64 {
    bdrst_obs::counter_get(bdrst_obs::Counter::SemanticsProbes)
}

/// The expression language interface required by the memory semantics.
///
/// Implementations enumerate their enabled steps with [`Expr::steps`] and
/// produce the successor expression with [`Expr::apply_step`]. Proposition 4
/// ("read transitions are not picky about the value being read") must hold:
/// `apply_step` must succeed for a `Read` step with *any* value.
///
/// # Examples
///
/// See [`bdrst-lang`'s `ThreadState`](https://docs.rs/bdrst-lang) for the
/// litmus-language implementation, or [`RecordedExpr`] in this module for a
/// trivial straight-line one.
pub trait Expr: Clone + Eq + Hash + fmt::Debug {
    /// All enabled steps of this expression.
    ///
    /// An empty [`Steps`] means the thread is terminated (or stuck).
    fn steps(&self) -> Steps;

    /// True iff at least one step is enabled. The default enumerates
    /// [`Expr::steps`]; implementations should override it with a cheaper
    /// check (e.g. "is the continuation empty") so `Machine::is_terminal`
    /// never enumerates steps a subsequent `transitions` call will
    /// enumerate again.
    fn has_step(&self) -> bool {
        !self.steps().is_empty()
    }

    /// The successor expression after taking `steps()[index]`.
    ///
    /// For `Read` steps, `read_value` is the value memory supplied; for
    /// `Silent` and `Write` steps it is ignored (pass anything).
    ///
    /// # Panics
    ///
    /// May panic if `index` is out of range of [`Expr::steps`].
    fn apply_step(&self, index: usize, read_value: Val) -> Self;
}

/// The per-thread component of a program: `i ↦ (F, e)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ThreadState<E> {
    /// The thread's frontier.
    pub frontier: Frontier,
    /// The thread's current expression.
    pub expr: E,
}

/// A machine configuration `M = ⟨S, P⟩`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Machine<E> {
    /// The shared store.
    pub store: Store,
    /// The threads (thread `i` is `threads[i]`).
    pub threads: Vec<ThreadState<E>>,
}

/// The record of one machine transition, as needed by traces: which thread
/// stepped, what memory action (if any) it performed, and the metadata used
/// by the weak-transition and happens-before machinery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TransitionLabel {
    /// The thread that stepped.
    pub thread: ThreadId,
    /// The memory action, or `None` for rule Silent.
    pub action: Option<LabeledAction>,
    /// The nonatomic history timestamp read or written, if applicable.
    pub timestamp: Option<Timestamp>,
    /// Whether the transition is weak (Definition 6).
    pub weak: bool,
}

impl TransitionLabel {
    /// True if this transition performed a memory operation.
    pub fn is_memory(&self) -> bool {
        self.action.is_some()
    }
}

impl crate::wire::Codec for ThreadId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<ThreadId, crate::wire::WireError> {
        Ok(ThreadId(u32::decode(r)?))
    }
}

impl crate::wire::Codec for TransitionLabel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.thread.encode(out);
        self.action.encode(out);
        self.timestamp.encode(out);
        self.weak.encode(out);
    }

    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<TransitionLabel, crate::wire::WireError> {
        Ok(TransitionLabel {
            thread: ThreadId::decode(r)?,
            action: Option::decode(r)?,
            timestamp: Option::decode(r)?,
            weak: bool::decode(r)?,
        })
    }
}

impl fmt::Display for TransitionLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.action {
            None => write!(f, "{}: ϵ", self.thread),
            Some(a) => {
                write!(f, "{}: {}", self.thread, a)?;
                if self.weak {
                    write!(f, " (weak)")?;
                }
                Ok(())
            }
        }
    }
}

/// One enabled machine transition: its label and the successor machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transition<E> {
    /// The transition's observable label.
    pub label: TransitionLabel,
    /// The machine after the transition.
    pub target: Machine<E>,
}

impl<E: Expr> Machine<E> {
    /// The initial machine `M₀` for the given thread expressions (§3.1):
    /// initial store, and every thread at the initial frontier.
    pub fn initial(locs: &LocSet, exprs: impl IntoIterator<Item = E>) -> Machine<E> {
        let f0 = Frontier::initial(locs);
        Machine {
            store: Store::initial(locs),
            threads: exprs
                .into_iter()
                .map(|e| ThreadState {
                    frontier: f0.clone(),
                    expr: e,
                })
                .collect(),
        }
    }

    /// The number of threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// True if no thread has an enabled step. Uses [`Expr::has_step`], so
    /// checking terminality before (or after) a `transitions` call does
    /// not enumerate every thread's steps a second time.
    pub fn is_terminal(&self) -> bool {
        !self.threads.iter().any(|t| t.expr.has_step())
    }

    /// The successor machine of one transition: `delta` is applied to a
    /// persistent clone of the shared store (`None` = unchanged — the
    /// clone is then a pure `Arc` bump), and thread `ti` gets the new
    /// frontier and expression. Building the target directly — instead
    /// of cloning the whole machine and overwriting the changed parts —
    /// keeps the per-transition allocation cost to exactly what the
    /// successor needs: read and silent successors share the parent
    /// store outright, and a write successor pays one O(log n)
    /// root-to-leaf path copy in the store's radix map
    /// ([`crate::pmap`]), leaving every off-path subtree — and its
    /// memoized fingerprint digests — shared with the parent and all
    /// sibling branches.
    fn target(
        &self,
        ti: usize,
        delta: Option<StoreDelta>,
        frontier: Frontier,
        expr: E,
    ) -> Machine<E> {
        let mut store = self.store.clone();
        if let Some(d) = delta {
            store.update(d.loc, d.contents);
        }
        let mut acting = Some(ThreadState { frontier, expr });
        Machine {
            store,
            threads: self
                .threads
                .iter()
                .enumerate()
                .map(|(j, t)| {
                    if j == ti {
                        acting.take().expect("exactly one acting thread")
                    } else {
                        t.clone()
                    }
                })
                .collect(),
        }
    }

    /// Enumerates every enabled machine transition (rules Silent and
    /// Memory, Fig. 1b), including every nondeterministic memory outcome.
    pub fn transitions(&self, locs: &LocSet) -> Vec<Transition<E>> {
        record_semantics_probe();
        let mut out = Vec::new();
        for (ti, thread) in self.threads.iter().enumerate() {
            let tid = ThreadId(ti as u32);
            for (si, step) in thread.expr.steps().into_iter().enumerate() {
                match step {
                    StepLabel::Silent => {
                        let expr = thread.expr.apply_step(si, Val::INIT);
                        out.push(Transition {
                            label: TransitionLabel {
                                thread: tid,
                                action: None,
                                timestamp: None,
                                weak: false,
                            },
                            target: self.target(ti, None, thread.frontier.clone(), expr),
                        });
                    }
                    StepLabel::Read(loc) => {
                        for r in perform_read(locs, &self.store, &thread.frontier, loc) {
                            let expr = thread.expr.apply_step(si, r.label.action.value());
                            out.push(Transition {
                                label: TransitionLabel {
                                    thread: tid,
                                    action: Some(r.label),
                                    timestamp: r.timestamp,
                                    weak: r.weak,
                                },
                                target: self.target(ti, r.delta, r.frontier, expr),
                            });
                        }
                    }
                    StepLabel::Write(loc, x) => {
                        for w in perform_write(locs, &self.store, &thread.frontier, loc, x) {
                            let expr = thread.expr.apply_step(si, Val::INIT);
                            out.push(Transition {
                                label: TransitionLabel {
                                    thread: tid,
                                    action: Some(w.label),
                                    timestamp: w.timestamp,
                                    weak: w.weak,
                                },
                                target: self.target(ti, w.delta, w.frontier, expr),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// A minimal [`Expr`] for tests and documentation: a fixed list of labelled
/// steps executed in order, recording values read.
///
/// # Examples
///
/// ```
/// use bdrst_core::loc::{LocSet, LocKind, Val};
/// use bdrst_core::machine::{Machine, RecordedExpr, StepLabel, Expr};
///
/// let mut locs = LocSet::new();
/// let a = locs.fresh("a", LocKind::Nonatomic);
/// let writer = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
/// let reader = RecordedExpr::new(vec![StepLabel::Read(a)]);
/// let m = Machine::initial(&locs, [writer, reader]);
/// assert_eq!(m.transitions(&locs).len(), 2); // write (1 gap) + read (init)
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RecordedExpr {
    program: Vec<StepLabelOwned>,
    pc: usize,
    /// Values observed by the read steps executed so far.
    pub reads: Vec<Val>,
}

// StepLabel is Copy and non-hashable only because of Val? All fields are
// hashable; we store an owned mirror to derive Hash for the whole expr.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum StepLabelOwned {
    Silent,
    Read(Loc),
    Write(Loc, Val),
}

impl From<StepLabel> for StepLabelOwned {
    fn from(s: StepLabel) -> StepLabelOwned {
        match s {
            StepLabel::Silent => StepLabelOwned::Silent,
            StepLabel::Read(l) => StepLabelOwned::Read(l),
            StepLabel::Write(l, v) => StepLabelOwned::Write(l, v),
        }
    }
}

impl RecordedExpr {
    /// A straight-line program over the given steps.
    pub fn new(steps: Vec<StepLabel>) -> RecordedExpr {
        RecordedExpr {
            program: steps.into_iter().map(StepLabelOwned::from).collect(),
            pc: 0,
            reads: Vec::new(),
        }
    }
}

impl crate::wire::Codec for StepLabelOwned {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StepLabelOwned::Silent => out.push(0),
            StepLabelOwned::Read(l) => {
                out.push(1);
                l.encode(out);
            }
            StepLabelOwned::Write(l, v) => {
                out.push(2);
                l.encode(out);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<StepLabelOwned, crate::wire::WireError> {
        match u8::decode(r)? {
            0 => Ok(StepLabelOwned::Silent),
            1 => Ok(StepLabelOwned::Read(Loc::decode(r)?)),
            2 => Ok(StepLabelOwned::Write(Loc::decode(r)?, Val::decode(r)?)),
            tag => Err(crate::wire::WireError::BadTag {
                what: "StepLabel",
                tag,
            }),
        }
    }
}

impl crate::wire::Codec for RecordedExpr {
    fn encode(&self, out: &mut Vec<u8>) {
        self.program.encode(out);
        self.pc.encode(out);
        self.reads.encode(out);
    }

    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<RecordedExpr, crate::wire::WireError> {
        Ok(RecordedExpr {
            program: Vec::decode(r)?,
            pc: usize::decode(r)?,
            reads: Vec::decode(r)?,
        })
    }
}

impl Expr for RecordedExpr {
    fn steps(&self) -> Steps {
        match self.program.get(self.pc) {
            None => Steps::none(),
            Some(StepLabelOwned::Silent) => Steps::one(StepLabel::Silent),
            Some(StepLabelOwned::Read(l)) => Steps::one(StepLabel::Read(*l)),
            Some(StepLabelOwned::Write(l, v)) => Steps::one(StepLabel::Write(*l, *v)),
        }
    }

    fn has_step(&self) -> bool {
        self.pc < self.program.len()
    }

    fn apply_step(&self, index: usize, read_value: Val) -> RecordedExpr {
        assert_eq!(index, 0, "straight-line programs have one enabled step");
        let mut next = self.clone();
        if matches!(self.program[self.pc], StepLabelOwned::Read(_)) {
            next.reads.push(read_value);
        }
        next.pc += 1;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::{Action, LocKind};

    fn locs2() -> (LocSet, Loc, Loc) {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        (locs, a, f)
    }

    #[test]
    fn initial_machine_is_not_terminal() {
        let (locs, a, _) = locs2();
        let m = Machine::initial(&locs, [RecordedExpr::new(vec![StepLabel::Read(a)])]);
        assert!(!m.is_terminal());
        assert_eq!(m.thread_count(), 1);
    }

    #[test]
    fn empty_program_is_terminal() {
        let (locs, _, _) = locs2();
        let m = Machine::initial(&locs, [RecordedExpr::new(vec![])]);
        assert!(m.is_terminal());
        assert!(m.transitions(&locs).is_empty());
    }

    #[test]
    fn read_of_initial_value() {
        let (locs, a, _) = locs2();
        let m = Machine::initial(&locs, [RecordedExpr::new(vec![StepLabel::Read(a)])]);
        let ts = m.transitions(&locs);
        assert_eq!(ts.len(), 1);
        let l = ts[0].label;
        assert_eq!(l.thread, ThreadId(0));
        assert_eq!(l.action.unwrap().action, Action::Read(Val::INIT));
        assert!(!l.weak);
        assert!(ts[0].target.is_terminal());
        assert_eq!(ts[0].target.threads[0].expr.reads, vec![Val::INIT]);
    }

    #[test]
    fn message_passing_via_atomic() {
        // P0: a = 1; F = 1        P1: r0 = F; r1 = a
        // If P1 reads F == 1 then it must read a == 1.
        let (locs, a, f) = locs2();
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
        ]);
        let p1 = RecordedExpr::new(vec![StepLabel::Read(f), StepLabel::Read(a)]);
        let m0 = Machine::initial(&locs, [p0, p1]);

        // Exhaustive DFS collecting terminal read pairs.
        let mut terminals = Vec::new();
        let mut stack = vec![m0];
        while let Some(m) = stack.pop() {
            if m.is_terminal() {
                terminals.push(m.threads[1].expr.reads.clone());
                continue;
            }
            for t in m.transitions(&locs) {
                stack.push(t.target);
            }
        }
        // flag=1 ⇒ a=1: the outcome [1, 0] must be absent.
        assert!(terminals.contains(&vec![Val(1), Val(1)]));
        assert!(terminals.contains(&vec![Val(0), Val(0)]));
        assert!(terminals.contains(&vec![Val(0), Val(1)]));
        assert!(!terminals.contains(&vec![Val(1), Val(0)]), "MP violation");
    }

    #[test]
    fn transition_label_display() {
        let l = TransitionLabel {
            thread: ThreadId(1),
            action: None,
            timestamp: None,
            weak: false,
        };
        assert_eq!(format!("{l}"), "P1: ϵ");
    }

    #[test]
    fn steps_inline_and_spill_agree() {
        let labels: Vec<StepLabel> = (0..7).map(|i| StepLabel::Write(Loc(i), Val(1))).collect();
        for n in 0..labels.len() {
            let s: Steps = labels[..n].iter().copied().collect();
            assert_eq!(s.len(), n);
            assert_eq!(s.is_empty(), n == 0);
            assert_eq!(s.as_slice(), &labels[..n]);
            assert_eq!(s.iter().collect::<Vec<_>>(), labels[..n].to_vec());
            assert_eq!(s.clone().into_iter().collect::<Vec<_>>(), labels[..n]);
            assert_eq!(s, Steps::from(labels[..n].to_vec()));
        }
        assert_eq!(Steps::one(labels[0]).as_slice(), &labels[..1]);
        assert!(Steps::none().is_empty());
    }

    #[test]
    fn has_step_agrees_with_steps() {
        let (locs, a, _) = locs2();
        let e = RecordedExpr::new(vec![StepLabel::Read(a)]);
        assert!(e.has_step());
        assert!(!e.steps().is_empty());
        let m = Machine::initial(&locs, [e]);
        let done = &m.transitions(&locs)[0].target.threads[0].expr;
        assert!(!done.has_step());
        assert!(done.steps().is_empty());
    }

    #[test]
    fn transitions_bump_the_semantics_probe_counter() {
        let (locs, a, _) = locs2();
        let m = Machine::initial(&locs, [RecordedExpr::new(vec![StepLabel::Read(a)])]);
        let before = semantics_probes();
        let _ = m.transitions(&locs);
        assert!(semantics_probes() > before);
    }
}
