//! Machine configurations and the small-step relation (Fig. 1a/1b).
//!
//! A machine `M = ⟨S, P⟩` pairs a store with a program: a finite map from
//! thread identifiers to `(frontier, expression)` pairs. The semantics of
//! memory does not fix the form of expressions; this module captures the
//! required interface as the [`Expr`] trait (whose read transitions must
//! satisfy Proposition 4: a read accepts any value).

use std::fmt;
use std::hash::Hash;

use crate::frontier::Frontier;
use crate::loc::{LabeledAction, Loc, LocSet, Val};
use crate::memop::{perform_read, perform_write};
use crate::store::Store;
use crate::timestamp::Timestamp;

/// A thread identifier `i`: index into the machine's thread vector.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The thread's raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The label of one enabled expression step.
///
/// For [`StepLabel::Read`] the value is *not* part of the label: per
/// Proposition 4 the expression must accept whatever value memory supplies,
/// via [`Expr::apply_step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepLabel {
    /// A silent step `e —ϵ→ e′`: no memory access.
    Silent,
    /// A read step `e —ℓ:read x→ e_x` for every value `x`.
    Read(Loc),
    /// A write step `e —ℓ:write x→ e′`.
    Write(Loc, Val),
}

/// The expression language interface required by the memory semantics.
///
/// Implementations enumerate their enabled steps with [`Expr::steps`] and
/// produce the successor expression with [`Expr::apply_step`]. Proposition 4
/// ("read transitions are not picky about the value being read") must hold:
/// `apply_step` must succeed for a `Read` step with *any* value.
///
/// # Examples
///
/// See [`bdrst-lang`'s `ThreadState`](https://docs.rs/bdrst-lang) for the
/// litmus-language implementation, or [`RecordedExpr`] in this module for a
/// trivial straight-line one.
pub trait Expr: Clone + Eq + Hash + fmt::Debug {
    /// All enabled steps of this expression.
    ///
    /// An empty vector means the thread is terminated (or stuck).
    fn steps(&self) -> Vec<StepLabel>;

    /// The successor expression after taking `steps()[index]`.
    ///
    /// For `Read` steps, `read_value` is the value memory supplied; for
    /// `Silent` and `Write` steps it is ignored (pass anything).
    ///
    /// # Panics
    ///
    /// May panic if `index` is out of range of [`Expr::steps`].
    fn apply_step(&self, index: usize, read_value: Val) -> Self;
}

/// The per-thread component of a program: `i ↦ (F, e)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ThreadState<E> {
    /// The thread's frontier.
    pub frontier: Frontier,
    /// The thread's current expression.
    pub expr: E,
}

/// A machine configuration `M = ⟨S, P⟩`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Machine<E> {
    /// The shared store.
    pub store: Store,
    /// The threads (thread `i` is `threads[i]`).
    pub threads: Vec<ThreadState<E>>,
}

/// The record of one machine transition, as needed by traces: which thread
/// stepped, what memory action (if any) it performed, and the metadata used
/// by the weak-transition and happens-before machinery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TransitionLabel {
    /// The thread that stepped.
    pub thread: ThreadId,
    /// The memory action, or `None` for rule Silent.
    pub action: Option<LabeledAction>,
    /// The nonatomic history timestamp read or written, if applicable.
    pub timestamp: Option<Timestamp>,
    /// Whether the transition is weak (Definition 6).
    pub weak: bool,
}

impl TransitionLabel {
    /// True if this transition performed a memory operation.
    pub fn is_memory(&self) -> bool {
        self.action.is_some()
    }
}

impl fmt::Display for TransitionLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.action {
            None => write!(f, "{}: ϵ", self.thread),
            Some(a) => {
                write!(f, "{}: {}", self.thread, a)?;
                if self.weak {
                    write!(f, " (weak)")?;
                }
                Ok(())
            }
        }
    }
}

/// One enabled machine transition: its label and the successor machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transition<E> {
    /// The transition's observable label.
    pub label: TransitionLabel,
    /// The machine after the transition.
    pub target: Machine<E>,
}

impl<E: Expr> Machine<E> {
    /// The initial machine `M₀` for the given thread expressions (§3.1):
    /// initial store, and every thread at the initial frontier.
    pub fn initial(locs: &LocSet, exprs: impl IntoIterator<Item = E>) -> Machine<E> {
        let f0 = Frontier::initial(locs);
        Machine {
            store: Store::initial(locs),
            threads: exprs
                .into_iter()
                .map(|e| ThreadState {
                    frontier: f0.clone(),
                    expr: e,
                })
                .collect(),
        }
    }

    /// The number of threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// True if no thread has an enabled step.
    pub fn is_terminal(&self) -> bool {
        self.threads.iter().all(|t| t.expr.steps().is_empty())
    }

    /// The successor machine of one transition: `store` replaces the
    /// shared store (`None` = unchanged, cloned from `self`), and thread
    /// `ti` gets the new frontier and expression. Building the target
    /// directly — instead of cloning the whole machine and overwriting
    /// the changed parts — keeps the per-transition allocation cost to
    /// exactly what the successor needs: the old hot path cloned (and
    /// immediately dropped) the full store, the acting thread's frontier,
    /// and its expression on every memory transition.
    fn target(&self, ti: usize, store: Option<Store>, frontier: Frontier, expr: E) -> Machine<E> {
        let mut acting = Some(ThreadState { frontier, expr });
        Machine {
            store: store.unwrap_or_else(|| self.store.clone()),
            threads: self
                .threads
                .iter()
                .enumerate()
                .map(|(j, t)| {
                    if j == ti {
                        acting.take().expect("exactly one acting thread")
                    } else {
                        t.clone()
                    }
                })
                .collect(),
        }
    }

    /// Enumerates every enabled machine transition (rules Silent and
    /// Memory, Fig. 1b), including every nondeterministic memory outcome.
    pub fn transitions(&self, locs: &LocSet) -> Vec<Transition<E>> {
        let mut out = Vec::new();
        for (ti, thread) in self.threads.iter().enumerate() {
            let tid = ThreadId(ti as u32);
            for (si, step) in thread.expr.steps().into_iter().enumerate() {
                match step {
                    StepLabel::Silent => {
                        let expr = thread.expr.apply_step(si, Val::INIT);
                        out.push(Transition {
                            label: TransitionLabel {
                                thread: tid,
                                action: None,
                                timestamp: None,
                                weak: false,
                            },
                            target: self.target(ti, None, thread.frontier.clone(), expr),
                        });
                    }
                    StepLabel::Read(loc) => {
                        for r in perform_read(locs, &self.store, &thread.frontier, loc) {
                            let expr = thread.expr.apply_step(si, r.label.action.value());
                            out.push(Transition {
                                label: TransitionLabel {
                                    thread: tid,
                                    action: Some(r.label),
                                    timestamp: r.timestamp,
                                    weak: r.weak,
                                },
                                target: self.target(ti, r.store, r.frontier, expr),
                            });
                        }
                    }
                    StepLabel::Write(loc, x) => {
                        for w in perform_write(locs, &self.store, &thread.frontier, loc, x) {
                            let expr = thread.expr.apply_step(si, Val::INIT);
                            out.push(Transition {
                                label: TransitionLabel {
                                    thread: tid,
                                    action: Some(w.label),
                                    timestamp: w.timestamp,
                                    weak: w.weak,
                                },
                                target: self.target(ti, w.store, w.frontier, expr),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// A minimal [`Expr`] for tests and documentation: a fixed list of labelled
/// steps executed in order, recording values read.
///
/// # Examples
///
/// ```
/// use bdrst_core::loc::{LocSet, LocKind, Val};
/// use bdrst_core::machine::{Machine, RecordedExpr, StepLabel, Expr};
///
/// let mut locs = LocSet::new();
/// let a = locs.fresh("a", LocKind::Nonatomic);
/// let writer = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
/// let reader = RecordedExpr::new(vec![StepLabel::Read(a)]);
/// let m = Machine::initial(&locs, [writer, reader]);
/// assert_eq!(m.transitions(&locs).len(), 2); // write (1 gap) + read (init)
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RecordedExpr {
    program: Vec<StepLabelOwned>,
    pc: usize,
    /// Values observed by the read steps executed so far.
    pub reads: Vec<Val>,
}

// StepLabel is Copy and non-hashable only because of Val? All fields are
// hashable; we store an owned mirror to derive Hash for the whole expr.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum StepLabelOwned {
    Silent,
    Read(Loc),
    Write(Loc, Val),
}

impl From<StepLabel> for StepLabelOwned {
    fn from(s: StepLabel) -> StepLabelOwned {
        match s {
            StepLabel::Silent => StepLabelOwned::Silent,
            StepLabel::Read(l) => StepLabelOwned::Read(l),
            StepLabel::Write(l, v) => StepLabelOwned::Write(l, v),
        }
    }
}

impl RecordedExpr {
    /// A straight-line program over the given steps.
    pub fn new(steps: Vec<StepLabel>) -> RecordedExpr {
        RecordedExpr {
            program: steps.into_iter().map(StepLabelOwned::from).collect(),
            pc: 0,
            reads: Vec::new(),
        }
    }
}

impl Expr for RecordedExpr {
    fn steps(&self) -> Vec<StepLabel> {
        match self.program.get(self.pc) {
            None => vec![],
            Some(StepLabelOwned::Silent) => vec![StepLabel::Silent],
            Some(StepLabelOwned::Read(l)) => vec![StepLabel::Read(*l)],
            Some(StepLabelOwned::Write(l, v)) => vec![StepLabel::Write(*l, *v)],
        }
    }

    fn apply_step(&self, index: usize, read_value: Val) -> RecordedExpr {
        assert_eq!(index, 0, "straight-line programs have one enabled step");
        let mut next = self.clone();
        if matches!(self.program[self.pc], StepLabelOwned::Read(_)) {
            next.reads.push(read_value);
        }
        next.pc += 1;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::{Action, LocKind};

    fn locs2() -> (LocSet, Loc, Loc) {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        (locs, a, f)
    }

    #[test]
    fn initial_machine_is_not_terminal() {
        let (locs, a, _) = locs2();
        let m = Machine::initial(&locs, [RecordedExpr::new(vec![StepLabel::Read(a)])]);
        assert!(!m.is_terminal());
        assert_eq!(m.thread_count(), 1);
    }

    #[test]
    fn empty_program_is_terminal() {
        let (locs, _, _) = locs2();
        let m = Machine::initial(&locs, [RecordedExpr::new(vec![])]);
        assert!(m.is_terminal());
        assert!(m.transitions(&locs).is_empty());
    }

    #[test]
    fn read_of_initial_value() {
        let (locs, a, _) = locs2();
        let m = Machine::initial(&locs, [RecordedExpr::new(vec![StepLabel::Read(a)])]);
        let ts = m.transitions(&locs);
        assert_eq!(ts.len(), 1);
        let l = ts[0].label;
        assert_eq!(l.thread, ThreadId(0));
        assert_eq!(l.action.unwrap().action, Action::Read(Val::INIT));
        assert!(!l.weak);
        assert!(ts[0].target.is_terminal());
        assert_eq!(ts[0].target.threads[0].expr.reads, vec![Val::INIT]);
    }

    #[test]
    fn message_passing_via_atomic() {
        // P0: a = 1; F = 1        P1: r0 = F; r1 = a
        // If P1 reads F == 1 then it must read a == 1.
        let (locs, a, f) = locs2();
        let p0 = RecordedExpr::new(vec![
            StepLabel::Write(a, Val(1)),
            StepLabel::Write(f, Val(1)),
        ]);
        let p1 = RecordedExpr::new(vec![StepLabel::Read(f), StepLabel::Read(a)]);
        let m0 = Machine::initial(&locs, [p0, p1]);

        // Exhaustive DFS collecting terminal read pairs.
        let mut terminals = Vec::new();
        let mut stack = vec![m0];
        while let Some(m) = stack.pop() {
            if m.is_terminal() {
                terminals.push(m.threads[1].expr.reads.clone());
                continue;
            }
            for t in m.transitions(&locs) {
                stack.push(t.target);
            }
        }
        // flag=1 ⇒ a=1: the outcome [1, 0] must be absent.
        assert!(terminals.contains(&vec![Val(1), Val(1)]));
        assert!(terminals.contains(&vec![Val(0), Val(0)]));
        assert!(terminals.contains(&vec![Val(0), Val(1)]));
        assert!(!terminals.contains(&vec![Val(1), Val(0)]), "MP violation");
    }

    #[test]
    fn transition_label_display() {
        let l = TransitionLabel {
            thread: ThreadId(1),
            action: None,
            timestamp: None,
            weak: false,
        };
        assert_eq!(format!("{l}"), "P1: ϵ");
    }
}
