//! Traces, happens-before, data races and L-sequentiality (§3.2, §4).
//!
//! A trace `Σ = M₀ —T₁→ M₁ —T₂→ … —Tₙ→ Mₙ` is a finite sequence of machine
//! transitions from the initial state (Definition 5); every prefix of a
//! trace is a trace. Over a trace we define:
//!
//! * **happens-before** (Definition 8): the smallest transitive relation
//!   relating `Tᵢ, Tⱼ` (`i < j`) when they are on the same thread, or when
//!   `Tᵢ` is a write and `Tⱼ` a read or write to the same atomic location;
//! * **conflicting transitions** (Definition 9): same nonatomic location,
//!   at least one write;
//! * **data race** (Definition 10): conflicting and unordered by
//!   happens-before;
//! * **sequential consistency** (Definition 7): no weak transitions;
//! * **L-sequentiality** (Definition 11): weak only outside `L`.

use std::collections::BTreeSet;

use crate::loc::{Loc, LocKind, LocSet};
use crate::machine::TransitionLabel;
use crate::relation::Relation;

/// A set of locations `L`, the parameter of the local-DRF machinery.
pub type LocPredicate = BTreeSet<Loc>;

/// The label sequence of a trace (the machines themselves are not needed
/// for happens-before or race analysis).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TraceLabels {
    labels: Vec<TransitionLabel>,
}

impl TraceLabels {
    /// An empty trace.
    pub fn new() -> TraceLabels {
        TraceLabels::default()
    }

    /// Builds from a label sequence.
    pub fn from_labels(labels: Vec<TransitionLabel>) -> TraceLabels {
        TraceLabels { labels }
    }

    /// Appends one transition.
    pub fn push(&mut self, label: TransitionLabel) {
        self.labels.push(label);
    }

    /// Removes and returns the last transition.
    pub fn pop(&mut self) -> Option<TransitionLabel> {
        self.labels.pop()
    }

    /// The transitions in order.
    pub fn labels(&self) -> &[TransitionLabel] {
        &self.labels
    }

    /// The number of transitions.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if no transitions have been taken.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Definition 7: a trace is sequentially consistent iff it contains no
    /// weak transitions.
    pub fn is_sequentially_consistent(&self) -> bool {
        self.labels.iter().all(|l| !l.weak)
    }

    /// Definition 11 lifted to traces: every transition is L-sequential.
    pub fn is_l_sequential(&self, l_set: &LocPredicate) -> bool {
        self.labels.iter().all(|t| is_l_sequential(t, l_set))
    }

    /// The happens-before relation of Definition 8, as a relation over
    /// transition indices `0..len()`.
    ///
    /// `locs` is needed to distinguish atomic locations.
    pub fn happens_before(&self, locs: &LocSet) -> Relation {
        let n = self.labels.len();
        let mut hb = Relation::new(n);
        for j in 0..n {
            for i in 0..j {
                let ti = &self.labels[i];
                let tj = &self.labels[j];
                let same_thread = ti.thread == tj.thread;
                let atomic_edge = match (ti.action, tj.action) {
                    (Some(ai), Some(aj)) => {
                        ai.loc == aj.loc
                            && locs.kind(ai.loc) == LocKind::Atomic
                            && ai.action.is_write()
                    }
                    _ => false,
                };
                if same_thread || atomic_edge {
                    hb.insert(i, j);
                }
            }
        }
        hb.transitive_closure()
    }

    /// Definition 9: indices of every conflicting pair `(i, j)`, `i < j`.
    pub fn conflicting_pairs(&self, locs: &LocSet) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for j in 0..self.labels.len() {
            for i in 0..j {
                if conflicting(&self.labels[i], &self.labels[j], locs) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Definition 10: all data races `(i, j)` — conflicting pairs with
    /// `i < j` where `Tᵢ` does not happen-before `Tⱼ`.
    pub fn data_races(&self, locs: &LocSet) -> Vec<(usize, usize)> {
        let hb = self.happens_before(locs);
        self.conflicting_pairs(locs)
            .into_iter()
            .filter(|(i, j)| !hb.contains(*i, *j))
            .collect()
    }

    /// True if the trace contains at least one data race.
    pub fn has_data_race(&self, locs: &LocSet) -> bool {
        !self.data_races(locs).is_empty()
    }
}

/// Definition 9 on two labels: both access the same nonatomic location and
/// at least one is a write.
pub fn conflicting(t1: &TransitionLabel, t2: &TransitionLabel, locs: &LocSet) -> bool {
    match (t1.action, t2.action) {
        (Some(a1), Some(a2)) => {
            a1.loc == a2.loc
                && locs.kind(a1.loc) == LocKind::Nonatomic
                && (a1.action.is_write() || a2.action.is_write())
        }
        _ => false,
    }
}

/// Definition 11: a transition is L-sequential if it is not weak, or if it
/// is weak on a location outside `L`.
pub fn is_l_sequential(t: &TransitionLabel, l_set: &LocPredicate) -> bool {
    if !t.weak {
        return true;
    }
    match t.action {
        Some(a) => !l_set.contains(&a.loc),
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::{Action, LabeledAction, Val};
    use crate::machine::ThreadId;

    fn locs3() -> (LocSet, Loc, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        let f = l.fresh("F", LocKind::Atomic);
        (l, a, b, f)
    }

    fn lbl(thread: u32, loc: Loc, action: Action, weak: bool) -> TransitionLabel {
        TransitionLabel {
            thread: ThreadId(thread),
            action: Some(LabeledAction { loc, action }),
            timestamp: None,
            weak,
        }
    }

    #[test]
    fn same_thread_is_ordered() {
        let (locs, a, b, _) = locs3();
        let tr = TraceLabels::from_labels(vec![
            lbl(0, a, Action::Write(Val(1)), false),
            lbl(0, b, Action::Write(Val(1)), false),
        ]);
        let hb = tr.happens_before(&locs);
        assert!(hb.contains(0, 1));
        assert!(!hb.contains(1, 0));
    }

    #[test]
    fn atomic_write_orders_later_reads() {
        let (locs, a, _, f) = locs3();
        let tr = TraceLabels::from_labels(vec![
            lbl(0, a, Action::Write(Val(1)), false), // T0
            lbl(0, f, Action::Write(Val(1)), false), // T1 release
            lbl(1, f, Action::Read(Val(1)), false),  // T2 acquire
            lbl(1, a, Action::Read(Val(1)), false),  // T3
        ]);
        let hb = tr.happens_before(&locs);
        // Transitivity: T0 hb T3 via the atomic edge T1→T2.
        assert!(hb.contains(0, 3));
        assert!(hb.contains(1, 2));
        // No data race: the conflicting pair (0,3) is ordered.
        assert!(tr.data_races(&locs).is_empty());
    }

    #[test]
    fn atomic_read_does_not_order_later_write() {
        // Definition 8 only has write→(read|write) atomic edges.
        let (locs, _, _, f) = locs3();
        let tr = TraceLabels::from_labels(vec![
            lbl(0, f, Action::Read(Val(0)), false),
            lbl(1, f, Action::Write(Val(1)), false),
        ]);
        let hb = tr.happens_before(&locs);
        assert!(!hb.contains(0, 1));
        assert!(!hb.contains(1, 0));
        // But not a data race: f is atomic.
        assert!(tr.data_races(&locs).is_empty());
    }

    #[test]
    fn unsynchronised_writes_race() {
        let (locs, a, _, _) = locs3();
        let tr = TraceLabels::from_labels(vec![
            lbl(0, a, Action::Write(Val(1)), false),
            lbl(1, a, Action::Write(Val(2)), false),
        ]);
        assert_eq!(tr.data_races(&locs), vec![(0, 1)]);
        assert!(tr.has_data_race(&locs));
    }

    #[test]
    fn reads_do_not_race_with_reads() {
        let (locs, a, _, _) = locs3();
        let tr = TraceLabels::from_labels(vec![
            lbl(0, a, Action::Read(Val(0)), false),
            lbl(1, a, Action::Read(Val(0)), false),
        ]);
        assert!(tr.conflicting_pairs(&locs).is_empty());
        assert!(tr.data_races(&locs).is_empty());
    }

    #[test]
    fn sc_and_l_sequential() {
        let (locs, a, b, _) = locs3();
        let weak_on_a = lbl(0, a, Action::Read(Val(0)), true);
        let strong_on_b = lbl(1, b, Action::Write(Val(1)), false);
        let tr = TraceLabels::from_labels(vec![weak_on_a, strong_on_b]);
        assert!(!tr.is_sequentially_consistent());
        // L = {b}: the weak transition is on a ∉ L, so the trace is
        // L-sequential.
        let l_b: LocPredicate = [b].into_iter().collect();
        assert!(tr.is_l_sequential(&l_b));
        let l_a: LocPredicate = [a].into_iter().collect();
        assert!(!tr.is_l_sequential(&l_a));
        let _ = locs;
    }

    #[test]
    fn silent_transitions_are_never_racy() {
        let (locs, _, _, _) = locs3();
        let silent = TransitionLabel {
            thread: ThreadId(0),
            action: None,
            timestamp: None,
            weak: false,
        };
        let tr = TraceLabels::from_labels(vec![silent, silent]);
        assert!(tr.conflicting_pairs(&locs).is_empty());
        assert!(tr.is_sequentially_consistent());
    }
}
