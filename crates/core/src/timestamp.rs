//! Dense rational timestamps.
//!
//! Following the paper (§3, after Kang et al.), timestamps are rational
//! numbers: totally ordered but *dense*, so that a fresh timestamp can be
//! placed strictly between any two existing ones. This is what lets
//! [`Write-NA`](crate::memop) insert a write into the middle of a history
//! when the writing thread's frontier is behind other threads' writes.
//!
//! We implement exact rational arithmetic (no floats anywhere in the
//! semantics) with `i64` numerator/denominator, normalised so that
//! equal rationals have equal representations, and comparison by `i128`
//! cross-multiplication so intermediate products cannot overflow.

use std::cmp::Ordering;
use std::fmt;

use crate::wire::{Codec, Reader, WireError};

/// An exact rational number `num / den` with `den > 0`, stored in lowest
/// terms.
///
/// # Examples
///
/// ```
/// use bdrst_core::timestamp::Ratio;
///
/// let half = Ratio::new(1, 2);
/// let third = Ratio::new(1, 3);
/// assert!(third < half);
/// let mid = third.midpoint(half);
/// assert!(third < mid && mid < half);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i64,
    den: i64,
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates the rational `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Ratio {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Ratio {
            num: sign * (num / g),
            den: (den / g).abs(),
        }
    }

    /// Creates the rational `n / 1`.
    pub fn from_integer(n: i64) -> Ratio {
        Ratio { num: n, den: 1 }
    }

    /// The numerator of the normalised representation.
    pub fn numer(self) -> i64 {
        self.num
    }

    /// The denominator of the normalised representation (always positive).
    pub fn denom(self) -> i64 {
        self.den
    }

    /// Exact midpoint `(self + other) / 2`; strictly between distinct inputs.
    pub fn midpoint(self, other: Ratio) -> Ratio {
        // (a/b + c/d)/2 = (ad + cb) / 2bd, computed in i128 then reduced.
        let n = (self.num as i128) * (other.den as i128) + (other.num as i128) * (self.den as i128);
        let d = 2i128 * (self.den as i128) * (other.den as i128);
        Ratio::from_i128(n, d)
    }

    /// The rational plus one: convenient for "any timestamp after the max".
    pub fn succ(self) -> Ratio {
        Ratio {
            num: self.num + self.den,
            den: self.den,
        }
    }

    fn from_i128(num: i128, den: i128) -> Ratio {
        fn gcd128(mut a: i128, mut b: i128) -> i128 {
            a = a.abs();
            b = b.abs();
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd128(num, den).max(1);
        let num = sign * (num / g);
        let den = (den / g).abs();
        assert!(
            num <= i64::MAX as i128 && num >= i64::MIN as i128 && den <= i64::MAX as i128,
            "rational overflow after reduction"
        );
        Ratio {
            num: num as i64,
            den: den as i64,
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // a/b ? c/d  <=>  ad ? cb   (b, d > 0)
        let lhs = (self.num as i128) * (other.den as i128);
        let rhs = (other.num as i128) * (self.den as i128);
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Default for Ratio {
    fn default() -> Ratio {
        Ratio::ZERO
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Ratio {
        Ratio::from_integer(n)
    }
}

impl Codec for Ratio {
    fn encode(&self, out: &mut Vec<u8>) {
        self.num.encode(out);
        self.den.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Ratio, WireError> {
        // Decode-side gcd over unsigned magnitudes: the signed `gcd`
        // above calls `abs()`, which overflows (panics in debug) on
        // i64::MIN — and corrupt wire input must become a `WireError`,
        // never a panic. `unsigned_abs` is total.
        fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        let num = i64::decode(r)?;
        let den = i64::decode(r)?;
        // Encodings are canonical: positive denominator, lowest terms.
        // Anything else is corruption, not an alternate spelling.
        if den <= 0 || gcd_u64(num.unsigned_abs(), den.unsigned_abs()) != 1 {
            return Err(WireError::Invalid("non-canonical ratio"));
        }
        Ok(Ratio { num, den })
    }
}

/// A timestamp `t ∈ Q` attached to a write in a location's history.
///
/// Timestamps are totally ordered and dense ([`Timestamp::midpoint`]);
/// the initial write of every location has [`Timestamp::ZERO`].
///
/// # Examples
///
/// ```
/// use bdrst_core::timestamp::Timestamp;
///
/// let t0 = Timestamp::ZERO;
/// let t1 = t0.succ();
/// let mid = t0.midpoint(t1);
/// assert!(t0 < mid && mid < t1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub Ratio);

impl Timestamp {
    /// The timestamp of initial writes.
    pub const ZERO: Timestamp = Timestamp(Ratio::ZERO);

    /// A timestamp strictly between `self` and `other`.
    pub fn midpoint(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0.midpoint(other.0))
    }

    /// A timestamp strictly greater than `self`.
    pub fn succ(self) -> Timestamp {
        Timestamp(self.0.succ())
    }
}

impl Codec for Timestamp {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Timestamp, WireError> {
        Ok(Timestamp(Ratio::decode(r)?))
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_codec_round_trips_and_rejects_corruption() {
        // Extreme magnitudes round-trip (i64::MIN has no signed abs).
        for r in [
            Ratio::ZERO,
            Ratio::new(1, 2),
            Ratio::from_integer(i64::MIN),
            Ratio::new(-3, 7),
        ] {
            let mut buf = Vec::new();
            r.encode(&mut buf);
            assert_eq!(Ratio::decode(&mut Reader::new(&buf)).unwrap(), r);
        }
        // Non-canonical encodings are errors, never panics: zero or
        // negative denominators, non-lowest terms, and the i64::MIN
        // numerator with a shared factor (the signed-abs overflow case).
        for (num, den) in [(1i64, 0i64), (1, -2), (2, 4), (i64::MIN, 2)] {
            let mut buf = Vec::new();
            num.encode(&mut buf);
            den.encode(&mut buf);
            assert!(
                Ratio::decode(&mut Reader::new(&buf)).is_err(),
                "{num}/{den} decoded"
            );
        }
    }

    #[test]
    fn normalisation() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert!(Ratio::new(7, 2) > Ratio::from_integer(3));
        assert_eq!(Ratio::new(3, 6).cmp(&Ratio::new(1, 2)), Ordering::Equal);
    }

    #[test]
    fn midpoint_is_strictly_between() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(2, 3);
        let m = a.midpoint(b);
        assert!(a < m && m < b);
        assert_eq!(m, Ratio::new(1, 2));
    }

    #[test]
    fn midpoint_of_equal_is_same() {
        let a = Ratio::new(5, 7);
        assert_eq!(a.midpoint(a), a);
    }

    #[test]
    fn succ_is_greater() {
        let a = Ratio::new(5, 7);
        assert!(a.succ() > a);
        assert_eq!(Ratio::ZERO.succ(), Ratio::ONE);
    }

    #[test]
    fn timestamp_zero_is_minimum_of_initials() {
        let t = Timestamp::ZERO;
        assert!(t.succ() > t);
        assert!(t.midpoint(t.succ()) > t);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Ratio::new(1, 2)), "1/2");
        assert_eq!(format!("{}", Ratio::from_integer(4)), "4");
        assert_eq!(format!("{}", Timestamp::ZERO), "t0");
    }

    #[test]
    fn large_values_no_overflow() {
        let a = Ratio::new(i64::MAX / 2, 3);
        let b = Ratio::new(i64::MAX / 2 - 1, 3);
        assert!(b < a);
        let m = b.midpoint(a);
        assert!(b < m && m < a);
    }
}
