//! Exhaustive exploration of the operational semantics.
//!
//! Two modes:
//!
//! * **State-space exploration** ([`reachable_terminals`], [`reachable_states`])
//!   deduplicates machines up to *timestamp renaming*: two stores that
//!   differ only in the rational representatives of their timestamps are
//!   observationally identical, so each location's timestamps are replaced
//!   by their rank before hashing. Used for outcome enumeration.
//!
//! * **Trace enumeration** ([`for_each_trace`]) walks every trace (up to a
//!   configurable budget) carrying the [`TraceLabels`]; data races and
//!   happens-before are trace-dependent, so the DRF checkers use this mode.

use std::collections::HashSet;
use std::hash::Hash;

use crate::loc::{LocKind, LocSet, Val};
use crate::machine::{Expr, Machine, Transition};
use crate::trace::TraceLabels;

/// Budgets for exploration. The defaults are generous for litmus-scale
/// programs while guaranteeing termination on accidental state explosions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExploreConfig {
    /// Maximum number of distinct canonical states to visit.
    pub max_states: usize,
    /// Maximum number of trace prefixes to enumerate in trace mode.
    pub max_traces: usize,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig { max_states: 1_000_000, max_traces: 10_000_000 }
    }
}

/// Error returned when an exploration exceeds its [`ExploreConfig`] budget.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BudgetExceeded {
    /// The number of states or traces visited before giving up.
    pub visited: usize,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exploration budget exceeded after {} items", self.visited)
    }
}

impl std::error::Error for BudgetExceeded {}

/// The canonical (timestamp-renamed) form of a location's contents.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum CanonLoc {
    /// Nonatomic: history values in timestamp order.
    Na(Vec<Val>),
    /// Atomic: current value plus the location frontier as per-location ranks.
    At(Val, Vec<u32>),
}

/// A machine up to timestamp renaming; hashable for dedup.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonState<E> {
    store: Vec<CanonLoc>,
    threads: Vec<(Vec<u32>, E)>,
}

/// Computes the canonical form of a machine: all timestamps are replaced by
/// their rank within the owning location's history.
pub fn canonicalize<E: Expr>(locs: &LocSet, m: &Machine<E>) -> CanonState<E> {
    let rank_frontier = |f: &crate::frontier::Frontier| -> Vec<u32> {
        locs.iter()
            .map(|l| match locs.kind(l) {
                LocKind::Nonatomic => m
                    .store
                    .history(l)
                    .rank_of(f.get(l))
                    .expect("frontier timestamp must be in history") as u32,
                LocKind::Atomic => 0,
            })
            .collect()
    };
    let store = locs
        .iter()
        .map(|l| match locs.kind(l) {
            LocKind::Nonatomic => {
                CanonLoc::Na(m.store.history(l).iter().map(|(_, v)| v).collect())
            }
            LocKind::Atomic => {
                let (f, v) = m.store.atomic(l);
                CanonLoc::At(v, rank_frontier(f))
            }
        })
        .collect();
    let threads = m
        .threads
        .iter()
        .map(|t| (rank_frontier(&t.frontier), t.expr.clone()))
        .collect();
    CanonState { store, threads }
}

/// Statistics of a finished exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExploreStats {
    /// Distinct canonical states visited (state mode) or trace prefixes
    /// enumerated (trace mode).
    pub visited: usize,
    /// Transitions examined.
    pub transitions: usize,
}

/// Explores the full state space from `m0`, returning all *terminal*
/// machines (no thread can step), deduplicated canonically.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] if more than `config.max_states` canonical
/// states are reachable.
pub fn reachable_terminals<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: ExploreConfig,
) -> Result<Vec<Machine<E>>, BudgetExceeded> {
    let mut terminals = Vec::new();
    let mut terminal_keys = HashSet::new();
    reachable_states(locs, m0, config, |m| {
        if m.is_terminal() && terminal_keys.insert(canonicalize(locs, m)) {
            terminals.push(m.clone());
        }
    })?;
    Ok(terminals)
}

/// Explores the full state space from `m0`, invoking `visit` once per
/// distinct canonical state (including `m0` and terminals).
///
/// # Errors
///
/// Returns [`BudgetExceeded`] if the state budget is exhausted.
pub fn reachable_states<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: ExploreConfig,
    mut visit: impl FnMut(&Machine<E>),
) -> Result<ExploreStats, BudgetExceeded> {
    let mut seen: HashSet<CanonState<E>> = HashSet::new();
    let mut stack = vec![m0];
    let mut stats = ExploreStats::default();
    while let Some(m) = stack.pop() {
        if !seen.insert(canonicalize(locs, &m)) {
            continue;
        }
        if seen.len() > config.max_states {
            return Err(BudgetExceeded { visited: seen.len() });
        }
        stats.visited += 1;
        visit(&m);
        for t in m.transitions(locs) {
            stats.transitions += 1;
            stack.push(t.target);
        }
    }
    Ok(stats)
}

/// What a [`for_each_trace`] visitor asks the explorer to do next.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Visit {
    /// Keep extending this trace.
    Continue,
    /// Do not extend this trace (but keep exploring siblings).
    Prune,
    /// Abort the whole exploration.
    Stop,
}

/// Enumerates traces from `m0` in depth-first order.
///
/// `step_filter` selects which transitions may be taken (e.g. only
/// L-sequential ones); `visit` is called after each extension with the
/// current trace labels, the transition just taken, and the machine
/// reached. Every prefix of a trace is itself a trace (Definition 5), so
/// the visitor sees each prefix exactly once.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] if more than `config.max_traces` trace
/// extensions are made.
pub fn for_each_trace<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: ExploreConfig,
    mut step_filter: impl FnMut(&Transition<E>) -> bool,
    mut visit: impl FnMut(&TraceLabels, &Transition<E>) -> Visit,
) -> Result<ExploreStats, BudgetExceeded> {
    let mut stats = ExploreStats::default();
    let mut trace = TraceLabels::new();
    let stopped = dfs(locs, &m0, config, &mut trace, &mut step_filter, &mut visit, &mut stats)?;
    let _ = stopped;
    Ok(stats)
}

fn dfs<E: Expr>(
    locs: &LocSet,
    m: &Machine<E>,
    config: ExploreConfig,
    trace: &mut TraceLabels,
    step_filter: &mut impl FnMut(&Transition<E>) -> bool,
    visit: &mut impl FnMut(&TraceLabels, &Transition<E>) -> Visit,
    stats: &mut ExploreStats,
) -> Result<bool, BudgetExceeded> {
    for t in m.transitions(locs) {
        stats.transitions += 1;
        if !step_filter(&t) {
            continue;
        }
        stats.visited += 1;
        if stats.visited > config.max_traces {
            return Err(BudgetExceeded { visited: stats.visited });
        }
        trace.push(t.label);
        let verdict = visit(trace, &t);
        let stop = match verdict {
            Visit::Stop => true,
            Visit::Prune => false,
            Visit::Continue => dfs(locs, &t.target, config, trace, step_filter, visit, stats)?,
        };
        trace.pop();
        if stop {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::Loc;
    use crate::machine::{RecordedExpr, StepLabel};

    fn locs_ab() -> (LocSet, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        (l, a, b)
    }

    #[test]
    fn store_buffering_all_four_outcomes() {
        // SB: P0: a=1; r0=b   P1: b=1; r1=a — all four outcomes are
        // sequentially explicable here? Under SC only 3; under this model
        // r0=0, r1=0 requires weak reads... actually both reads CAN be
        // stale: each reader's frontier knows nothing of the other's write.
        let (locs, a, b) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let terms = reachable_terminals(&locs, m0, ExploreConfig::default()).unwrap();
        let outcomes: HashSet<(Val, Val)> = terms
            .iter()
            .map(|m| (m.threads[0].expr.reads[0], m.threads[1].expr.reads[0]))
            .collect();
        // Racy programs admit all four outcomes (weak reads allowed).
        for o in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            assert!(outcomes.contains(&(Val(o.0), Val(o.1))), "missing {o:?}");
        }
    }

    #[test]
    fn canonicalization_merges_timestamp_variants() {
        // Two threads writing to the same location in either order reach
        // stores with different rationals but (for the same value order)
        // identical canonical forms.
        let (locs, a, _) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let terms = reachable_terminals(&locs, m0, ExploreConfig::default()).unwrap();
        // Terminal stores: histories [0,1,2] or [0,2,1] — exactly two
        // canonical classes.
        assert_eq!(terms.len(), 2);
    }

    #[test]
    fn trace_enumeration_sees_all_interleavings() {
        let (locs, a, b) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let mut complete = 0;
        for_each_trace(
            &locs,
            m0,
            ExploreConfig::default(),
            |_| true,
            |tr, t| {
                if tr.len() == 2 && t.target.is_terminal() {
                    complete += 1;
                }
                Visit::Continue
            },
        )
        .unwrap();
        // Independent writes to different locations: 2 interleavings.
        assert_eq!(complete, 2);
    }

    #[test]
    fn budget_is_enforced() {
        let (locs, a, _) = locs_ab();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        let tiny = ExploreConfig { max_states: 10, max_traces: 10 };
        assert!(reachable_terminals(&locs, m0.clone(), tiny).is_err());
        let r = for_each_trace(&locs, m0, tiny, |_| true, |_, _| Visit::Continue);
        assert!(r.is_err());
    }

    #[test]
    fn visit_stop_aborts() {
        let (locs, a, _) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 4]);
        let m0 = Machine::initial(&locs, [p0]);
        let mut seen = 0;
        for_each_trace(
            &locs,
            m0,
            ExploreConfig::default(),
            |_| true,
            |_, _| {
                seen += 1;
                Visit::Stop
            },
        )
        .unwrap();
        assert_eq!(seen, 1);
    }
}
