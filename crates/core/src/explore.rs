//! Exhaustive exploration of the operational semantics — the convenience
//! layer over [`crate::engine`].
//!
//! Two modes:
//!
//! * **State-space exploration** ([`reachable_terminals`], [`reachable_states`])
//!   deduplicates machines up to *timestamp renaming*: two stores that
//!   differ only in the rational representatives of their timestamps are
//!   observationally identical, so each location's timestamps are replaced
//!   by their rank before hashing. Used for outcome enumeration.
//!
//! * **Trace enumeration** ([`for_each_trace`]) walks every trace (up to a
//!   configurable budget) carrying the [`TraceLabels`]; data races and
//!   happens-before are trace-dependent, so the DRF checkers use this mode.
//!
//! These functions are thin wrappers: the engines themselves (iterative
//! worklist, interned canonical states, parallel frontier expansion) live
//! in [`crate::engine`], and checkers that need to steer the search
//! implement [`crate::engine::StateVisitor`] / [`crate::engine::TraceVisitor`]
//! directly.

use crate::engine::{
    Control, EngineError, Explorer, SearchOrder, StateId, Strategy, TraceEngine, TraceVisitor,
    WorklistEngine,
};
use crate::loc::LocSet;
use crate::machine::{Expr, Machine, Transition};
use crate::trace::TraceLabels;

pub use crate::engine::canonicalize;
pub use crate::engine::CanonState;
/// Visitor verdicts (the engine's [`Control`], re-exported under the
/// historical name used by trace visitors).
pub use crate::engine::Control as Visit;
/// Budget configuration (the engine's [`crate::engine::EngineConfig`],
/// re-exported under its historical name).
pub use crate::engine::EngineConfig as ExploreConfig;
pub use crate::engine::ExploreStats;

/// Explores the full state space from `m0`, returning all *terminal*
/// machines (no thread can step), deduplicated canonically.
///
/// Uses the sequential depth-first engine; [`reachable_terminals_with`]
/// selects other engines.
///
/// # Errors
///
/// Returns [`EngineError::BudgetExceeded`] if more than `config.max_states`
/// canonical states are reachable, or [`EngineError::CorruptFrontier`] on a
/// corrupted machine.
pub fn reachable_terminals<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: ExploreConfig,
) -> Result<Vec<Machine<E>>, EngineError> {
    let engine = WorklistEngine::new(config, SearchOrder::Dfs);
    collect_terminals(&engine, locs, m0)
}

/// [`reachable_terminals`] with an explicit engine [`Strategy`]
/// (DFS / BFS / parallel / DPOR). All strategies return the same
/// canonical terminal set; only discovery order — and, for
/// [`Strategy::Dpor`], the number of traces explored to find it —
/// differs.
///
/// # Errors
///
/// As [`reachable_terminals`].
pub fn reachable_terminals_with<E: Expr + Send + Sync>(
    locs: &LocSet,
    m0: Machine<E>,
    config: ExploreConfig,
    strategy: Strategy,
) -> Result<Vec<Machine<E>>, EngineError> {
    if strategy == Strategy::Dpor {
        // The reduced walk reaches every terminal through one
        // representative trace per equivalence class instead of visiting
        // every canonical state.
        let (terminals, _) = crate::engine::dpor_reachable_terminals(
            locs,
            m0,
            config,
            crate::engine::Dependence::Observational,
        )?;
        return Ok(terminals);
    }
    let engine = crate::engine::explorer::<E>(strategy, config);
    collect_terminals(engine.as_ref(), locs, m0)
}

fn collect_terminals<E: Expr>(
    engine: &dyn Explorer<E>,
    locs: &LocSet,
    m0: Machine<E>,
) -> Result<Vec<Machine<E>>, EngineError> {
    let mut terminals = Vec::new();
    engine.explore(locs, m0, &mut |m: &Machine<E>, _id: StateId| {
        if m.is_terminal() {
            terminals.push(m.clone());
        }
        Control::Continue
    })?;
    Ok(terminals)
}

/// Explores the full state space from `m0`, invoking `visit` once per
/// distinct canonical state (including `m0` and terminals).
///
/// # Errors
///
/// Returns [`EngineError`] if the state budget is exhausted or a machine
/// fails to canonicalize.
pub fn reachable_states<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: ExploreConfig,
    mut visit: impl FnMut(&Machine<E>),
) -> Result<ExploreStats, EngineError> {
    let engine = WorklistEngine::new(config, SearchOrder::Dfs);
    engine.explore(locs, m0, &mut |m: &Machine<E>, _id: StateId| {
        visit(m);
        Control::Continue
    })
}

/// Adapts a `(step_filter, visit)` closure pair to [`TraceVisitor`].
struct ClosureTraceVisitor<F, V> {
    filter: F,
    visit: V,
}

impl<E, F, V> TraceVisitor<E> for ClosureTraceVisitor<F, V>
where
    E: Expr,
    F: FnMut(&Transition<E>) -> bool,
    V: FnMut(&TraceLabels, &Transition<E>) -> Visit,
{
    fn step_filter(&mut self, transition: &Transition<E>) -> bool {
        (self.filter)(transition)
    }

    fn visit(&mut self, trace: &TraceLabels, transition: &Transition<E>) -> Control {
        (self.visit)(trace, transition)
    }
}

/// Enumerates traces from `m0` in depth-first order.
///
/// `step_filter` selects which transitions may be taken (e.g. only
/// L-sequential ones); `visit` is called after each extension with the
/// current trace labels, the transition just taken, and the machine
/// reached. Every prefix of a trace is itself a trace (Definition 5), so
/// the visitor sees each prefix exactly once.
///
/// # Errors
///
/// Returns [`EngineError::BudgetExceeded`] if more than `config.max_traces`
/// trace extensions are made.
pub fn for_each_trace<E: Expr>(
    locs: &LocSet,
    m0: Machine<E>,
    config: ExploreConfig,
    step_filter: impl FnMut(&Transition<E>) -> bool,
    visit: impl FnMut(&TraceLabels, &Transition<E>) -> Visit,
) -> Result<ExploreStats, EngineError> {
    let mut visitor = ClosureTraceVisitor {
        filter: step_filter,
        visit,
    };
    TraceEngine::new(config).explore(locs, m0, &mut visitor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::{Loc, LocKind, Val};
    use crate::machine::{RecordedExpr, StepLabel};
    use std::collections::HashSet;

    fn locs_ab() -> (LocSet, Loc, Loc) {
        let mut l = LocSet::new();
        let a = l.fresh("a", LocKind::Nonatomic);
        let b = l.fresh("b", LocKind::Nonatomic);
        (l, a, b)
    }

    #[test]
    fn store_buffering_all_four_outcomes() {
        // SB: P0: a=1; r0=b   P1: b=1; r1=a — both reads CAN be stale:
        // each reader's frontier knows nothing of the other's write.
        let (locs, a, b) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let terms = reachable_terminals(&locs, m0, ExploreConfig::default()).unwrap();
        let outcomes: HashSet<(Val, Val)> = terms
            .iter()
            .map(|m| (m.threads[0].expr.reads[0], m.threads[1].expr.reads[0]))
            .collect();
        // Racy programs admit all four outcomes (weak reads allowed).
        for o in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            assert!(outcomes.contains(&(Val(o.0), Val(o.1))), "missing {o:?}");
        }
    }

    #[test]
    fn canonicalization_merges_timestamp_variants() {
        // Two threads writing to the same location in either order reach
        // stores with different rationals but (for the same value order)
        // identical canonical forms.
        let (locs, a, _) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(a, Val(2))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let terms = reachable_terminals(&locs, m0, ExploreConfig::default()).unwrap();
        // Terminal stores: histories [0,1,2] or [0,2,1] — exactly two
        // canonical classes.
        assert_eq!(terms.len(), 2);
    }

    #[test]
    fn all_strategies_agree_on_terminals() {
        let (locs, a, b) = locs_ab();
        let mk = || {
            let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
            let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
            Machine::initial(&locs, [p0, p1])
        };
        let outcome_set = |strategy| {
            let terms =
                reachable_terminals_with(&locs, mk(), ExploreConfig::default(), strategy).unwrap();
            terms
                .iter()
                .map(|m| (m.threads[0].expr.reads[0], m.threads[1].expr.reads[0]))
                .collect::<HashSet<_>>()
        };
        let dfs = outcome_set(Strategy::Dfs);
        assert_eq!(dfs, outcome_set(Strategy::Bfs));
        assert_eq!(dfs, outcome_set(Strategy::Parallel));
        assert_eq!(dfs, outcome_set(Strategy::WorkStealing));
    }

    #[test]
    fn trace_enumeration_sees_all_interleavings() {
        let (locs, a, b) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1))]);
        let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1))]);
        let m0 = Machine::initial(&locs, [p0, p1]);
        let mut complete = 0;
        for_each_trace(
            &locs,
            m0,
            ExploreConfig::default(),
            |_| true,
            |tr, t| {
                if tr.len() == 2 && t.target.is_terminal() {
                    complete += 1;
                }
                Visit::Continue
            },
        )
        .unwrap();
        // Independent writes to different locations: 2 interleavings.
        assert_eq!(complete, 2);
    }

    #[test]
    fn budget_is_enforced() {
        let (locs, a, _) = locs_ab();
        let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
        let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
        let tiny = ExploreConfig {
            max_states: 10,
            max_traces: 10,
        };
        assert!(matches!(
            reachable_terminals(&locs, m0.clone(), tiny),
            Err(EngineError::BudgetExceeded { .. })
        ));
        let r = for_each_trace(&locs, m0, tiny, |_| true, |_, _| Visit::Continue);
        assert!(matches!(r, Err(EngineError::BudgetExceeded { .. })));
    }

    #[test]
    fn visit_stop_aborts() {
        let (locs, a, _) = locs_ab();
        let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 4]);
        let m0 = Machine::initial(&locs, [p0]);
        let mut seen = 0;
        for_each_trace(
            &locs,
            m0,
            ExploreConfig::default(),
            |_| true,
            |_, _| {
                seen += 1;
                Visit::Stop
            },
        )
        .unwrap();
        assert_eq!(seen, 1);
    }
}
