//! The memory-operation relation `C; F —ℓ:ϕ→ C′; F′` (Fig. 1c).
//!
//! Four rules:
//!
//! * **Read-NA** — `H; F —a:read H(t)→ H; F` if `F(a) ≤ t`, `t ∈ dom(H)`:
//!   a nonatomic read may return any history entry not older than the
//!   thread's frontier. Neither the store nor the frontier changes.
//! * **Write-NA** — `H; F —a:write x→ H[t ↦ x]; F[a ↦ t]` if `F(a) < t`,
//!   `t ∉ dom(H)`: a nonatomic write picks a fresh timestamp later than the
//!   writer's frontier (*not* necessarily later than the whole history).
//! * **Read-AT** — `(F_A, x); F —A:read x→ (F_A, x); F_A ⊔ F`: atomic reads
//!   are coherent and merge the location's frontier into the thread's.
//! * **Write-AT** — `(F_A, y); F —A:write x→ (F_A ⊔ F, x); F_A ⊔ F`: atomic
//!   writes merge both frontiers and publish the merge at the location.
//!
//! Because Read-NA and Write-NA are nondeterministic, this module returns
//! *all* outcomes (with Write-NA quotiented to one representative timestamp
//! per history gap — see [`History::write_gaps`]). Each outcome also records
//! whether the transition is *weak* (Definition 6), the raw material of
//! sequential consistency and the local-DRF theorem.

use crate::frontier::Frontier;
use crate::history::History;
use crate::loc::{Action, LabeledAction, Loc, LocKind, LocSet, Val};
use crate::store::{LocContents, Store};
use crate::timestamp::Timestamp;

/// The one-location store change a memory operation makes: rule Memory
/// only ever rewrites `S[ℓ ↦ C′]`, so an operation's effect on the store
/// is exactly this pair — never a rebuilt map. Applying it to the
/// copy-on-write [`Store`] costs the spine plus one slot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoreDelta {
    /// The written location `ℓ`.
    pub loc: Loc,
    /// Its new contents `C′`.
    pub contents: LocContents,
}

/// One outcome of applying a memory operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpResult {
    /// The store change (`S[ℓ ↦ C′]` as a [`StoreDelta`]), or `None`
    /// when the rule leaves the store unchanged — both read rules
    /// (Read-NA and Read-AT only move *frontiers*). Returning the delta
    /// instead of a rebuilt store makes a successor cost O(delta):
    /// [`OpResult::store_after`] (or [`Store::update`] on a cheap clone)
    /// resolves it against the pre-operation store.
    pub delta: Option<StoreDelta>,
    /// The acting thread's frontier after the operation (`F′`).
    pub frontier: Frontier,
    /// The labelled action `ℓ : ϕ` that was performed.
    pub label: LabeledAction,
    /// For nonatomic operations, the history timestamp read or written.
    pub timestamp: Option<Timestamp>,
    /// Whether this is a *weak transition* (Definition 6): a nonatomic read
    /// that does not witness the latest value, or a nonatomic write whose
    /// timestamp is not the new maximum.
    pub weak: bool,
}

impl OpResult {
    /// The store after the operation: a copy-on-write clone of `base`
    /// (the store the operation ran against) with the delta, if any,
    /// applied to its one location.
    pub fn store_after(&self, base: &Store) -> Store {
        let mut store = base.clone();
        if let Some(d) = &self.delta {
            store.update(d.loc, d.contents.clone());
        }
        store
    }
}

/// All outcomes of reading `loc` with thread frontier `frontier`.
///
/// For a nonatomic location this is one outcome per readable history entry
/// (Read-NA); for an atomic location it is the single coherent outcome
/// (Read-AT).
///
/// # Panics
///
/// Panics if `loc` is not declared in `locs` or the store is malformed.
pub fn perform_read(locs: &LocSet, store: &Store, frontier: &Frontier, loc: Loc) -> Vec<OpResult> {
    match locs.kind(loc) {
        LocKind::Nonatomic => {
            let h = store.history(loc);
            let (latest_t, latest_v) = h.latest();
            debug_assert!(frontier.get(loc) <= latest_t, "frontier beyond history");
            h.readable_from(frontier.get(loc))
                .map(|(t, v)| OpResult {
                    delta: None,
                    frontier: frontier.clone(),
                    label: LabeledAction {
                        loc,
                        action: Action::Read(v),
                    },
                    timestamp: Some(t),
                    // Definition 6: weak iff the read does not witness the
                    // latest write's *value*.
                    weak: v != latest_v,
                })
                .collect()
        }
        LocKind::Atomic => {
            let (floc, v) = store.atomic(loc);
            let merged = floc.join(frontier);
            vec![OpResult {
                delta: None,
                frontier: merged,
                label: LabeledAction {
                    loc,
                    action: Action::Read(v),
                },
                timestamp: None,
                weak: false,
            }]
        }
    }
}

/// All outcomes of writing `x` to `loc` with thread frontier `frontier`.
///
/// For a nonatomic location this is one outcome per fresh-timestamp gap
/// (Write-NA); for an atomic location it is the single outcome of Write-AT.
///
/// # Panics
///
/// Panics if `loc` is not declared in `locs` or the store is malformed.
pub fn perform_write(
    locs: &LocSet,
    store: &Store,
    frontier: &Frontier,
    loc: Loc,
    x: Val,
) -> Vec<OpResult> {
    match locs.kind(loc) {
        LocKind::Nonatomic => {
            let h = store.history(loc);
            let (latest_t, _) = h.latest();
            h.write_gaps(frontier.get(loc))
                .into_iter()
                .map(|t| {
                    let mut h2: History = h.clone();
                    h2.insert(t, x);
                    let mut f2 = frontier.clone();
                    f2.advance(loc, t);
                    OpResult {
                        delta: Some(StoreDelta {
                            loc,
                            contents: LocContents::Nonatomic(h2),
                        }),
                        frontier: f2,
                        label: LabeledAction {
                            loc,
                            action: Action::Write(x),
                        },
                        timestamp: Some(t),
                        // Definition 6: weak iff not the latest write.
                        weak: t < latest_t,
                    }
                })
                .collect()
        }
        LocKind::Atomic => {
            let (floc, _) = store.atomic(loc);
            let merged = floc.join(frontier);
            vec![OpResult {
                delta: Some(StoreDelta {
                    loc,
                    contents: LocContents::Atomic {
                        frontier: merged.clone(),
                        value: x,
                    },
                }),
                frontier: merged,
                label: LabeledAction {
                    loc,
                    action: Action::Write(x),
                },
                timestamp: None,
                weak: false,
            }]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        locs: LocSet,
        a: Loc,
        flag: Loc,
        store: Store,
        f0: Frontier,
    }

    fn fixture() -> Fixture {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let flag = locs.fresh("FLAG", LocKind::Atomic);
        let store = Store::initial(&locs);
        let f0 = Frontier::initial(&locs);
        Fixture {
            locs,
            a,
            flag,
            store,
            f0,
        }
    }

    #[test]
    fn na_read_initial_is_strong() {
        let fx = fixture();
        let outs = perform_read(&fx.locs, &fx.store, &fx.f0, fx.a);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].label.action, Action::Read(Val::INIT));
        assert!(!outs[0].weak);
        // Read-NA leaves store and frontier unchanged.
        assert_eq!(outs[0].delta, None, "Read-NA leaves the store untouched");
        assert_eq!(outs[0].frontier, fx.f0);
    }

    #[test]
    fn na_write_then_stale_read_is_weak() {
        let fx = fixture();
        // Write 1 to `a` (single gap: after the initial write).
        let w = perform_write(&fx.locs, &fx.store, &fx.f0, fx.a, Val(1));
        assert_eq!(w.len(), 1);
        assert!(!w[0].weak);
        let store = w[0].store_after(&fx.store);
        // A thread still at the initial frontier can read both entries.
        let outs = perform_read(&fx.locs, &store, &fx.f0, fx.a);
        assert_eq!(outs.len(), 2);
        let stale = outs
            .iter()
            .find(|o| o.label.action == Action::Read(Val::INIT))
            .unwrap();
        let fresh = outs
            .iter()
            .find(|o| o.label.action == Action::Read(Val(1)))
            .unwrap();
        assert!(stale.weak, "missing the latest write is weak");
        assert!(!fresh.weak);
        // The writer itself can only see its own write.
        let outs = perform_read(&fx.locs, &store, &w[0].frontier, fx.a);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].label.action, Action::Read(Val(1)));
    }

    #[test]
    fn na_write_behind_is_weak() {
        let fx = fixture();
        // Thread 1 writes 1; thread 2 (frontier still initial) writes 2.
        let w1 = perform_write(&fx.locs, &fx.store, &fx.f0, fx.a, Val(1));
        let store = w1[0].store_after(&fx.store);
        let w2 = perform_write(&fx.locs, &store, &fx.f0, fx.a, Val(2));
        // Two gaps: before thread 1's write (weak), after it (strong).
        assert_eq!(w2.len(), 2);
        let weak: Vec<bool> = w2.iter().map(|o| o.weak).collect();
        assert_eq!(weak.iter().filter(|w| **w).count(), 1);
        let weak_out = w2.iter().find(|o| o.weak).unwrap();
        let strong_out = w2.iter().find(|o| !o.weak).unwrap();
        assert!(weak_out.timestamp.unwrap() < w1[0].timestamp.unwrap());
        assert!(strong_out.timestamp.unwrap() > w1[0].timestamp.unwrap());
    }

    #[test]
    fn weak_read_same_value_not_weak() {
        // Definition 6 is value-based: reading an old entry whose value
        // equals the latest write's value is NOT weak.
        let fx = fixture();
        let w1 = perform_write(&fx.locs, &fx.store, &fx.f0, fx.a, Val(7));
        let s1 = w1[0].store_after(&fx.store);
        let w2 = perform_write(&fx.locs, &s1, &w1[0].frontier, fx.a, Val(7));
        let s2 = w2[0].store_after(&s1);
        let outs = perform_read(&fx.locs, &s2, &fx.f0, fx.a);
        for o in &outs {
            if o.label.action == Action::Read(Val(7)) {
                assert!(!o.weak);
            }
        }
    }

    #[test]
    fn atomic_read_merges_frontier() {
        let fx = fixture();
        // Thread 1 writes a=1 then FLAG=1 (publishing its frontier).
        let w = perform_write(&fx.locs, &fx.store, &fx.f0, fx.a, Val(1));
        let s1 = w[0].store_after(&fx.store);
        let wf = perform_write(&fx.locs, &s1, &w[0].frontier, fx.flag, Val(1));
        assert_eq!(wf.len(), 1);
        let store = wf[0].store_after(&s1);
        // Thread 2 reads FLAG: its frontier must now include a's write.
        let r = perform_read(&fx.locs, &store, &fx.f0, fx.flag);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].label.action, Action::Read(Val(1)));
        assert_eq!(r[0].frontier.get(fx.a), w[0].timestamp.unwrap());
        // So a subsequent read of `a` must see 1 (message passing!).
        let ra = perform_read(&fx.locs, &store, &r[0].frontier, fx.a);
        assert_eq!(ra.len(), 1);
        assert_eq!(ra[0].label.action, Action::Read(Val(1)));
    }

    #[test]
    fn atomic_write_publishes_join() {
        let fx = fixture();
        let w = perform_write(&fx.locs, &fx.store, &fx.f0, fx.a, Val(1));
        let s1 = w[0].store_after(&fx.store);
        let wf = perform_write(&fx.locs, &s1, &w[0].frontier, fx.flag, Val(9));
        let st = wf[0].store_after(&s1);
        let (floc, v) = st.atomic(fx.flag);
        assert_eq!(v, Val(9));
        assert_eq!(floc.get(fx.a), w[0].timestamp.unwrap());
        // Atomic ops are never weak.
        assert!(!wf[0].weak);
    }

    #[test]
    fn write_delta_is_one_location_and_preserves_sharing() {
        let fx = fixture();
        let w = perform_write(&fx.locs, &fx.store, &fx.f0, fx.a, Val(1));
        let d = w[0].delta.as_ref().unwrap();
        assert_eq!(d.loc, fx.a);
        // Applying the delta leaves every untouched slot shared with the
        // base store (copy-on-write), and the base itself unchanged.
        let after = w[0].store_after(&fx.store);
        assert!(std::ptr::eq(
            fx.store.contents(fx.flag),
            after.contents(fx.flag)
        ));
        assert_eq!(fx.store.history(fx.a).len(), 1);
        assert_eq!(after.history(fx.a).len(), 2);
    }

    #[test]
    fn na_write_gap_count_grows_with_history() {
        let fx = fixture();
        let mut store = fx.store.clone();
        for i in 1..=3 {
            // Each write from a fresh frontier can land in any gap; take the
            // last (newest) to build a 4-entry history.
            let outs = perform_write(&fx.locs, &store, &fx.f0, fx.a, Val(i));
            assert_eq!(outs.len(), i as usize);
            store = outs.last().unwrap().store_after(&store);
        }
        assert_eq!(store.history(fx.a).len(), 4);
    }
}
