//! Thread and atomic-location frontiers.
//!
//! A frontier `F` maps nonatomic locations to timestamps (§3). Each thread's
//! frontier records, per location, the latest write *known* to the thread;
//! more recent writes may exist but are not guaranteed visible. Atomic
//! locations also carry a frontier, which is how nonatomic knowledge is
//! published between threads (Read-AT / Write-AT merge frontiers).

use std::fmt;

use crate::loc::{Loc, LocSet};
use crate::timestamp::Timestamp;

/// A map from (nonatomic) locations to timestamps, ordered pointwise.
///
/// Internally sized by the total number of declared locations; entries for
/// atomic locations exist but are never consulted by the semantics.
///
/// # Examples
///
/// ```
/// use bdrst_core::frontier::Frontier;
/// use bdrst_core::loc::{LocSet, LocKind};
/// use bdrst_core::timestamp::Timestamp;
///
/// let mut locs = LocSet::new();
/// let a = locs.fresh("a", LocKind::Nonatomic);
/// let mut f = Frontier::initial(&locs);
/// assert_eq!(f.get(a), Timestamp::ZERO);
/// f.advance(a, Timestamp::ZERO.succ());
/// assert!(f.get(a) > Timestamp::ZERO);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Frontier {
    at: Vec<Timestamp>,
}

impl Frontier {
    /// The initial frontier `F₀`, mapping every location to timestamp 0.
    pub fn initial(locs: &LocSet) -> Frontier {
        Frontier {
            at: vec![Timestamp::ZERO; locs.len()],
        }
    }

    /// The timestamp this frontier records for `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range for the declaring [`LocSet`].
    pub fn get(&self, loc: Loc) -> Timestamp {
        self.at[loc.index()]
    }

    /// Sets the frontier entry for `loc` to `t` (`F[a ↦ t]`).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not ahead of the current entry: the semantics only
    /// ever moves frontiers forward (Write-NA requires `F(a) < t`).
    pub fn advance(&mut self, loc: Loc, t: Timestamp) {
        assert!(
            t > self.at[loc.index()],
            "frontier for {loc} moved backwards ({} -> {t})",
            self.at[loc.index()]
        );
        self.at[loc.index()] = t;
    }

    /// The join `F₁ ⊔ F₂`: pointwise later timestamp.
    pub fn join(&self, other: &Frontier) -> Frontier {
        debug_assert_eq!(self.at.len(), other.at.len());
        Frontier {
            at: self
                .at
                .iter()
                .zip(&other.at)
                .map(|(x, y)| (*x).max(*y))
                .collect(),
        }
    }

    /// Merges `other` into `self` in place (`self ← self ⊔ other`).
    pub fn join_assign(&mut self, other: &Frontier) {
        debug_assert_eq!(self.at.len(), other.at.len());
        for (x, y) in self.at.iter_mut().zip(&other.at) {
            if *y > *x {
                *x = *y;
            }
        }
    }

    /// Pointwise order: true iff `self(a) ≤ other(a)` for every location.
    pub fn le(&self, other: &Frontier) -> bool {
        self.at.iter().zip(&other.at).all(|(x, y)| x <= y)
    }

    /// Iterates over `(loc, timestamp)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, Timestamp)> + '_ {
        self.at.iter().enumerate().map(|(i, t)| (Loc(i as u32), *t))
    }

    /// Number of location entries (equals the declaring set's size).
    pub fn len(&self) -> usize {
        self.at.len()
    }

    /// True if there are no locations at all.
    pub fn is_empty(&self) -> bool {
        self.at.is_empty()
    }
}

impl crate::wire::Codec for Frontier {
    /// Per-location timestamps in location order. The decoder accepts any
    /// width; [`crate::store::Store::validate_kinds`] checks decoded
    /// frontiers against the declaring [`LocSet`]'s size.
    fn encode(&self, out: &mut Vec<u8>) {
        self.at.encode(out);
    }

    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Frontier, crate::wire::WireError> {
        Ok(Frontier {
            at: Vec::decode(r)?,
        })
    }
}

impl fmt::Debug for Frontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.at.iter().enumerate().map(|(i, t)| (Loc(i as u32), t)))
            .finish()
    }
}

impl fmt::Display for Frontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (l, t)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}@{t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::LocKind;
    use crate::timestamp::Ratio;

    fn ts(n: i64) -> Timestamp {
        Timestamp(Ratio::from_integer(n))
    }

    fn two_locs() -> (LocSet, Loc, Loc) {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let b = locs.fresh("b", LocKind::Nonatomic);
        (locs, a, b)
    }

    #[test]
    fn initial_maps_everything_to_zero() {
        let (locs, a, b) = two_locs();
        let f = Frontier::initial(&locs);
        assert_eq!(f.get(a), Timestamp::ZERO);
        assert_eq!(f.get(b), Timestamp::ZERO);
    }

    #[test]
    fn join_is_pointwise_max() {
        let (locs, a, b) = two_locs();
        let mut f1 = Frontier::initial(&locs);
        let mut f2 = Frontier::initial(&locs);
        f1.advance(a, ts(3));
        f2.advance(b, ts(5));
        let j = f1.join(&f2);
        assert_eq!(j.get(a), ts(3));
        assert_eq!(j.get(b), ts(5));
        // Join is commutative and idempotent.
        assert_eq!(j, f2.join(&f1));
        assert_eq!(j, j.join(&j));
    }

    #[test]
    fn join_assign_matches_join() {
        let (locs, a, b) = two_locs();
        let mut f1 = Frontier::initial(&locs);
        let mut f2 = Frontier::initial(&locs);
        f1.advance(a, ts(3));
        f2.advance(a, ts(1));
        f2.advance(b, ts(2));
        let expected = f1.join(&f2);
        f1.join_assign(&f2);
        assert_eq!(f1, expected);
    }

    #[test]
    fn pointwise_order() {
        let (locs, a, _) = two_locs();
        let f0 = Frontier::initial(&locs);
        let mut f1 = f0.clone();
        f1.advance(a, ts(1));
        assert!(f0.le(&f1));
        assert!(!f1.le(&f0));
        assert!(f0.le(&f0));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn advance_must_move_forward() {
        let (locs, a, _) = two_locs();
        let mut f = Frontier::initial(&locs);
        f.advance(a, ts(2));
        f.advance(a, ts(1));
    }
}
