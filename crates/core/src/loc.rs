//! Locations, values and memory actions.
//!
//! Memory consists of locations `ℓ ∈ L`, divided into *atomic* locations
//! `A, B, …` and *nonatomic* locations `a, b, …` (§3). Programs interact
//! with memory by performing actions `ϕ`: `write x` and `read x`.

use std::fmt;

use crate::wire::Codec;

/// The kind of a memory location: atomic locations synchronise threads by
/// carrying a frontier; nonatomic locations carry a timestamped history.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LocKind {
    /// A nonatomic location `a, b, …`: maps to a history of writes.
    Nonatomic,
    /// An atomic location `A, B, …`: maps to a `(frontier, value)` pair.
    Atomic,
}

impl fmt::Display for LocKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocKind::Nonatomic => write!(f, "nonatomic"),
            LocKind::Atomic => write!(f, "atomic"),
        }
    }
}

/// A memory location identifier: an index into a [`LocSet`].
///
/// # Examples
///
/// ```
/// use bdrst_core::loc::{LocSet, LocKind};
///
/// let mut locs = LocSet::new();
/// let a = locs.fresh("a", LocKind::Nonatomic);
/// let flag = locs.fresh("FLAG", LocKind::Atomic);
/// assert_eq!(locs.kind(a), LocKind::Nonatomic);
/// assert_eq!(locs.name(flag), "FLAG");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(pub u32);

impl Loc {
    /// The location's raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// The declaration table for a program's locations: names and kinds.
///
/// All machinery in this crate (stores, frontiers, the explorer) is sized by
/// the number of declared locations.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LocSet {
    names: Vec<String>,
    kinds: Vec<LocKind>,
}

impl LocSet {
    /// Creates an empty location set.
    pub fn new() -> LocSet {
        LocSet::default()
    }

    /// Declares a fresh location with the given name and kind.
    pub fn fresh(&mut self, name: impl Into<String>, kind: LocKind) -> Loc {
        let id = Loc(self.names.len() as u32);
        self.names.push(name.into());
        self.kinds.push(kind);
        id
    }

    /// Number of declared locations.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no locations are declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The kind of `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` was not declared in this set.
    pub fn kind(&self, loc: Loc) -> LocKind {
        self.kinds[loc.index()]
    }

    /// The name of `loc`.
    ///
    /// # Panics
    ///
    /// Panics if `loc` was not declared in this set.
    pub fn name(&self, loc: Loc) -> &str {
        &self.names[loc.index()]
    }

    /// Looks a location up by name.
    pub fn by_name(&self, name: &str) -> Option<Loc> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Loc(i as u32))
    }

    /// Iterates over all declared locations.
    pub fn iter(&self) -> impl Iterator<Item = Loc> + '_ {
        (0..self.names.len() as u32).map(Loc)
    }

    /// Iterates over the nonatomic locations.
    pub fn nonatomic(&self) -> impl Iterator<Item = Loc> + '_ {
        self.iter().filter(|l| self.kind(*l) == LocKind::Nonatomic)
    }

    /// Iterates over the atomic locations.
    pub fn atomic(&self) -> impl Iterator<Item = Loc> + '_ {
        self.iter().filter(|l| self.kind(*l) == LocKind::Atomic)
    }
}

/// A machine value `x, y ∈ V`.
///
/// The paper leaves values abstract; we use 64-bit integers, with
/// [`Val::INIT`] playing the role of the arbitrary initial value `v₀`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Val(pub i64);

impl Val {
    /// The initial value `v₀` stored in every location at program start.
    pub const INIT: Val = Val(0);
}

impl fmt::Debug for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Val {
        Val(v)
    }
}

/// A memory action `ϕ`: either `read x` (reading resulted in `x`) or
/// `write x`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Action {
    /// `read x`: a read that observed the value `x`.
    Read(Val),
    /// `write x`: a write of the value `x`.
    Write(Val),
}

impl Action {
    /// The value read or written.
    pub fn value(self) -> Val {
        match self {
            Action::Read(v) | Action::Write(v) => v,
        }
    }

    /// True for `read` actions.
    pub fn is_read(self) -> bool {
        matches!(self, Action::Read(_))
    }

    /// True for `write` actions.
    pub fn is_write(self) -> bool {
        matches!(self, Action::Write(_))
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Read(v) => write!(f, "read {v}"),
            Action::Write(v) => write!(f, "write {v}"),
        }
    }
}

/// A located action `ℓ : ϕ` — the label of a memory transition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LabeledAction {
    /// The location acted upon.
    pub loc: Loc,
    /// The action performed.
    pub action: Action,
}

impl fmt::Display for LabeledAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.loc, self.action)
    }
}

impl Codec for Action {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Action::Read(v) => {
                out.push(0);
                v.encode(out);
            }
            Action::Write(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<Action, crate::wire::WireError> {
        match u8::decode(r)? {
            0 => Ok(Action::Read(Val::decode(r)?)),
            1 => Ok(Action::Write(Val::decode(r)?)),
            tag => Err(crate::wire::WireError::BadTag {
                what: "Action",
                tag,
            }),
        }
    }
}

impl Codec for LabeledAction {
    fn encode(&self, out: &mut Vec<u8>) {
        self.loc.encode(out);
        self.action.encode(out);
    }

    fn decode(r: &mut crate::wire::Reader<'_>) -> Result<LabeledAction, crate::wire::WireError> {
        Ok(LabeledAction {
            loc: Loc::decode(r)?,
            action: Action::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locset_declares_and_looks_up() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let b = locs.fresh("b", LocKind::Nonatomic);
        let f = locs.fresh("flag", LocKind::Atomic);
        assert_eq!(locs.len(), 3);
        assert_eq!(locs.by_name("b"), Some(b));
        assert_eq!(locs.by_name("zzz"), None);
        assert_eq!(locs.kind(f), LocKind::Atomic);
        assert_eq!(locs.nonatomic().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(locs.atomic().collect::<Vec<_>>(), vec![f]);
    }

    #[test]
    fn action_accessors() {
        assert!(Action::Read(Val(3)).is_read());
        assert!(Action::Write(Val(3)).is_write());
        assert_eq!(Action::Read(Val(3)).value(), Val(3));
        assert_eq!(Action::Write(Val(4)).value(), Val(4));
    }

    #[test]
    fn display() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let la = LabeledAction {
            loc: a,
            action: Action::Write(Val(7)),
        };
        assert_eq!(format!("{la}"), "ℓ0: write 7");
    }
}
