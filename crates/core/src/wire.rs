//! A hand-rolled, std-only versioned binary codec for the content-addressed
//! result store.
//!
//! The service layer persists explored artifacts — canonical state graphs,
//! outcome sets, checker verdicts — keyed by program fingerprint. Nothing
//! in this repository may pull serde (the build image has no crates.io),
//! so this module provides the minimal substrate those codecs share:
//!
//! * [`Codec`] — encode into a byte vector / decode from a bounds-checked
//!   [`Reader`]. Implementations exist for the primitive scalars, `String`,
//!   `Vec<T>`, `Option<T>`, pairs, and the core model types ([`Val`],
//!   [`Loc`], [`crate::engine::StateId`]); richer types implement it next
//!   to their definitions ([`crate::engine::CanonState`],
//!   [`crate::engine::StateGraph`], `bdrst-lang`'s statements).
//! * [`WireError`] — the decode error surface. Every decode failure is an
//!   *error value*, never a panic and never garbage: a corrupt or
//!   truncated cache entry must make the store fall back to recompute,
//!   not to a wrong verdict.
//! * [`checksum`] — a 64-bit payload digest ([`DefaultHasher`] with its
//!   default keys, deterministic across processes — the same property the
//!   interner relies on), written after every persisted payload and
//!   verified before any field of it is trusted.
//!
//! All integers are little-endian fixed-width; lengths are `u64` and are
//! validated against the bytes actually remaining before any allocation,
//! so a flipped length byte cannot OOM the decoder.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::Hasher;

use crate::loc::{Loc, LocKind, Val};

/// The semantics/config version tag of this build. Any change to the
/// operational semantics, the canonical form, or the meaning of recorded
/// artifacts must bump this; persisted cache entries carry it and are
/// rejected (recomputed) on mismatch.
///
/// Version 5: persistent-pmap stores — [`crate::store::Store`],
/// [`crate::store::LocContents`], [`crate::history::History`], and
/// [`crate::frontier::Frontier`] gained codecs (tagged contents in
/// location order), and the canonical fingerprint is now recombined from
/// memoized store digests, which changes fingerprint *values* (not their
/// semantics) — cache entries keyed under version 4 must recompute.
pub const SEMANTICS_VERSION: u32 = 5;

/// A decode failure: the bytes do not describe a well-formed value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The input ended before the value did.
    Truncated,
    /// A tag byte had no meaning for the type being decoded.
    BadTag {
        /// The type whose decoder rejected the tag.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix exceeds the bytes remaining (or `usize`).
    BadLength,
    /// A structural invariant of the decoded value failed (e.g. a CSR
    /// offset table that is not monotone).
    Invalid(&'static str),
    /// The payload checksum did not match.
    Checksum,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag} for {what}"),
            WireError::BadLength => write!(f, "length prefix exceeds input"),
            WireError::Invalid(what) => write!(f, "structural invariant violated: {what}"),
            WireError::Checksum => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked cursor over bytes being decoded.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Decodes a length prefix and validates it against the bytes left:
    /// every encoded element occupies at least `min_elem_size` bytes, so a
    /// corrupt length cannot drive a huge allocation.
    ///
    /// # Errors
    ///
    /// [`WireError::BadLength`] when the claimed length cannot fit.
    pub fn length(&mut self, min_elem_size: usize) -> Result<usize, WireError> {
        let n = u64::decode(self)?;
        let n: usize = n.try_into().map_err(|_| WireError::BadLength)?;
        if n.checked_mul(min_elem_size.max(1))
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(WireError::BadLength);
        }
        Ok(n)
    }
}

/// Binary encode/decode for one type. See the module docs.
pub trait Codec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] describing why the bytes are not a valid value.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

macro_rules! scalar_codec {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode(r: &mut Reader<'_>) -> Result<$t, WireError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

scalar_codec!(u8, u16, u32, u64, i64);

impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<usize, WireError> {
        u64::decode(r)?.try_into().map_err(|_| WireError::BadLength)
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }

    fn decode(r: &mut Reader<'_>) -> Result<bool, WireError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<String, WireError> {
        let n = r.length(1)?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("utf-8 string"))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Vec<T>, WireError> {
        let n = r.length(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Option<T>, WireError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<(A, B), WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Codec for Val {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Val, WireError> {
        Ok(Val(i64::decode(r)?))
    }
}

impl Codec for Loc {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Loc, WireError> {
        Ok(Loc(u32::decode(r)?))
    }
}

impl Codec for LocKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            LocKind::Nonatomic => 0,
            LocKind::Atomic => 1,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<LocKind, WireError> {
        match u8::decode(r)? {
            0 => Ok(LocKind::Nonatomic),
            1 => Ok(LocKind::Atomic),
            tag => Err(WireError::BadTag {
                what: "LocKind",
                tag,
            }),
        }
    }
}

impl Codec for crate::engine::StateId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<crate::engine::StateId, WireError> {
        Ok(crate::engine::StateId(u32::decode(r)?))
    }
}

/// The 64-bit digest of a payload: [`DefaultHasher`] over the raw bytes,
/// deterministic across processes and runs.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = DefaultHasher::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        assert!(r.is_done(), "decoder left {} bytes", r.remaining());
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u16::MAX);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(usize::MAX as u64);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn compounds_round_trip() {
        round_trip(String::from("nonatomic a; thread P0 { a = 1; }"));
        round_trip(String::new());
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(vec![Val(1), Val(-7)]));
        round_trip(None::<u32>);
        round_trip((Loc(3), vec![0u32, 9]));
        round_trip(LocKind::Atomic);
        round_trip(LocKind::Nonatomic);
        round_trip(crate::engine::StateId(17));
    }

    #[test]
    fn truncation_is_an_error() {
        let mut buf = Vec::new();
        0xffff_ffffu32.encode(&mut buf);
        let mut r = Reader::new(&buf[..3]);
        assert_eq!(u32::decode(&mut r), Err(WireError::Truncated));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        // A Vec claiming u64::MAX elements over a 9-byte buffer must fail
        // with BadLength, not attempt the allocation.
        let mut buf = Vec::new();
        u64::MAX.encode(&mut buf);
        buf.push(1);
        let mut r = Reader::new(&buf);
        assert_eq!(Vec::<u64>::decode(&mut r), Err(WireError::BadLength));
    }

    #[test]
    fn bad_tags_are_rejected() {
        let buf = [7u8];
        assert!(matches!(
            bool::decode(&mut Reader::new(&buf)),
            Err(WireError::BadTag { what: "bool", .. })
        ));
        assert!(matches!(
            Option::<u8>::decode(&mut Reader::new(&buf)),
            Err(WireError::BadTag { what: "Option", .. })
        ));
        assert!(matches!(
            LocKind::decode(&mut Reader::new(&buf)),
            Err(WireError::BadTag {
                what: "LocKind",
                ..
            })
        ));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = Vec::new();
        2usize.encode(&mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            String::decode(&mut Reader::new(&buf)),
            Err(WireError::Invalid("utf-8 string"))
        );
    }

    #[test]
    fn checksum_is_deterministic_and_content_sensitive() {
        let a = checksum(b"abc");
        assert_eq!(a, checksum(b"abc"));
        assert_ne!(a, checksum(b"abd"));
    }
}
