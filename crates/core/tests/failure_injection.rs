//! Failure injection: a deliberately broken semantics variant where
//! atomic operations do not merge frontiers (no release/acquire
//! synchronisation). The checkers built on the *paper's* semantics
//! guarantee message passing; the broken variant must violate it — and
//! the tests here prove our test oracles have the teeth to notice.

use bdrst_core::frontier::Frontier;
use bdrst_core::loc::{LocKind, LocSet, Val};
use bdrst_core::memop::{perform_read, perform_write, OpResult, StoreDelta};
use bdrst_core::store::{LocContents, Store};

/// Which semantics to run the hand-rolled explorer under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Semantics {
    /// The paper's rules (Fig. 1c).
    Paper,
    /// Write-AT publishes its value but *not* its frontier: releases are
    /// broken.
    NoRelease,
    /// Read-AT returns the value but does not merge the location frontier
    /// into the thread: acquires are broken.
    NoAcquire,
}

/// One step of a straight-line thread: read or write a location.
#[derive(Clone, Copy, Debug)]
enum Op {
    R(usize),      // read location by index
    W(usize, i64), // write constant
}

fn step(
    sem: Semantics,
    locs: &LocSet,
    store: &Store,
    frontier: &Frontier,
    op: Op,
) -> Vec<(Store, Frontier, Val)> {
    let loc = |i: usize| locs.iter().nth(i).unwrap();
    let outs: Vec<OpResult> = match op {
        Op::R(l) => perform_read(locs, store, frontier, loc(l)),
        Op::W(l, v) => perform_write(locs, store, frontier, loc(l), Val(v)),
    };
    outs.into_iter()
        .map(|mut o| {
            // Inject the breakage on atomic operations.
            if let Op::R(l) = op {
                if locs.kind(loc(l)) == LocKind::Atomic && sem == Semantics::NoAcquire {
                    o.frontier = frontier.clone(); // drop the merge
                }
            }
            if let Op::W(l, _) = op {
                if locs.kind(loc(l)) == LocKind::Atomic && sem == Semantics::NoRelease {
                    // Re-publish only the value; keep the location's old
                    // frontier (drop the release half).
                    let (old_frontier, _) = store.atomic(loc(l));
                    let v = o.label.action.value();
                    o.delta = Some(StoreDelta {
                        loc: loc(l),
                        contents: LocContents::Atomic {
                            frontier: old_frontier.clone(),
                            value: v,
                        },
                    });
                }
            }
            let st = o.store_after(store);
            (st, o.frontier, o.label.action.value())
        })
        .collect()
}

/// Exhaustively explores MP (P0: a=1; F=1 — P1: r0=F; r1=a) under the
/// given semantics and returns the set of (r0, r1) observations.
fn mp_outcomes(sem: Semantics) -> std::collections::BTreeSet<(i64, i64)> {
    let mut locs = LocSet::new();
    locs.fresh("a", LocKind::Nonatomic);
    locs.fresh("F", LocKind::Atomic);
    let p0 = [Op::W(0, 1), Op::W(1, 1)];
    let p1 = [Op::R(1), Op::R(0)];

    let mut outcomes = std::collections::BTreeSet::new();
    // State: (store, f0, f1, pc0, pc1, r0, r1)
    let init = (
        Store::initial(&locs),
        Frontier::initial(&locs),
        Frontier::initial(&locs),
        0usize,
        0usize,
        0i64,
        0i64,
    );
    let mut stack = vec![init];
    while let Some((store, f0, f1, pc0, pc1, r0, r1)) = stack.pop() {
        let mut terminal = true;
        if pc0 < p0.len() {
            terminal = false;
            for (st, fr, _) in step(sem, &locs, &store, &f0, p0[pc0]) {
                stack.push((st, fr, f1.clone(), pc0 + 1, pc1, r0, r1));
            }
        }
        if pc1 < p1.len() {
            terminal = false;
            for (st, fr, v) in step(sem, &locs, &store, &f1, p1[pc1]) {
                let (nr0, nr1) = if pc1 == 0 { (v.0, r1) } else { (r0, v.0) };
                stack.push((st, f0.clone(), fr, pc0, pc1 + 1, nr0, nr1));
            }
        }
        if terminal {
            outcomes.insert((r0, r1));
        }
    }
    outcomes
}

#[test]
fn paper_semantics_guarantees_message_passing() {
    let outcomes = mp_outcomes(Semantics::Paper);
    assert!(
        !outcomes.contains(&(1, 0)),
        "MP violated under the paper semantics: {outcomes:?}"
    );
    assert!(outcomes.contains(&(1, 1)));
    assert!(outcomes.contains(&(0, 0)));
}

#[test]
fn broken_release_violates_message_passing() {
    let outcomes = mp_outcomes(Semantics::NoRelease);
    assert!(
        outcomes.contains(&(1, 0)),
        "the broken-release semantics should leak the stale read: {outcomes:?}"
    );
}

#[test]
fn broken_acquire_violates_message_passing() {
    let outcomes = mp_outcomes(Semantics::NoAcquire);
    assert!(
        outcomes.contains(&(1, 0)),
        "the broken-acquire semantics should leak the stale read: {outcomes:?}"
    );
}
