//! Integration tests for the exploration engine: budget exhaustion,
//! DFS/BFS/parallel agreement on the message-passing and store-buffering
//! shapes, and determinism of canonical hashing.

use std::collections::BTreeSet;

use bdrst_core::engine::{
    canonicalize, Control, EngineConfig, EngineError, Explorer, Hashed, ParallelEngine,
    SearchOrder, StateId, Strategy, WorkStealingEngine, WorklistEngine,
};
use bdrst_core::explore::reachable_terminals_with;
use bdrst_core::loc::{Loc, LocKind, LocSet, Val};
use bdrst_core::machine::{Machine, RecordedExpr, StepLabel};

fn locs_abf() -> (LocSet, Loc, Loc, Loc) {
    let mut l = LocSet::new();
    let a = l.fresh("a", LocKind::Nonatomic);
    let b = l.fresh("b", LocKind::Nonatomic);
    let f = l.fresh("F", LocKind::Atomic);
    (l, a, b, f)
}

/// MP: P0: a = 1; F = 1    P1: r0 = F; r1 = a.
fn message_passing(locs: &LocSet, a: Loc, f: Loc) -> Machine<RecordedExpr> {
    let p0 = RecordedExpr::new(vec![
        StepLabel::Write(a, Val(1)),
        StepLabel::Write(f, Val(1)),
    ]);
    let p1 = RecordedExpr::new(vec![StepLabel::Read(f), StepLabel::Read(a)]);
    Machine::initial(locs, [p0, p1])
}

/// SB: P0: a = 1; r0 = b    P1: b = 1; r1 = a.
fn store_buffering(locs: &LocSet, a: Loc, b: Loc) -> Machine<RecordedExpr> {
    let p0 = RecordedExpr::new(vec![StepLabel::Write(a, Val(1)), StepLabel::Read(b)]);
    let p1 = RecordedExpr::new(vec![StepLabel::Write(b, Val(1)), StepLabel::Read(a)]);
    Machine::initial(locs, [p0, p1])
}

/// The canonical terminal outcome set under one strategy.
fn outcomes(locs: &LocSet, m0: Machine<RecordedExpr>, strategy: Strategy) -> BTreeSet<Vec<i64>> {
    reachable_terminals_with(locs, m0, EngineConfig::default(), strategy)
        .unwrap()
        .iter()
        .map(|m| {
            m.threads
                .iter()
                .flat_map(|t| t.expr.reads.iter().map(|v| v.0))
                .collect()
        })
        .collect()
}

#[test]
fn strategies_agree_on_message_passing() {
    let (locs, a, _b, f) = locs_abf();
    let dfs = outcomes(&locs, message_passing(&locs, a, f), Strategy::Dfs);
    let bfs = outcomes(&locs, message_passing(&locs, a, f), Strategy::Bfs);
    let par = outcomes(&locs, message_passing(&locs, a, f), Strategy::Parallel);
    let ws = outcomes(&locs, message_passing(&locs, a, f), Strategy::WorkStealing);
    assert_eq!(dfs, bfs);
    assert_eq!(dfs, par);
    assert_eq!(dfs, ws);
    // The MP guarantee itself: flag read 1 implies payload read 1.
    assert!(!dfs.contains(&vec![1, 0]));
    assert!(dfs.contains(&vec![1, 1]));
}

#[test]
fn strategies_agree_on_store_buffering() {
    let (locs, a, b, _f) = locs_abf();
    let dfs = outcomes(&locs, store_buffering(&locs, a, b), Strategy::Dfs);
    let bfs = outcomes(&locs, store_buffering(&locs, a, b), Strategy::Bfs);
    let par = outcomes(&locs, store_buffering(&locs, a, b), Strategy::Parallel);
    let ws = outcomes(&locs, store_buffering(&locs, a, b), Strategy::WorkStealing);
    assert_eq!(dfs, bfs);
    assert_eq!(dfs, par);
    assert_eq!(dfs, ws);
    // SB is racy: all four read combinations appear.
    assert_eq!(dfs.len(), 4);
}

#[test]
fn strategies_agree_on_visited_state_counts() {
    // Not just terminals: the engines must visit the *same* canonical
    // state set, so the visited counts coincide.
    let (locs, a, _b, f) = locs_abf();
    let count = |e: &dyn Explorer<RecordedExpr>| {
        let mut n = 0usize;
        e.explore(
            &locs,
            message_passing(&locs, a, f),
            &mut |_: &Machine<RecordedExpr>, _: StateId| {
                n += 1;
                Control::Continue
            },
        )
        .unwrap();
        n
    };
    let cfg = EngineConfig::default();
    let dfs = count(&WorklistEngine::new(cfg, SearchOrder::Dfs));
    let bfs = count(&WorklistEngine::new(cfg, SearchOrder::Bfs));
    let par2 = count(&ParallelEngine::with_threads(cfg, 2));
    let par8 = count(&ParallelEngine::with_threads(cfg, 8));
    let ws2 = count(&WorkStealingEngine::with_threads(cfg, 2));
    let ws8 = count(&WorkStealingEngine::with_threads(cfg, 8));
    assert_eq!(dfs, bfs);
    assert_eq!(dfs, par2);
    assert_eq!(dfs, par8);
    assert_eq!(dfs, ws2);
    assert_eq!(dfs, ws8);
}

#[test]
fn budget_exhaustion_is_uniform_across_engines() {
    let (locs, a, _, _) = locs_abf();
    let mk = || RecordedExpr::new(vec![StepLabel::Write(a, Val(1)); 6]);
    let m0 = Machine::initial(&locs, [mk(), mk(), mk()]);
    let tiny = EngineConfig {
        max_states: 10,
        max_traces: 10,
    };
    for strategy in [
        Strategy::Dfs,
        Strategy::Bfs,
        Strategy::Parallel,
        Strategy::WorkStealing,
    ] {
        let r = reachable_terminals_with(&locs, m0.clone(), tiny, strategy);
        match r {
            Err(EngineError::BudgetExceeded { visited }) => {
                assert!(visited > tiny.max_states, "{strategy:?}: visited={visited}")
            }
            other => panic!("{strategy:?}: expected budget error, got {other:?}"),
        }
    }
}

#[test]
fn canonical_hashing_is_deterministic() {
    // Build the same logical machine twice, independently, and compare
    // the one-shot hashes the interner stores. DefaultHasher with default
    // keys is deterministic across processes within a toolchain, so
    // equality of independently computed hashes is the per-run witness.
    let (locs, a, _b, f) = locs_abf();
    let h1 = Hashed::new(canonicalize(&locs, &message_passing(&locs, a, f)).unwrap());
    let h2 = Hashed::new(canonicalize(&locs, &message_passing(&locs, a, f)).unwrap());
    assert_eq!(h1.hash64(), h2.hash64());
    assert_eq!(h1, h2);

    // And through an actual run: explore MP twice, collecting canonical
    // hashes of every visited state; the multisets must coincide.
    let hashes = |m0: Machine<RecordedExpr>| {
        let mut hs: Vec<u64> = Vec::new();
        WorklistEngine::new(EngineConfig::default(), SearchOrder::Bfs)
            .explore(&locs, m0, &mut |m: &Machine<RecordedExpr>, _: StateId| {
                hs.push(Hashed::new(canonicalize(&locs, m).unwrap()).hash64());
                Control::Continue
            })
            .unwrap();
        hs.sort_unstable();
        hs
    };
    assert_eq!(
        hashes(message_passing(&locs, a, f)),
        hashes(message_passing(&locs, a, f))
    );
}
