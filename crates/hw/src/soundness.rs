//! Empirical checking of the compilation soundness theorems
//! (Theorem 19 for x86, Theorem 20 for ARMv8) over whole programs.
//!
//! For every candidate execution of a program (consistent or not), we
//! compile it and ask: does the hardware model accept some compiled
//! variant? Soundness demands that hardware acceptance implies software
//! consistency. The checker reports either `Sound` with statistics or the
//! first counterexample — which is how the repository demonstrates that
//! the `NAIVE` and `STLR_SC` ARM mappings are *not* sound (§7.3, §9.2).

use std::collections::BTreeSet;
use std::fmt;

use bdrst_axiomatic::{for_each_candidate, EnumError, EnumLimits, ProgramExecution};
use bdrst_lang::{Observation, Program};

use crate::arm::arm_consistent;
use crate::compile::{compile_candidate, Target};
use crate::x86::x86_consistent;

/// Statistics of a soundness check.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SoundnessStats {
    /// Software candidate executions examined.
    pub candidates: usize,
    /// Candidates accepted by the hardware model (some compiled variant
    /// consistent).
    pub hw_consistent: usize,
    /// Candidates consistent in the software model.
    pub sw_consistent: usize,
}

/// A counterexample to compilation soundness: a hardware-accepted candidate
/// that the software model rejects.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnsoundExecution {
    /// The observation of the offending candidate.
    pub observation: Observation,
    /// Statistics up to the counterexample.
    pub stats: SoundnessStats,
}

impl fmt::Display for UnsoundExecution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compilation unsound: hardware admits a software-inconsistent execution \
             (after {} candidates)",
            self.stats.candidates
        )
    }
}

/// The verdict of [`check_compilation`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SoundnessVerdict {
    /// Every hardware-accepted candidate is software-consistent.
    Sound(SoundnessStats),
    /// Some hardware-accepted candidate is software-inconsistent.
    Unsound(UnsoundExecution),
}

impl SoundnessVerdict {
    /// True for [`SoundnessVerdict::Sound`].
    pub fn is_sound(&self) -> bool {
        matches!(self, SoundnessVerdict::Sound(_))
    }
}

fn hw_accepts(pe: &ProgramExecution, target: Target) -> bool {
    let compiled = compile_candidate(&pe.exec, target);
    match target {
        Target::X86 => compiled.variants.iter().any(x86_consistent),
        Target::Arm(_) => compiled.variants.iter().any(arm_consistent),
    }
}

/// Checks Theorem 19/20 on one program and target: for every candidate
/// execution, hardware acceptance of the compiled execution must imply
/// software consistency.
///
/// # Errors
///
/// Returns [`EnumError`] if candidate enumeration fails.
pub fn check_compilation(
    program: &Program,
    target: Target,
    limits: EnumLimits,
) -> Result<SoundnessVerdict, EnumError> {
    let mut stats = SoundnessStats::default();
    let mut counterexample: Option<UnsoundExecution> = None;
    for_each_candidate(program, limits, |pe| {
        if counterexample.is_some() {
            return;
        }
        stats.candidates += 1;
        let sw_ok = pe.exec.is_consistent();
        if sw_ok {
            stats.sw_consistent += 1;
        }
        let hw_ok = hw_accepts(pe, target);
        if hw_ok {
            stats.hw_consistent += 1;
        }
        if hw_ok && !sw_ok {
            counterexample = Some(UnsoundExecution {
                observation: pe.observation(),
                stats,
            });
        }
    })?;
    Ok(match counterexample {
        Some(c) => SoundnessVerdict::Unsound(c),
        None => SoundnessVerdict::Sound(stats),
    })
}

/// The observations the *hardware* model allows for the compiled program —
/// the behaviours a user would see on the metal. Comparing against the
/// software outcome set shows where the hardware is stricter (allowed ⊂)
/// or, for unsound mappings, more permissive.
///
/// # Errors
///
/// Returns [`EnumError`] if candidate enumeration fails.
pub fn hw_outcomes(
    program: &Program,
    target: Target,
    limits: EnumLimits,
) -> Result<BTreeSet<Observation>, EnumError> {
    let mut out = BTreeSet::new();
    for_each_candidate(program, limits, |pe| {
        if hw_accepts(pe, target) {
            out.insert(pe.observation());
        }
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BAL, FBS, NAIVE, SRA, STLR_SC};

    fn lb() -> Program {
        Program::parse(
            "nonatomic a b;
             thread P0 { r0 = a; b = 1; }
             thread P1 { r1 = b; a = 1; }",
        )
        .unwrap()
    }

    fn mp() -> Program {
        Program::parse(
            "nonatomic a; atomic f;
             thread P0 { a = 1; f = 1; }
             thread P1 { r0 = f; r1 = a; }",
        )
        .unwrap()
    }

    fn check(p: &Program, target: Target) -> SoundnessVerdict {
        check_compilation(p, target, EnumLimits::default()).unwrap()
    }

    #[test]
    fn x86_sound_on_lb_and_mp() {
        assert!(check(&lb(), Target::X86).is_sound());
        assert!(check(&mp(), Target::X86).is_sound());
    }

    #[test]
    fn bal_and_fbs_sound_on_lb_and_mp() {
        for m in [BAL, FBS, SRA] {
            assert!(check(&lb(), Target::Arm(m)).is_sound());
            assert!(check(&mp(), Target::Arm(m)).is_sound());
        }
    }

    #[test]
    fn naive_arm_unsound_on_lb() {
        // The checker catches exactly the load-buffering counterexample.
        let v = check(&lb(), Target::Arm(NAIVE));
        assert!(!v.is_sound(), "naive mapping must fail on LB");
    }

    #[test]
    fn stlr_scheme_unsound_on_sec92() {
        let p = Program::parse(
            "nonatomic b; atomic A;
             thread P0 { x = b; A = 1; }
             thread P1 { A = 2; b = 1; }",
        )
        .unwrap();
        let v = check(&p, Target::Arm(STLR_SC));
        assert!(!v.is_sound(), "stlr-compiled SC atomics must fail §9.2");
        // The exchange-based scheme is fine.
        assert!(check(&p, Target::Arm(BAL)).is_sound());
    }

    #[test]
    fn hw_outcomes_superset_relationships() {
        // For a sound mapping, hardware outcomes ⊆ software outcomes would
        // hold with equality only if the hardware exhibits every software
        // behaviour; strictness is allowed. For NAIVE on LB the hardware
        // adds the forbidden outcome.
        let p = lb();
        let sw: BTreeSet<_> =
            bdrst_axiomatic::axiomatic_outcomes(&p, EnumLimits::default()).unwrap();
        let hw_bal = hw_outcomes(&p, Target::Arm(BAL), EnumLimits::default()).unwrap();
        assert!(hw_bal.is_subset(&sw));
        let hw_naive = hw_outcomes(&p, Target::Arm(NAIVE), EnumLimits::default()).unwrap();
        assert!(!hw_naive.is_subset(&sw), "naive mapping adds LB outcome");
    }
}
