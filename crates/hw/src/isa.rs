//! Instruction sequences of the compilation schemes (Table 1, Tables 2a/2b)
//! — both for display (the `table1`/`table2` binaries regenerate the
//! paper's tables from this module) and for the cycle-cost simulator in
//! `bdrst-sim`, which executes exactly these sequences.

use std::fmt;

/// The four access kinds the compiler lowers (§8.1 further splits
/// nonatomic accesses into initialising/immutable vs mutable; that split
/// lives in `bdrst-sim`, which maps both onto these sequences).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AccessKind {
    /// Read of a nonatomic location.
    NonatomicRead,
    /// Write to a nonatomic location.
    NonatomicWrite,
    /// Read of an atomic location.
    AtomicRead,
    /// Write to an atomic location.
    AtomicWrite,
}

impl AccessKind {
    /// All four kinds, in the paper's table order.
    pub const ALL: [AccessKind; 4] = [
        AccessKind::NonatomicRead,
        AccessKind::NonatomicWrite,
        AccessKind::AtomicRead,
        AccessKind::AtomicWrite,
    ];
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::NonatomicRead => write!(f, "Nonatomic read"),
            AccessKind::NonatomicWrite => write!(f, "Nonatomic write"),
            AccessKind::AtomicRead => write!(f, "Atomic read"),
            AccessKind::AtomicWrite => write!(f, "Atomic write"),
        }
    }
}

/// An x86-64 instruction of the compilation scheme (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum X86Instr {
    /// `mov R, [x]` — load.
    MovLoad,
    /// `mov [x], R` — store.
    MovStore,
    /// `(lock) xchg R, [x]` — atomic exchange (lock implicit).
    Xchg,
}

impl fmt::Display for X86Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            X86Instr::MovLoad => write!(f, "mov R, [x]"),
            X86Instr::MovStore => write!(f, "mov [x], R"),
            X86Instr::Xchg => write!(f, "(lock) xchg R, [x]"),
        }
    }
}

/// An AArch64 instruction of the compilation schemes (Tables 2a/2b, §8.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArmInstr {
    /// `ldr R, [x]` — plain load.
    Ldr,
    /// `str R, [x]` — plain store.
    Str,
    /// `ldar R, [x]` — load-acquire.
    Ldar,
    /// `stlr R, [x]` — store-release.
    Stlr,
    /// `ldaxr R, [x]` — load-acquire exclusive (half of an exchange).
    Ldaxr,
    /// `stlxr W, R, [x]` — store-release exclusive (half of an exchange).
    Stlxr,
    /// `cbz R, L; L:` — branch dependent on the last load (BAL).
    DependentBranch,
    /// `cbnz W, L` — retry loop of an exchange.
    RetryBranch,
    /// `dmb ld` — load barrier.
    DmbLd,
    /// `dmb st` — store barrier.
    DmbSt,
    /// `dmb ish` — full barrier (used for SRA floating-point accesses).
    DmbFull,
}

impl fmt::Display for ArmInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArmInstr::Ldr => write!(f, "ldr R, [x]"),
            ArmInstr::Str => write!(f, "str R, [x]"),
            ArmInstr::Ldar => write!(f, "ldar R, [x]"),
            ArmInstr::Stlr => write!(f, "stlr R, [x]"),
            ArmInstr::Ldaxr => write!(f, "ldaxr R, [x]"),
            ArmInstr::Stlxr => write!(f, "stlxr W, R, [x]"),
            ArmInstr::DependentBranch => write!(f, "cbz R, L; L:"),
            ArmInstr::RetryBranch => write!(f, "cbnz W, L"),
            ArmInstr::DmbLd => write!(f, "dmb ld"),
            ArmInstr::DmbSt => write!(f, "dmb st"),
            ArmInstr::DmbFull => write!(f, "dmb ish"),
        }
    }
}

/// The x86 compilation scheme (Table 1): the instruction sequence for one
/// access kind.
pub fn x86_sequence(kind: AccessKind) -> Vec<X86Instr> {
    match kind {
        AccessKind::NonatomicRead | AccessKind::AtomicRead => vec![X86Instr::MovLoad],
        AccessKind::NonatomicWrite => vec![X86Instr::MovStore],
        AccessKind::AtomicWrite => vec![X86Instr::Xchg],
    }
}

/// How an ARMv8 compilation scheme lowers each access kind. The paper's
/// named schemes are provided as constants; see [`BAL`], [`FBS`], [`SRA`],
/// [`NAIVE`] and [`STLR_SC`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArmMapping {
    /// Insert a dependent branch after every nonatomic load (BAL,
    /// Table 2a): pins load-to-store order via a control dependency.
    pub branch_after_na_load: bool,
    /// Insert `dmb ld` before every nonatomic store (FBS, Table 2b).
    pub dmbld_before_na_store: bool,
    /// Insert `dmb ld` before atomic loads (both paper schemes).
    pub dmbld_before_at_load: bool,
    /// Compile atomic stores as `ldaxr`/`stlxr` exchanges (both paper
    /// schemes); when false, a bare `stlr` is used — the §9.2 scheme that
    /// is *unsound* for this model.
    pub at_store_exchange: bool,
    /// Insert `dmb st` after atomic stores (both paper schemes).
    pub dmbst_after_at_store: bool,
    /// Compile nonatomic (mutable) loads as `ldar` (SRA).
    pub na_load_acquire: bool,
    /// Compile nonatomic stores as `stlr` (SRA).
    pub na_store_release: bool,
}

/// Table 2a: branch after (mutable) load.
pub const BAL: ArmMapping = ArmMapping {
    branch_after_na_load: true,
    dmbld_before_na_store: false,
    dmbld_before_at_load: true,
    at_store_exchange: true,
    dmbst_after_at_store: true,
    na_load_acquire: false,
    na_store_release: false,
};

/// Table 2b: `dmb ld` (fence) before store.
pub const FBS: ArmMapping = ArmMapping {
    branch_after_na_load: false,
    dmbld_before_na_store: true,
    dmbld_before_at_load: true,
    at_store_exchange: true,
    dmbst_after_at_store: true,
    na_load_acquire: false,
    na_store_release: false,
};

/// Strong release/acquire (§8.2): every mutable load is `ldar`, every
/// assignment `stlr`; strictly stronger than the paper's model needs.
pub const SRA: ArmMapping = ArmMapping {
    branch_after_na_load: false,
    dmbld_before_na_store: false,
    dmbld_before_at_load: true,
    at_store_exchange: true,
    dmbst_after_at_store: true,
    na_load_acquire: true,
    na_store_release: true,
};

/// The do-nothing scheme: plain loads/stores, C++-style `ldar`/`stlr`
/// atomics. Admits load-buffering — unsound for this model (§7.3), which
/// the soundness checker demonstrates on the LB litmus test.
pub const NAIVE: ArmMapping = ArmMapping {
    branch_after_na_load: false,
    dmbld_before_na_store: false,
    dmbld_before_at_load: false,
    at_store_exchange: false,
    dmbst_after_at_store: false,
    na_load_acquire: false,
    na_store_release: false,
};

/// Like BAL but compiling atomic stores as bare `stlr` without `dmb st`:
/// the C++-SC-atomics choice discussed in §9.2, whose atomic writes are too
/// weak for this model.
pub const STLR_SC: ArmMapping = ArmMapping {
    branch_after_na_load: true,
    dmbld_before_na_store: false,
    dmbld_before_at_load: true,
    at_store_exchange: false,
    dmbst_after_at_store: false,
    na_load_acquire: false,
    na_store_release: false,
};

impl ArmMapping {
    /// The instruction sequence this scheme emits for one access kind.
    pub fn sequence(&self, kind: AccessKind) -> Vec<ArmInstr> {
        let mut out = Vec::new();
        match kind {
            AccessKind::NonatomicRead => {
                if self.na_load_acquire {
                    out.push(ArmInstr::Ldar);
                } else {
                    out.push(ArmInstr::Ldr);
                    if self.branch_after_na_load {
                        out.push(ArmInstr::DependentBranch);
                    }
                }
            }
            AccessKind::NonatomicWrite => {
                if self.na_store_release {
                    out.push(ArmInstr::Stlr);
                } else {
                    if self.dmbld_before_na_store {
                        out.push(ArmInstr::DmbLd);
                    }
                    out.push(ArmInstr::Str);
                }
            }
            AccessKind::AtomicRead => {
                if self.dmbld_before_at_load {
                    out.push(ArmInstr::DmbLd);
                }
                out.push(ArmInstr::Ldar);
            }
            AccessKind::AtomicWrite => {
                if self.at_store_exchange {
                    out.push(ArmInstr::Ldaxr);
                    out.push(ArmInstr::Stlxr);
                    out.push(ArmInstr::RetryBranch);
                } else {
                    out.push(ArmInstr::Stlr);
                }
                if self.dmbst_after_at_store {
                    out.push(ArmInstr::DmbSt);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        assert_eq!(
            x86_sequence(AccessKind::NonatomicRead),
            vec![X86Instr::MovLoad]
        );
        assert_eq!(
            x86_sequence(AccessKind::NonatomicWrite),
            vec![X86Instr::MovStore]
        );
        assert_eq!(
            x86_sequence(AccessKind::AtomicRead),
            vec![X86Instr::MovLoad]
        );
        assert_eq!(x86_sequence(AccessKind::AtomicWrite), vec![X86Instr::Xchg]);
    }

    #[test]
    fn table2a_bal_shapes() {
        assert_eq!(
            BAL.sequence(AccessKind::NonatomicRead),
            vec![ArmInstr::Ldr, ArmInstr::DependentBranch]
        );
        assert_eq!(
            BAL.sequence(AccessKind::NonatomicWrite),
            vec![ArmInstr::Str]
        );
        assert_eq!(
            BAL.sequence(AccessKind::AtomicRead),
            vec![ArmInstr::DmbLd, ArmInstr::Ldar]
        );
        assert_eq!(
            BAL.sequence(AccessKind::AtomicWrite),
            vec![
                ArmInstr::Ldaxr,
                ArmInstr::Stlxr,
                ArmInstr::RetryBranch,
                ArmInstr::DmbSt
            ]
        );
    }

    #[test]
    fn table2b_fbs_shapes() {
        assert_eq!(FBS.sequence(AccessKind::NonatomicRead), vec![ArmInstr::Ldr]);
        assert_eq!(
            FBS.sequence(AccessKind::NonatomicWrite),
            vec![ArmInstr::DmbLd, ArmInstr::Str]
        );
    }

    #[test]
    fn sra_uses_acquire_release() {
        assert_eq!(
            SRA.sequence(AccessKind::NonatomicRead),
            vec![ArmInstr::Ldar]
        );
        assert_eq!(
            SRA.sequence(AccessKind::NonatomicWrite),
            vec![ArmInstr::Stlr]
        );
    }

    #[test]
    fn naive_is_bare() {
        assert_eq!(
            NAIVE.sequence(AccessKind::NonatomicRead),
            vec![ArmInstr::Ldr]
        );
        assert_eq!(
            NAIVE.sequence(AccessKind::NonatomicWrite),
            vec![ArmInstr::Str]
        );
        assert_eq!(
            NAIVE.sequence(AccessKind::AtomicWrite),
            vec![ArmInstr::Stlr]
        );
    }

    #[test]
    fn display_matches_paper_syntax() {
        assert_eq!(format!("{}", X86Instr::Xchg), "(lock) xchg R, [x]");
        assert_eq!(format!("{}", ArmInstr::DmbLd), "dmb ld");
    }
}
