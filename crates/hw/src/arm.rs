//! The ARMv8 (AArch64) axiomatic model (Fig. 4) — the abridged
//! multi-copy-atomic presentation the paper uses for its soundness proof.
//!
//! ```text
//! obs = rfe ∪ fre ∪ coe
//! dob = (ctrl ∩ (M × W))                      (addr omitted: no address deps)
//! aob = rmw
//! bob = (po ∩ (Acq × M)) ∪ (po ∩ (M × Rel))
//!     ∪ (dmbld ∩ (R × M)) ∪ (dmbst ∩ (W × W))
//!     ∪ (po ∩ (Rel × Acq))
//! ob  = obs ∪ dob ∪ aob ∪ bob
//!
//! consistent ⇔ acyclic(poloc ∪ rf ∪ fr ∪ co)
//!            ∧ acyclic(ob)
//!            ∧ rmw ∩ (fre; coe) = ∅
//! ```

use bdrst_core::relation::Relation;

use crate::exec::HwExecution;

/// `obs`: observed external communication.
pub fn obs(h: &HwExecution) -> Relation {
    h.rfe().union(&h.fre()).union(&h.coe())
}

/// `dob`: dependency-ordered-before. Our compiled code has no address
/// dependencies, so this is control dependencies into writes.
pub fn dob(h: &HwExecution) -> Relation {
    h.ctrl.filter(|_, b| h.base.events[b].is_write())
}

/// `aob`: atomic-ordered-before (the rmw pairs).
pub fn aob(h: &HwExecution) -> Relation {
    h.rmw.clone()
}

/// `bob`: barrier-ordered-before.
pub fn bob(h: &HwExecution) -> Relation {
    let acq_m = h.base.po.filter(|a, _| h.acq[a]);
    let m_rel = h.base.po.filter(|_, b| h.rel[b]);
    let rel_acq = h.base.po.filter(|a, b| h.rel[a] && h.acq[b]);
    let dmbld_r = h.dmbld.filter(|a, _| h.base.events[a].is_read());
    let dmbst_w = h
        .dmbst
        .filter(|a, b| h.base.events[a].is_write() && h.base.events[b].is_write());
    acq_m
        .union(&m_rel)
        .union(&rel_acq)
        .union(&dmbld_r)
        .union(&dmbst_w)
}

/// `ob`: ordered-before, the ARMv8 global order.
pub fn ob(h: &HwExecution) -> Relation {
    obs(h).union(&dob(h)).union(&aob(h)).union(&bob(h))
}

/// The ARMv8 consistency predicate of Fig. 4.
pub fn arm_consistent(h: &HwExecution) -> bool {
    h.sc_per_location() && ob(h).is_acyclic() && h.rmw_atomic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_candidate, Target};
    use crate::isa::{ArmMapping, BAL, FBS, NAIVE, SRA, STLR_SC};
    use bdrst_axiomatic::{CandidateExecution, EventSet};
    use bdrst_core::loc::{Action, LocKind, LocSet, Val};

    /// LB with the relaxed outcome r0 = r1 = 1 (§7.3's classic example).
    fn lb_relaxed() -> CandidateExecution {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let b = locs.fresh("b", LocKind::Nonatomic);
        let base = EventSet::new(
            locs,
            vec![
                vec![(a, Action::Read(Val(1))), (b, Action::Write(Val(1)))],
                vec![(b, Action::Read(Val(1))), (a, Action::Write(Val(1)))],
            ],
        );
        // 0=IWa, 1=IWb, 2=Ra1, 3=Wb1, 4=Rb1, 5=Wa1
        let rf = Relation::from_edges(base.len(), [(5, 2), (3, 4)]);
        let co = Relation::from_edges(base.len(), [(0, 5), (1, 3)]);
        CandidateExecution { base, rf, co }
    }

    fn lb_allowed_under(m: ArmMapping) -> bool {
        let c = compile_candidate(&lb_relaxed(), Target::Arm(m));
        c.variants.iter().any(arm_consistent)
    }

    #[test]
    fn naive_arm_allows_load_buffering() {
        // The whole reason the paper needs BAL/FBS (§7.3): bare ldr/str
        // lets ARMv8 execute the stores ahead of the loads.
        assert!(lb_allowed_under(NAIVE));
        // But the software model forbids it: unsound compilation.
        assert!(!lb_relaxed().is_consistent());
    }

    #[test]
    fn bal_forbids_load_buffering() {
        assert!(!lb_allowed_under(BAL));
    }

    #[test]
    fn fbs_forbids_load_buffering() {
        assert!(!lb_allowed_under(FBS));
    }

    #[test]
    fn sra_forbids_load_buffering() {
        assert!(!lb_allowed_under(SRA));
    }

    /// The §9.2 example: P0: x = b; A = 1   P1: A = 2; b = 1, with final
    /// A = 2 and x = 1 — forbidden by the model, allowed by C++ SC atomics
    /// compiled with bare stlr.
    fn sec92_candidate() -> CandidateExecution {
        let mut locs = LocSet::new();
        let b = locs.fresh("b", LocKind::Nonatomic);
        let big_a = locs.fresh("A", LocKind::Atomic);
        let base = EventSet::new(
            locs,
            vec![
                vec![(b, Action::Read(Val(1))), (big_a, Action::Write(Val(1)))],
                vec![(big_a, Action::Write(Val(2))), (b, Action::Write(Val(1)))],
            ],
        );
        // 0=IWb, 1=IWA, 2=Rb1, 3=WA1, 4=WA2, 5=Wb1
        let rf = Relation::from_edges(base.len(), [(5, 2)]);
        // Final A = 2: WA1 co WA2.
        let co = Relation::from_edges(base.len(), [(0, 5), (1, 3), (1, 4), (3, 4)]);
        CandidateExecution { base, rf, co }
    }

    #[test]
    fn model_forbids_sec92_outcome() {
        assert!(!sec92_candidate().is_consistent());
    }

    #[test]
    fn stlr_scheme_admits_sec92_outcome() {
        // Compiling atomic stores as bare stlr is too weak for this model:
        // the hardware admits the A=2 ∧ x=1 execution. This is why the
        // paper uses exchanges for atomic stores (§9.2).
        let c = compile_candidate(&sec92_candidate(), Target::Arm(STLR_SC));
        assert!(c.variants.iter().any(arm_consistent));
    }

    #[test]
    fn exchange_scheme_forbids_sec92_outcome() {
        let c = compile_candidate(&sec92_candidate(), Target::Arm(BAL));
        assert!(!c.variants.iter().any(arm_consistent));
    }

    #[test]
    fn mp_with_atomic_flag_sound_under_bal() {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let base = EventSet::new(
            locs,
            vec![
                vec![(a, Action::Write(Val(1))), (f, Action::Write(Val(1)))],
                vec![(f, Action::Read(Val(1))), (a, Action::Read(Val(0)))],
            ],
        );
        let rf = Relation::from_edges(base.len(), [(3, 4), (0, 5)]);
        let co = Relation::from_edges(base.len(), [(0, 2), (1, 3)]);
        let sw = CandidateExecution { base, rf, co };
        assert!(!sw.is_consistent());
        let c = compile_candidate(&sw, Target::Arm(BAL));
        assert!(!c.variants.iter().any(arm_consistent));
    }
}
