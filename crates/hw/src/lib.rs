//! # bdrst-hw — hardware memory models and compilation soundness
//!
//! Implements §7.2–§7.3 of *Bounding Data Races in Space and Time*: the
//! x86-TSO axiomatic model (Fig. 3, [`x86`]), the abridged multi-copy-atomic
//! ARMv8 model (Fig. 4, [`arm`]), the compilation schemes of Table 1 and
//! Tables 2a/2b ([`isa`], [`compile`]), and empirical checkers for the
//! soundness theorems 19/20 ([`soundness`]) — including demonstrations that
//! the *naive* ARM mapping (no branches/barriers) and the bare-`stlr`
//! mapping for atomic stores are unsound for this model (§7.3, §9.2).
//!
//! ```
//! use bdrst_hw::{check_compilation, Target, BAL, NAIVE};
//! use bdrst_lang::Program;
//!
//! let lb = Program::parse(
//!     "nonatomic a b;
//!      thread P0 { r0 = a; b = 1; }
//!      thread P1 { r1 = b; a = 1; }",
//! )?;
//! // Table 2a's scheme is sound; the bare mapping admits load-buffering.
//! assert!(check_compilation(&lb, Target::Arm(BAL), Default::default())?.is_sound());
//! assert!(!check_compilation(&lb, Target::Arm(NAIVE), Default::default())?.is_sound());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod arm;
pub mod compile;
pub mod exec;
pub mod isa;
pub mod soundness;
pub mod x86;

pub use arm::{arm_consistent, bob, ob, obs};
pub use compile::{compile_candidate, Compiled, Target};
pub use exec::HwExecution;
pub use isa::{
    x86_sequence, AccessKind, ArmInstr, ArmMapping, X86Instr, BAL, FBS, NAIVE, SRA, STLR_SC,
};
pub use soundness::{
    check_compilation, hw_outcomes, SoundnessStats, SoundnessVerdict, UnsoundExecution,
};
pub use x86::{ghb, x86_consistent};
