//! The x86-TSO axiomatic model (Fig. 3), in the presentation of Alglave
//! et al. used by the paper.
//!
//! ```text
//! poloc   = po ∩ same-location
//! poghb   = po ∩ ((W × W) ∪ (R × M))
//! implied = po ∩ ((W × WA) ∪ (WA × R))    WA = writes with rmw-predecessor
//! ghb     = implied ∪ poghb ∪ rfe ∪ fr ∪ co
//!
//! consistent ⇔ acyclic(poloc ∪ rf ∪ fr ∪ co)
//!            ∧ acyclic(ghb)
//!            ∧ rmw ∩ (fre; coe) = ∅
//! ```

use bdrst_core::relation::Relation;

use crate::exec::HwExecution;

/// `poghb = po ∩ ((W × W) ∪ (R × M))`: the program order x86 preserves
/// globally — everything except write-to-read (the store buffer).
pub fn poghb(h: &HwExecution) -> Relation {
    h.base.po.filter(|a, b| {
        let (ea, eb) = (&h.base.events[a], &h.base.events[b]);
        (ea.is_write() && eb.is_write()) || ea.is_read()
    })
}

/// `implied = po ∩ ((W × WA) ∪ (WA × R))`: extra order from locked
/// instructions (they drain the store buffer).
pub fn implied(h: &HwExecution) -> Relation {
    let wa = h.rmw_writes();
    h.base.po.filter(|a, b| {
        let (ea, eb) = (&h.base.events[a], &h.base.events[b]);
        (ea.is_write() && wa[b]) || (wa[a] && eb.is_read())
    })
}

/// The x86 global-happens-before relation.
pub fn ghb(h: &HwExecution) -> Relation {
    implied(h)
        .union(&poghb(h))
        .union(&h.rfe())
        .union(&h.fr())
        .union(&h.co)
}

/// The x86-TSO consistency predicate of Fig. 3.
pub fn x86_consistent(h: &HwExecution) -> bool {
    h.sc_per_location() && ghb(h).is_acyclic() && h.rmw_atomic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_candidate, Target};
    use bdrst_axiomatic::{CandidateExecution, EventSet};
    use bdrst_core::loc::{Action, LocKind, LocSet, Val};

    /// SB with the relaxed outcome r0 = r1 = 0 — allowed by TSO.
    fn sb_relaxed(atomic: bool) -> CandidateExecution {
        let mut locs = LocSet::new();
        let kind = if atomic {
            LocKind::Atomic
        } else {
            LocKind::Nonatomic
        };
        let a = locs.fresh("a", kind);
        let b = locs.fresh("b", kind);
        let base = EventSet::new(
            locs,
            vec![
                vec![(a, Action::Write(Val(1))), (b, Action::Read(Val(0)))],
                vec![(b, Action::Write(Val(1))), (a, Action::Read(Val(0)))],
            ],
        );
        // 0=IWa, 1=IWb, 2=Wa1, 3=Rb0, 4=Wb1, 5=Ra0
        let rf = Relation::from_edges(base.len(), [(1, 3), (0, 5)]);
        let co = Relation::from_edges(base.len(), [(0, 2), (1, 4)]);
        CandidateExecution { base, rf, co }
    }

    #[test]
    fn tso_allows_nonatomic_sb_relaxation() {
        let sw = sb_relaxed(false);
        let c = compile_candidate(&sw, Target::X86);
        assert!(c.variants.iter().any(x86_consistent));
        // And the software model allows it too (plain movs are sound).
        assert!(sw.is_consistent());
    }

    #[test]
    fn xchg_forbids_atomic_sb_relaxation() {
        // With atomic locations, writes compile to xchg; TSO then forbids
        // r0 = r1 = 0 (this is why the scheme is sound for SC atomics).
        let sw = sb_relaxed(true);
        let c = compile_candidate(&sw, Target::X86);
        assert!(
            !c.variants.iter().any(x86_consistent),
            "locked xchg must forbid the relaxed SB outcome"
        );
        // The software model also forbids it.
        assert!(!sw.is_consistent());
    }

    #[test]
    fn load_buffering_forbidden_by_tso() {
        // LB relaxed outcome: hardware reads-before-writes order (R × M in
        // poghb) forbids it on x86.
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let b = locs.fresh("b", LocKind::Nonatomic);
        let base = EventSet::new(
            locs,
            vec![
                vec![(a, Action::Read(Val(1))), (b, Action::Write(Val(1)))],
                vec![(b, Action::Read(Val(1))), (a, Action::Write(Val(1)))],
            ],
        );
        // 0=IWa, 1=IWb, 2=Ra1, 3=Wb1, 4=Rb1, 5=Wa1
        let rf = Relation::from_edges(base.len(), [(5, 2), (3, 4)]);
        let co = Relation::from_edges(base.len(), [(0, 5), (1, 3)]);
        let sw = CandidateExecution { base, rf, co };
        let c = compile_candidate(&sw, Target::X86);
        assert!(!c.variants.iter().any(x86_consistent));
    }

    #[test]
    fn mp_forbidden_with_atomic_flag() {
        // The compiled MP relaxed outcome must be x86-inconsistent:
        // store-store and load-load order are both preserved by TSO.
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let base = EventSet::new(
            locs,
            vec![
                vec![(a, Action::Write(Val(1))), (f, Action::Write(Val(1)))],
                vec![(f, Action::Read(Val(1))), (a, Action::Read(Val(0)))],
            ],
        );
        let rf = Relation::from_edges(base.len(), [(3, 4), (0, 5)]);
        let co = Relation::from_edges(base.len(), [(0, 2), (1, 3)]);
        let sw = CandidateExecution { base, rf, co };
        let c = compile_candidate(&sw, Target::X86);
        assert!(!c.variants.iter().any(x86_consistent));
    }
}
