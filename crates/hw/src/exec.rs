//! Hardware candidate executions (§7.2–7.3).
//!
//! An x86/ARM-candidate execution is a candidate execution plus an `rmw`
//! relation pairing the read and write halves of read-modify-write
//! instructions (the Wickerson et al. encoding), and — for ARM —
//! per-event acquire/release annotations and the `ctrl`/`dmbld`/`dmbst`
//! relations induced by the emitted barriers and dependent branches.

use bdrst_axiomatic::EventSet;
use bdrst_core::relation::Relation;

/// A hardware-level candidate execution. Produced by
/// [`crate::compile::compile_candidate`]; consumed by the x86 ([`crate::x86`])
/// and ARMv8 ([`crate::arm`]) consistency predicates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HwExecution {
    /// Events (including the pseudo-reads of exchange-compiled atomic
    /// writes) and program order.
    pub base: EventSet,
    /// Hardware reads-from.
    pub rf: Relation,
    /// Hardware coherence.
    pub co: Relation,
    /// Read-modify-write pairs: relates the read half to the write half,
    /// adjacent in program order.
    pub rmw: Relation,
    /// Per-event: is this a load-acquire (`ldar`/`ldaxr`)?
    pub acq: Vec<bool>,
    /// Per-event: is this a store-release (`stlr`/`stlxr`)?
    pub rel: Vec<bool>,
    /// Control dependencies: `(E₁, E₂)` in program order separated by a
    /// branch dependent on `E₁` (the BAL scheme's `cbz`).
    pub ctrl: Relation,
    /// Events in program order separated by a `dmb ld`.
    pub dmbld: Relation,
    /// Events in program order separated by a `dmb st`.
    pub dmbst: Relation,
}

impl HwExecution {
    /// `poloc`: program order restricted to same-location accesses.
    pub fn poloc(&self) -> Relation {
        self.base
            .po
            .filter(|a, b| self.base.events[a].loc == self.base.events[b].loc)
    }

    /// From-reads `fr = rf⁻¹; co`.
    pub fn fr(&self) -> Relation {
        self.rf.transpose().compose(&self.co)
    }

    /// External reads-from (`rf \ po`).
    pub fn rfe(&self) -> Relation {
        self.rf.minus(&self.base.po)
    }

    /// External coherence (`co \ po`).
    pub fn coe(&self) -> Relation {
        self.co.minus(&self.base.po)
    }

    /// External from-reads (`fr \ po`).
    pub fn fre(&self) -> Relation {
        self.fr().minus(&self.base.po)
    }

    /// Per-location SC: `acyclic(poloc ∪ rf ∪ fr ∪ co)` — required by both
    /// hardware models.
    pub fn sc_per_location(&self) -> bool {
        self.poloc()
            .union(&self.rf)
            .union(&self.fr())
            .union(&self.co)
            .is_acyclic()
    }

    /// RMW atomicity: `rmw ∩ (fre; coe) = ∅` — no write intervenes between
    /// the read and write halves of an exchange.
    pub fn rmw_atomic(&self) -> bool {
        self.rmw
            .intersect(&self.fre().compose(&self.coe()))
            .is_empty()
    }

    /// Indices of write events whose `rmw`-predecessor exists (the paper's
    /// `WA`, atomic writes, in the x86 model).
    pub fn rmw_writes(&self) -> Vec<bool> {
        let n = self.base.len();
        let mut wa = vec![false; n];
        for (_, w) in self.rmw.iter() {
            wa[w] = true;
        }
        wa
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdrst_core::loc::{Action, LocKind, LocSet, Val};

    /// One thread: Wx1 then Rx1 with rf internal; sanity for the helpers.
    fn simple() -> HwExecution {
        let mut locs = LocSet::new();
        let x = locs.fresh("x", LocKind::Nonatomic);
        let base = EventSet::new(
            locs,
            vec![vec![(x, Action::Write(Val(1))), (x, Action::Read(Val(1)))]],
        );
        // events: 0=IWx, 1=Wx1, 2=Rx1
        let rf = Relation::from_edges(base.len(), [(1, 2)]);
        let co = Relation::from_edges(base.len(), [(0, 1)]);
        let n = base.len();
        HwExecution {
            base,
            rf,
            co,
            rmw: Relation::new(n),
            acq: vec![false; n],
            rel: vec![false; n],
            ctrl: Relation::new(n),
            dmbld: Relation::new(n),
            dmbst: Relation::new(n),
        }
    }

    #[test]
    fn helpers_behave() {
        let h = simple();
        assert!(h.poloc().contains(1, 2));
        assert!(h.rfe().is_empty()); // internal rf
        assert!(h.sc_per_location());
        assert!(h.rmw_atomic()); // no rmw pairs at all
        assert_eq!(h.rmw_writes(), vec![false, false, false]);
    }

    #[test]
    fn fr_connects_reads_to_later_writes() {
        let mut h = simple();
        // Read from the initial write instead; Wx1 is now fr-after it.
        h.rf = Relation::from_edges(h.base.len(), [(0, 2)]);
        let fr = h.fr();
        assert!(fr.contains(2, 1));
        // poloc ∪ rf ∪ fr ∪ co now has a cycle: Wx1 po Rx1 fr Wx1.
        assert!(!h.sc_per_location());
    }
}
