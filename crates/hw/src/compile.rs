//! Compiling software candidate executions to hardware candidate
//! executions (§7.2–7.3).
//!
//! The compilation witnesses of Theorems 19/20 are functions `ϕ` embedding
//! the software events into the hardware events, preserving `po`, `rf` and
//! `co`, with each atomic write mapped to an exchange (a `rmw`-paired
//! pseudo-read plus write) when the scheme says so. The pseudo-read's `rf`
//! source is *not* determined by the software execution — the hardware may
//! let the exchange read any write — so [`compile_candidate`] returns one
//! hardware execution per pseudo-read `rf` choice; the RMW-atomicity axiom
//! rejects the non-adjacent ones.

use bdrst_axiomatic::{CandidateExecution, EventSet};
use bdrst_core::loc::{Action, LocKind};
use bdrst_core::relation::Relation;

use crate::exec::HwExecution;
use crate::isa::ArmMapping;

/// A compilation target.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Target {
    /// x86-TSO with the Table 1 scheme (atomic writes are `xchg`).
    X86,
    /// ARMv8 with a given mapping (Tables 2a/2b, SRA, or the unsound ones).
    Arm(ArmMapping),
}

/// Per-hardware-event construction data.
#[derive(Clone, Copy, Debug)]
struct HwSpec {
    /// Source software event, or `None` for a pseudo-read.
    sw: Option<usize>,
    /// The paired software atomic write, for pseudo-reads.
    pseudo_for: Option<usize>,
    acq: bool,
    rel: bool,
    branch_after: bool,
    dmbld_before: bool,
    dmbst_after: bool,
}

/// The result of compiling one software candidate execution: all hardware
/// candidate executions it maps to (one per pseudo-read `rf` choice), plus
/// the event embedding.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// Hardware executions, one per pseudo-read rf assignment.
    pub variants: Vec<HwExecution>,
    /// `hw_of[sw_index] = hw_index` — the embedding `ϕ`.
    pub hw_of: Vec<usize>,
}

/// Compiles a software candidate execution for `target`.
///
/// Returns every hardware candidate execution whose real events mirror the
/// software `rf`/`co` (as Theorems 19/20's compilation relation requires)
/// and whose pseudo-reads read from any write to their location other than
/// their own write half.
pub fn compile_candidate(sw: &CandidateExecution, target: Target) -> Compiled {
    let locs = &sw.base.locs;
    let nlocs = locs.len();
    let nthreads = sw
        .base
        .events
        .iter()
        .filter_map(|e| e.thread())
        .map(|t| t.index() + 1)
        .max()
        .unwrap_or(0);

    // Build per-thread hardware event specs, in software po order (software
    // events are laid out per thread contiguously by EventSet::new).
    let mut specs_per_thread: Vec<Vec<HwSpec>> = vec![Vec::new(); nthreads];
    let mut actions_per_thread: Vec<Vec<(bdrst_core::loc::Loc, Action)>> =
        vec![Vec::new(); nthreads];
    for (i, e) in sw.base.events.iter().enumerate() {
        let Some(t) = e.thread() else { continue };
        let t = t.index();
        let atomic = locs.kind(e.loc) == LocKind::Atomic;
        let plain = HwSpec {
            sw: Some(i),
            pseudo_for: None,
            acq: false,
            rel: false,
            branch_after: false,
            dmbld_before: false,
            dmbst_after: false,
        };
        match target {
            Target::X86 => {
                if atomic && e.is_write() {
                    // xchg = pseudo-read + write, rmw-paired.
                    specs_per_thread[t].push(HwSpec {
                        sw: None,
                        pseudo_for: Some(i),
                        ..plain
                    });
                    actions_per_thread[t].push((e.loc, Action::Read(e.value())));
                }
                specs_per_thread[t].push(plain);
                actions_per_thread[t].push((e.loc, e.action));
            }
            Target::Arm(m) => {
                let spec = match (atomic, e.is_write()) {
                    (false, false) => HwSpec {
                        acq: m.na_load_acquire,
                        branch_after: m.branch_after_na_load && !m.na_load_acquire,
                        ..plain
                    },
                    (false, true) => HwSpec {
                        rel: m.na_store_release,
                        dmbld_before: m.dmbld_before_na_store && !m.na_store_release,
                        ..plain
                    },
                    (true, false) => HwSpec {
                        acq: true,
                        dmbld_before: m.dmbld_before_at_load,
                        ..plain
                    },
                    (true, true) => {
                        if m.at_store_exchange {
                            // ldaxr pseudo-read...
                            specs_per_thread[t].push(HwSpec {
                                sw: None,
                                pseudo_for: Some(i),
                                acq: true,
                                ..plain
                            });
                            actions_per_thread[t].push((e.loc, Action::Read(e.value())));
                            // ...then the stlxr write half.
                            HwSpec {
                                rel: true,
                                dmbst_after: m.dmbst_after_at_store,
                                ..plain
                            }
                        } else {
                            HwSpec {
                                rel: true,
                                dmbst_after: m.dmbst_after_at_store,
                                ..plain
                            }
                        }
                    }
                };
                specs_per_thread[t].push(spec);
                actions_per_thread[t].push((e.loc, e.action));
            }
        }
    }

    // Hardware event layout mirrors EventSet::new: init events first, then
    // thread blocks.
    let mut hw_index_of_slot: Vec<Vec<usize>> = Vec::with_capacity(nthreads);
    let mut acc = nlocs;
    for specs in &specs_per_thread {
        hw_index_of_slot.push((acc..acc + specs.len()).collect());
        acc += specs.len();
    }
    let n_hw = acc;

    let mut hw_of = vec![usize::MAX; sw.base.len()];
    for (l, slot) in hw_of.iter_mut().enumerate().take(nlocs) {
        *slot = l; // initial writes map to themselves
    }
    let mut pseudo_pairs: Vec<(usize, usize)> = Vec::new(); // (pseudo hw, sw write)
    let mut flat_specs: Vec<Option<HwSpec>> = vec![None; n_hw];
    for (t, specs) in specs_per_thread.iter().enumerate() {
        for (k, spec) in specs.iter().enumerate() {
            let hw = hw_index_of_slot[t][k];
            flat_specs[hw] = Some(*spec);
            if let Some(swi) = spec.sw {
                hw_of[swi] = hw;
            }
            if let Some(swi) = spec.pseudo_for {
                pseudo_pairs.push((hw, swi));
            }
        }
    }

    // Mirror rf and co through the embedding.
    let mut rf = Relation::new(n_hw);
    for (a, b) in sw.rf.iter() {
        rf.insert(hw_of[a], hw_of[b]);
    }
    let mut co = Relation::new(n_hw);
    for (a, b) in sw.co.iter() {
        co.insert(hw_of[a], hw_of[b]);
    }

    // rmw pairs and the per-event annotation vectors.
    let mut rmw = Relation::new(n_hw);
    for &(pseudo, sw_write) in &pseudo_pairs {
        rmw.insert(pseudo, hw_of[sw_write]);
    }
    let mut acq = vec![false; n_hw];
    let mut rel = vec![false; n_hw];
    let mut ctrl = Relation::new(n_hw);
    let mut dmbld = Relation::new(n_hw);
    let mut dmbst = Relation::new(n_hw);
    for (t, specs) in specs_per_thread.iter().enumerate() {
        for (k, spec) in specs.iter().enumerate() {
            let hw = hw_index_of_slot[t][k];
            acq[hw] = spec.acq;
            rel[hw] = spec.rel;
        }
        // Barrier-induced relations between same-thread pairs (i, j), i < j.
        for i in 0..specs.len() {
            for j in i + 1..specs.len() {
                let (hi, hj) = (hw_index_of_slot[t][i], hw_index_of_slot[t][j]);
                if specs[i].branch_after {
                    ctrl.insert(hi, hj);
                }
                // dmb ld sits *before* an event: slot k separates i < k <= j.
                if (i + 1..=j).any(|k| specs[k].dmbld_before) {
                    dmbld.insert(hi, hj);
                }
                // dmb st sits *after* an event: slot k separates i <= k < j.
                if (i..j).any(|k| specs[k].dmbst_after) {
                    dmbst.insert(hi, hj);
                }
            }
        }
    }

    // Enumerate pseudo-read rf sources: any write to the location except
    // the paired write half itself.
    let mut variants = Vec::new();
    let mut choices: Vec<(usize, Vec<usize>)> = Vec::new(); // (pseudo hw, sources)
    {
        // Collect hardware writes per location: init + mirrored sw writes.
        for &(pseudo, sw_write) in &pseudo_pairs {
            let loc = sw.base.events[sw_write].loc;
            let own = hw_of[sw_write];
            let mut sources: Vec<usize> = vec![loc.index()];
            for (i, e) in sw.base.events.iter().enumerate() {
                if !e.is_init() && e.is_write() && e.loc == loc && hw_of[i] != own {
                    sources.push(hw_of[i]);
                }
            }
            choices.push((pseudo, sources));
        }
    }
    let mut idx = vec![0usize; choices.len()];
    loop {
        // Build this variant's events (pseudo-read values = source values).
        let mut actions = actions_per_thread.clone();
        let mut rf_v = rf.clone();
        for (c, &(pseudo, ref sources)) in choices.iter().enumerate() {
            let src = sources[idx[c]];
            rf_v.insert(src, pseudo);
            // Patch the pseudo-read's value to match its source.
            let (t, k) = slot_of(pseudo, &hw_index_of_slot);
            let src_val = if src < nlocs {
                bdrst_core::loc::Val::INIT
            } else {
                let (st, sk) = slot_of(src, &hw_index_of_slot);
                actions[st][sk].1.value()
            };
            actions[t][k].1 = Action::Read(src_val);
        }
        let base = EventSet::new(locs.clone(), actions);
        variants.push(HwExecution {
            base,
            rf: rf_v,
            co: co.clone(),
            rmw: rmw.clone(),
            acq: acq.clone(),
            rel: rel.clone(),
            ctrl: ctrl.clone(),
            dmbld: dmbld.clone(),
            dmbst: dmbst.clone(),
        });
        // Odometer.
        let mut i = 0;
        loop {
            if i == idx.len() {
                return Compiled { variants, hw_of };
            }
            idx[i] += 1;
            if idx[i] < choices[i].1.len() {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

fn slot_of(hw: usize, hw_index_of_slot: &[Vec<usize>]) -> (usize, usize) {
    for (t, slots) in hw_index_of_slot.iter().enumerate() {
        if let Some(k) = slots.iter().position(|&h| h == hw) {
            return (t, k);
        }
    }
    panic!("hardware index {hw} is not a thread event");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BAL, FBS, NAIVE};
    use bdrst_core::loc::{LocKind, LocSet, Val};

    /// MP with an atomic flag, relaxed outcome (r0=1, r1=0).
    fn mp_relaxed() -> CandidateExecution {
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let f = locs.fresh("F", LocKind::Atomic);
        let base = EventSet::new(
            locs,
            vec![
                vec![(a, Action::Write(Val(1))), (f, Action::Write(Val(1)))],
                vec![(f, Action::Read(Val(1))), (a, Action::Read(Val(0)))],
            ],
        );
        // 0=IWa, 1=IWF, 2=Wa1, 3=WF1, 4=RF1, 5=Ra0
        let rf = Relation::from_edges(base.len(), [(3, 4), (0, 5)]);
        let co = Relation::from_edges(base.len(), [(0, 2), (1, 3)]);
        CandidateExecution { base, rf, co }
    }

    #[test]
    fn x86_compilation_adds_rmw_pair() {
        let c = compile_candidate(&mp_relaxed(), Target::X86);
        let h = &c.variants[0];
        // One atomic write → one rmw pair, one extra event.
        assert_eq!(h.rmw.len(), 1);
        assert_eq!(h.base.len(), mp_relaxed().base.len() + 1);
        let (r, w) = h.rmw.iter().next().unwrap();
        assert!(h.base.events[r].is_read());
        assert!(h.base.events[w].is_write());
        assert!(h.base.po.contains(r, w));
    }

    #[test]
    fn pseudo_read_sources_enumerated() {
        // F has only the init write as alternative source → 1 variant.
        let c = compile_candidate(&mp_relaxed(), Target::X86);
        assert_eq!(c.variants.len(), 1);
        let h = &c.variants[0];
        let (r, _) = h.rmw.iter().next().unwrap();
        // The pseudo-read reads the initial write of F.
        assert!(h.rf.contains(1, r));
    }

    #[test]
    fn bal_adds_ctrl_from_na_loads() {
        let c = compile_candidate(&mp_relaxed(), Target::Arm(BAL));
        let h = &c.variants[0];
        // The nonatomic read of `a` (last event of P1) has a branch after
        // it, but nothing follows, so no ctrl edge from it; the atomic read
        // has a dmb ld before it separating it from... nothing before it.
        // Check instead that acquire/release annotations landed.
        let f_read_hw = c.hw_of[4];
        assert!(h.acq[f_read_hw], "ldar is an acquire");
        let f_write_hw = c.hw_of[3];
        assert!(h.rel[f_write_hw], "stlxr is a release");
        assert_eq!(h.rmw.len(), 1);
    }

    #[test]
    fn fbs_adds_dmbld_before_na_store() {
        // LB shape: P0: Ra; Wb — FBS puts dmb ld before the store,
        // creating a dmbld edge from the read to the write.
        let mut locs = LocSet::new();
        let a = locs.fresh("a", LocKind::Nonatomic);
        let b = locs.fresh("b", LocKind::Nonatomic);
        let base = EventSet::new(
            locs,
            vec![vec![(a, Action::Read(Val(0))), (b, Action::Write(Val(1)))]],
        );
        let rf = Relation::from_edges(base.len(), [(0, 2)]);
        let co = Relation::from_edges(base.len(), [(1, 3)]);
        let sw = CandidateExecution { base, rf, co };
        let c = compile_candidate(&sw, Target::Arm(FBS));
        let h = &c.variants[0];
        assert!(h.dmbld.contains(c.hw_of[2], c.hw_of[3]));
        // BAL uses ctrl instead.
        let c = compile_candidate(&sw, Target::Arm(BAL));
        let h = &c.variants[0];
        assert!(h.ctrl.contains(c.hw_of[2], c.hw_of[3]));
        assert!(!h.dmbld.contains(c.hw_of[2], c.hw_of[3]));
        // NAIVE has neither.
        let c = compile_candidate(&sw, Target::Arm(NAIVE));
        let h = &c.variants[0];
        assert!(!h.ctrl.contains(c.hw_of[2], c.hw_of[3]));
        assert!(!h.dmbld.contains(c.hw_of[2], c.hw_of[3]));
    }

    #[test]
    fn naive_atomic_store_has_no_rmw() {
        let c = compile_candidate(&mp_relaxed(), Target::Arm(NAIVE));
        let h = &c.variants[0];
        assert!(h.rmw.is_empty());
        assert_eq!(h.base.len(), mp_relaxed().base.len());
        // stlr is still a release; ldar still an acquire.
        assert!(h.rel[c.hw_of[3]]);
        assert!(h.acq[c.hw_of[4]]);
    }
}
