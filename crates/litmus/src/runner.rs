//! Running litmus tests against every model in the repository: the
//! operational semantics, the axiomatic semantics, and the compiled-program
//! behaviours under the x86 and ARM hardware models.

use std::collections::BTreeSet;
use std::fmt;

use bdrst_axiomatic::{axiomatic_outcomes, EnumError, EnumLimits, GenError};
use bdrst_core::engine::{parallel_map_with, EngineError, Strategy};
use bdrst_core::explore::ExploreConfig;
use bdrst_hw::{hw_outcomes, Target};
use bdrst_lang::{Observation, Program};

use crate::corpus::LitmusTest;

/// Which models to consult for a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RunConfig {
    /// Budget for operational exploration.
    pub explore: ExploreConfig,
    /// Engine strategy for operational exploration
    /// (DFS/BFS/parallel/work-stealing).
    pub strategy: Strategy,
    /// Budget for axiomatic/hardware enumeration.
    pub enumerate: EnumLimits,
    /// Also compute hardware outcome sets (slower).
    pub hardware: bool,
}

/// Errors from a litmus run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunError {
    /// The source failed to parse (a corpus bug).
    Parse(String),
    /// Operational exploration failed in the engine.
    Operational(EngineError),
    /// Axiomatic or hardware enumeration failed.
    Enumeration(EnumError),
}

impl RunError {
    /// True when the run failed because an exploration or enumeration
    /// *budget* was exhausted — a resource failure, retryable with a
    /// bigger budget — as opposed to a parse error or state corruption.
    /// The `bdrst` CLI and the check server map the two classes onto
    /// different exit codes / error kinds.
    pub fn is_budget(&self) -> bool {
        match self {
            RunError::Parse(_) => false,
            RunError::Operational(e) => e.is_budget(),
            RunError::Enumeration(e) => matches!(
                e,
                EnumError::TooManyCandidates | EnumError::Gen(GenError::TooManyAlternatives { .. })
            ),
        }
    }

    /// A short stable tag for the failure class (`"parse"`, `"budget"`,
    /// `"engine"`), used by report rendering and the service protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            RunError::Parse(_) => "parse",
            _ if self.is_budget() => "budget",
            _ => "engine",
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Parse(e) => write!(f, "parse: {e}"),
            RunError::Operational(e) => write!(f, "operational: {e}"),
            RunError::Enumeration(e) => write!(f, "enumeration: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Verdict of one outcome check against one model's outcome set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CheckVerdict {
    /// The model observed an outcome satisfying the predicate.
    pub observed: bool,
    /// The paper's model says it should be observable.
    pub expected: bool,
}

impl CheckVerdict {
    /// True when observation matches expectation.
    pub fn passes(&self) -> bool {
        self.observed == self.expected
    }
}

/// The full report for one litmus test.
#[derive(Clone, Debug)]
pub struct TestReport {
    /// The test name.
    pub name: &'static str,
    /// Per-check verdicts under the operational model.
    pub operational: Vec<CheckVerdict>,
    /// Per-check verdicts under the axiomatic model.
    pub axiomatic: Vec<CheckVerdict>,
    /// Observations allowed by compiled execution on x86 (Table 1), if
    /// hardware checking was requested: per-check "observed" flags.
    pub x86: Option<Vec<bool>>,
    /// Same for ARM under the BAL scheme (Table 2a).
    pub arm_bal: Option<Vec<bool>>,
    /// Same for ARM under the naive (unsound) mapping.
    pub arm_naive: Option<Vec<bool>>,
}

impl TestReport {
    /// True iff every operational and axiomatic verdict matches the
    /// paper's expectation, and the two semantics agree with each other.
    pub fn passes(&self) -> bool {
        self.operational.iter().all(CheckVerdict::passes)
            && self.axiomatic.iter().all(CheckVerdict::passes)
    }

    /// True iff the sound hardware mappings never exhibit a forbidden
    /// outcome (vacuously true when hardware was not run).
    pub fn hardware_sound(&self) -> bool {
        let fine = |flags: &Option<Vec<bool>>, expected: &[CheckVerdict]| match flags {
            None => true,
            Some(fs) => fs
                .iter()
                .zip(expected)
                .all(|(observed, v)| v.expected || !observed),
        };
        fine(&self.x86, &self.operational) && fine(&self.arm_bal, &self.operational)
    }
}

fn verdicts(
    program: &Program,
    outcomes: &BTreeSet<Observation>,
    test: &LitmusTest,
) -> Vec<CheckVerdict> {
    test.checks
        .iter()
        .map(|c| CheckVerdict {
            observed: outcomes
                .iter()
                .any(|o| (c.predicate)(&program.name_observation(o))),
            expected: c.allowed,
        })
        .collect()
}

fn observed_flags(
    program: &Program,
    outcomes: &BTreeSet<Observation>,
    test: &LitmusTest,
) -> Vec<bool> {
    test.checks
        .iter()
        .map(|c| {
            outcomes
                .iter()
                .any(|o| (c.predicate)(&program.name_observation(o)))
        })
        .collect()
}

/// Builds a [`TestReport`] from already-computed operational and
/// axiomatic outcome sets — the verdict step of [`run_test`], split out
/// so the result store can re-derive reports from *cached* outcome sets
/// without touching the transition semantics.
pub fn report_from_outcomes(
    test: &LitmusTest,
    program: &Program,
    op: &BTreeSet<Observation>,
    ax: &BTreeSet<Observation>,
) -> TestReport {
    TestReport {
        name: test.name,
        operational: verdicts(program, op, test),
        axiomatic: verdicts(program, ax, test),
        x86: None,
        arm_bal: None,
        arm_naive: None,
    }
}

/// Per-check hardware observation flags: one `Vec<bool>` per target, in
/// (x86, ARM-BAL, ARM-naive) order.
pub type HardwareFlags = (Vec<bool>, Vec<bool>, Vec<bool>);

/// Computes the per-check hardware observation flags (x86, ARM-BAL,
/// ARM-naive, in that order) for one test — the hardware third of
/// [`run_test`], exported so cache-backed services can attach hardware
/// results to a [`report_from_outcomes`] report (hardware outcome sets
/// are enumerated per call; only the operational/axiomatic sets cache).
///
/// # Errors
///
/// Returns [`RunError::Enumeration`] when a hardware enumeration
/// exceeds its limits.
pub fn hardware_flags(
    test: &LitmusTest,
    program: &Program,
    enumerate: EnumLimits,
) -> Result<HardwareFlags, RunError> {
    let x = hw_outcomes(program, Target::X86, enumerate).map_err(RunError::Enumeration)?;
    let b = hw_outcomes(program, Target::Arm(bdrst_hw::BAL), enumerate)
        .map_err(RunError::Enumeration)?;
    let n = hw_outcomes(program, Target::Arm(bdrst_hw::NAIVE), enumerate)
        .map_err(RunError::Enumeration)?;
    Ok((
        observed_flags(program, &x, test),
        observed_flags(program, &b, test),
        observed_flags(program, &n, test),
    ))
}

/// Runs one litmus test against the configured models.
///
/// # Errors
///
/// Returns [`RunError`] if parsing or any exploration fails.
pub fn run_test(test: &LitmusTest, config: RunConfig) -> Result<TestReport, RunError> {
    let program = Program::parse(test.source).map_err(|e| RunError::Parse(e.to_string()))?;
    let op = program
        .outcomes_with(config.explore, config.strategy)
        .map_err(RunError::Operational)?
        .set()
        .clone();
    let ax = axiomatic_outcomes(&program, config.enumerate).map_err(RunError::Enumeration)?;
    let (x86, arm_bal, arm_naive) = if config.hardware {
        let (x, b, n) = hardware_flags(test, &program, config.enumerate)?;
        (Some(x), Some(b), Some(n))
    } else {
        (None, None, None)
    };
    Ok(TestReport {
        x86,
        arm_bal,
        arm_naive,
        ..report_from_outcomes(test, &program, &op, &ax)
    })
}

/// One entry of a corpus sweep: the test name and its report (or error).
pub type CorpusEntry = (&'static str, Result<TestReport, RunError>);

/// Runs the whole corpus sequentially, in corpus order (the one-worker
/// case of [`run_corpus_sharded`]).
pub fn run_corpus(config: RunConfig) -> Vec<CorpusEntry> {
    run_corpus_sharded(config, 1)
}

/// Runs the whole corpus sharded across the engine's parallel map: each
/// litmus test is one work item, claimed dynamically by worker threads
/// (test costs vary by orders of magnitude, so static chunking would
/// straggle). `threads == 0` uses every available core.
///
/// Produces exactly the same entries as [`run_corpus`], in the same
/// (corpus) order — the sweep-equivalence tests assert this.
pub fn run_corpus_sharded(config: RunConfig, threads: usize) -> Vec<CorpusEntry> {
    let tests = crate::corpus::all_tests();
    parallel_map_with(&tests, threads, |t| (t.name, run_test(t, config)))
}

/// True iff every test in a sweep produced a passing report.
pub fn corpus_passes(entries: &[CorpusEntry]) -> bool {
    entries
        .iter()
        .all(|(_, r)| r.as_ref().map(TestReport::passes).unwrap_or(false))
}

/// The overall classification of a corpus sweep, for exit codes: run
/// failures (budget exhaustion, parse errors) are a different failure
/// class than model-mismatch check failures, and must not blur together.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CorpusVerdict {
    /// Every test ran and every check matched the model.
    Pass,
    /// Every test ran, but some check disagreed with the model.
    CheckFailed,
    /// Some test did not produce a report at all (budget, parse, engine).
    RunFailed,
}

/// Classifies a sweep: any [`RunError`] dominates (the sweep is not a
/// model verdict at all), then any failing check.
pub fn classify_entries<N>(entries: &[(N, Result<TestReport, RunError>)]) -> CorpusVerdict {
    if entries.iter().any(|(_, r)| r.is_err()) {
        CorpusVerdict::RunFailed
    } else if entries
        .iter()
        .any(|(_, r)| !r.as_ref().is_ok_and(TestReport::passes))
    {
        CorpusVerdict::CheckFailed
    } else {
        CorpusVerdict::Pass
    }
}

/// Renders a run of the whole corpus as a table (used by the `litmus`
/// and `bdrst` binaries and EXPERIMENTS.md).
///
/// Tests that failed to *run* are rendered as explicit `ERROR` rows
/// carrying the failure class ([`RunError::kind`]: `budget` vs `parse`
/// vs `engine`) — distinctly from `✗ MISMATCH`, which marks a test that
/// ran fine and disagreed with the model. Callers that need an exit code
/// should use [`classify_entries`] rather than string-matching this
/// table.
pub fn format_reports<N: AsRef<str>>(reports: &[(N, Result<TestReport, RunError>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<34} {:>8} {:>6} {:>6}\n",
        "test", "outcome", "expect", "op", "ax"
    ));
    for (name, entry) in reports {
        match entry {
            Err(e) => {
                out.push_str(&format!(
                    "{:<10} {:<34} {:>8} {:>6} {:>6}   ⚠ ERROR ({}): {}\n",
                    name.as_ref(),
                    "—",
                    "—",
                    "—",
                    "—",
                    e.kind(),
                    e,
                ));
            }
            Ok(rep) => {
                for (i, (opv, axv)) in rep.operational.iter().zip(&rep.axiomatic).enumerate() {
                    out.push_str(&format!(
                        "{:<10} {:<34} {:>8} {:>6} {:>6}{}\n",
                        rep.name,
                        truncate(descs_of(rep, i), 34),
                        if opv.expected { "allowed" } else { "forbid" },
                        if opv.observed { "seen" } else { "—" },
                        if axv.observed { "seen" } else { "—" },
                        if opv.passes() && axv.passes() {
                            ""
                        } else {
                            "   ✗ MISMATCH"
                        },
                    ));
                }
            }
        }
    }
    out
}

// The corpus stores check descriptions statically; recover them by index.
fn descs_of(rep: &TestReport, i: usize) -> &'static str {
    crate::corpus::all_tests()
        .iter()
        .find(|t| t.name == rep.name)
        .map(|t| t.checks[i].description)
        .unwrap_or("?")
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n - 1).collect::<String>() + "…"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn sb_passes_both_models() {
        let rep = run_test(&corpus::SB, RunConfig::default()).unwrap();
        assert!(rep.passes(), "{rep:?}");
    }

    #[test]
    fn mp_passes_both_models() {
        let rep = run_test(&corpus::MP, RunConfig::default()).unwrap();
        assert!(rep.passes(), "{rep:?}");
    }

    #[test]
    fn lb_forbidden_everywhere() {
        let rep = run_test(&corpus::LB, RunConfig::default()).unwrap();
        assert!(rep.passes(), "{rep:?}");
    }

    #[test]
    fn example1_passes() {
        let rep = run_test(&corpus::EXAMPLE1, RunConfig::default()).unwrap();
        assert!(rep.passes(), "{rep:?}");
    }

    #[test]
    fn example3_passes() {
        let rep = run_test(&corpus::EXAMPLE3, RunConfig::default()).unwrap();
        assert!(rep.passes(), "{rep:?}");
    }

    #[test]
    fn corpus_outcome_sets_identical_across_strategies() {
        // The acceptance bar for the engine refactor: DFS, BFS, the
        // level-synchronous parallel engine and the work-stealing engine
        // produce byte-identical canonical outcome sets on the full
        // corpus.
        for t in corpus::all_tests() {
            let p = Program::parse(t.source).unwrap();
            let cfg = ExploreConfig::default();
            let dfs = p.outcomes_with(cfg, Strategy::Dfs).unwrap().set().clone();
            let bfs = p.outcomes_with(cfg, Strategy::Bfs).unwrap().set().clone();
            let par = p
                .outcomes_with(cfg, Strategy::Parallel)
                .unwrap()
                .set()
                .clone();
            let ws = p
                .outcomes_with(cfg, Strategy::WorkStealing)
                .unwrap()
                .set()
                .clone();
            assert_eq!(dfs, bfs, "DFS vs BFS diverge on {}", t.name);
            assert_eq!(dfs, par, "DFS vs parallel diverge on {}", t.name);
            assert_eq!(dfs, ws, "DFS vs work-stealing diverge on {}", t.name);
            assert_eq!(
                format!("{dfs:?}"),
                format!("{ws:?}"),
                "rendered outcome sets differ on {}",
                t.name
            );
        }
    }

    #[test]
    fn sharded_sweep_matches_sequential_sweep() {
        let seq = run_corpus(RunConfig::default());
        let par = run_corpus_sharded(RunConfig::default(), 4);
        assert_eq!(seq.len(), par.len());
        for ((n1, r1), (n2, r2)) in seq.iter().zip(&par) {
            assert_eq!(n1, n2);
            assert_eq!(
                format!("{r1:?}"),
                format!("{r2:?}"),
                "sweep diverges on {n1}"
            );
        }
        assert!(corpus_passes(&seq), "corpus should pass: {seq:?}");
    }

    #[test]
    fn corpus_graph_replay_outcomes_match_live() {
        // The interner-backed successor graph must reproduce every
        // test's operational outcome set without re-running the
        // semantics: record the graph once, then read outcomes off the
        // cached terminal states.
        for t in corpus::all_tests() {
            let p = Program::parse(t.source).unwrap();
            let live = p.outcomes(ExploreConfig::default()).unwrap().set().clone();
            let (graph, _) = p.state_graph(ExploreConfig::default()).unwrap();
            let cached = p.outcomes_from_graph(&graph).set().clone();
            assert_eq!(live, cached, "graph replay diverges on {}", t.name);
        }
    }

    #[test]
    fn parallel_strategy_in_run_config() {
        let cfg = RunConfig {
            strategy: Strategy::Parallel,
            ..RunConfig::default()
        };
        let rep = run_test(&corpus::MP, cfg).unwrap();
        assert!(rep.passes(), "{rep:?}");
    }

    #[test]
    fn work_stealing_strategy_in_run_config() {
        let cfg = RunConfig {
            strategy: Strategy::WorkStealing,
            ..RunConfig::default()
        };
        let rep = run_test(&corpus::MP, cfg).unwrap();
        assert!(rep.passes(), "{rep:?}");
    }

    #[test]
    fn work_stealing_sweep_matches_sequential_sweep() {
        // The whole corpus under the work-stealing strategy, itself
        // sharded test-by-test over the stealing pool: reports must be
        // identical to the fully sequential sweep.
        let ws = RunConfig {
            strategy: Strategy::WorkStealing,
            ..RunConfig::default()
        };
        let seq = run_corpus(RunConfig::default());
        let par = run_corpus_sharded(ws, 4);
        assert_eq!(seq.len(), par.len());
        for ((n1, r1), (n2, r2)) in seq.iter().zip(&par) {
            assert_eq!(n1, n2);
            assert_eq!(
                format!("{r1:?}"),
                format!("{r2:?}"),
                "work-stealing sweep diverges on {n1}"
            );
        }
    }

    #[test]
    fn report_from_outcomes_matches_run_test() {
        for t in corpus::all_tests() {
            let program = Program::parse(t.source).unwrap();
            let op = program
                .outcomes(ExploreConfig::default())
                .unwrap()
                .set()
                .clone();
            let ax = bdrst_axiomatic::axiomatic_outcomes(&program, Default::default()).unwrap();
            let from_outcomes = report_from_outcomes(t, &program, &op, &ax);
            let live = run_test(t, RunConfig::default()).unwrap();
            assert_eq!(
                format!("{from_outcomes:?}"),
                format!("{live:?}"),
                "reports diverge on {}",
                t.name
            );
        }
    }

    #[test]
    fn run_error_kinds_classify_budget_and_parse() {
        let tiny = RunConfig {
            explore: ExploreConfig {
                max_states: 1,
                max_traces: 1,
            },
            ..RunConfig::default()
        };
        let err = run_test(&corpus::SB, tiny).unwrap_err();
        assert!(err.is_budget(), "{err:?}");
        assert_eq!(err.kind(), "budget");
        let parse = RunError::Parse("oops".into());
        assert!(!parse.is_budget());
        assert_eq!(parse.kind(), "parse");
    }

    #[test]
    fn format_reports_surfaces_run_errors_distinctly() {
        let good = run_test(&corpus::SB, RunConfig::default()).unwrap();
        let entries = vec![
            ("SB".to_string(), Ok(good)),
            (
                "BOOM".to_string(),
                Err(RunError::Operational(
                    bdrst_core::engine::EngineError::budget(7),
                )),
            ),
            ("BAD".to_string(), Err(RunError::Parse("nope".into()))),
        ];
        let table = format_reports(&entries);
        assert!(table.contains("ERROR (budget)"), "{table}");
        assert!(table.contains("ERROR (parse)"), "{table}");
        assert!(!table.contains("MISMATCH"), "{table}");
        assert_eq!(classify_entries(&entries), CorpusVerdict::RunFailed);
        let ok_only = vec![entries.into_iter().next().unwrap()];
        assert_eq!(classify_entries(&ok_only), CorpusVerdict::Pass);
    }

    #[test]
    fn naive_arm_shows_lb_on_hardware() {
        let cfg = RunConfig {
            hardware: true,
            ..RunConfig::default()
        };
        let rep = run_test(&corpus::LB, cfg).unwrap();
        // The forbidden outcome is visible under the naive mapping…
        assert!(rep.arm_naive.as_ref().unwrap()[0]);
        // …but not under BAL or x86.
        assert!(!rep.arm_bal.as_ref().unwrap()[0]);
        assert!(!rep.x86.as_ref().unwrap()[0]);
        assert!(rep.hardware_sound());
    }
}
