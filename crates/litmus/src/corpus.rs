//! The litmus corpus: the classic shapes (SB, MP, LB, CoRR, IRIW) plus the
//! paper's running examples (§2 Examples 1–3) and the §9.2 SC-atomics
//! comparison. Every test carries outcome checks with the verdict the
//! *paper's model* assigns.

use bdrst_lang::NamedObservation;

/// A named outcome predicate with the model's expected verdict.
pub struct OutcomeCheck {
    /// What the predicate describes, e.g. `"r0 = 1 ∧ r1 = 0"`.
    pub description: &'static str,
    /// The predicate over final observations.
    pub predicate: fn(&NamedObservation<'_>) -> bool,
    /// Whether the paper's model allows an observation satisfying it.
    pub allowed: bool,
}

/// A litmus test: source program plus expected-outcome checks.
pub struct LitmusTest {
    /// Short conventional name (`SB`, `MP`, …).
    pub name: &'static str,
    /// One-line description with the paper reference.
    pub description: &'static str,
    /// The program in `bdrst-lang` surface syntax.
    pub source: &'static str,
    /// Checks to run against the outcome set.
    pub checks: &'static [OutcomeCheck],
}

fn r(o: &NamedObservation<'_>, t: &str, reg: &str) -> i64 {
    o.reg_named(t, reg).unwrap_or(i64::MIN)
}

fn m(o: &NamedObservation<'_>, loc: &str) -> i64 {
    o.mem_named(loc).unwrap_or(i64::MIN)
}

/// Store buffering: both loads may miss the other thread's store.
pub static SB: LitmusTest = LitmusTest {
    name: "SB",
    description: "store buffering on nonatomics: relaxed outcome allowed",
    source: "nonatomic a b;
             thread P0 { a = 1; r0 = b; }
             thread P1 { b = 1; r1 = a; }",
    checks: &[
        OutcomeCheck {
            description: "r0 = 0 ∧ r1 = 0",
            predicate: |o| r(o, "P0", "r0") == 0 && r(o, "P1", "r1") == 0,
            allowed: true,
        },
        OutcomeCheck {
            description: "r0 = 1 ∧ r1 = 1",
            predicate: |o| r(o, "P0", "r0") == 1 && r(o, "P1", "r1") == 1,
            allowed: true,
        },
    ],
};

/// Message passing through an atomic flag: publication works.
pub static MP: LitmusTest = LitmusTest {
    name: "MP",
    description: "message passing, atomic flag: stale data after flag forbidden",
    source: "nonatomic a; atomic f;
             thread P0 { a = 1; f = 1; }
             thread P1 { r0 = f; r1 = a; }",
    checks: &[
        OutcomeCheck {
            description: "r0 = 1 ∧ r1 = 0",
            predicate: |o| r(o, "P1", "r0") == 1 && r(o, "P1", "r1") == 0,
            allowed: false,
        },
        OutcomeCheck {
            description: "r0 = 1 ∧ r1 = 1",
            predicate: |o| r(o, "P1", "r0") == 1 && r(o, "P1", "r1") == 1,
            allowed: true,
        },
        OutcomeCheck {
            description: "r0 = 0 (flag not yet seen)",
            predicate: |o| r(o, "P1", "r0") == 0,
            allowed: true,
        },
    ],
};

/// Message passing with a nonatomic flag: no synchronisation, stale reads
/// allowed (this is the racy variant).
pub static MP_NA: LitmusTest = LitmusTest {
    name: "MP+na",
    description: "message passing, nonatomic flag: stale data allowed (race)",
    source: "nonatomic a f;
             thread P0 { a = 1; f = 1; }
             thread P1 { r0 = f; r1 = a; }",
    checks: &[OutcomeCheck {
        description: "r0 = 1 ∧ r1 = 0",
        predicate: |o| r(o, "P1", "r0") == 1 && r(o, "P1", "r1") == 0,
        allowed: true,
    }],
};

/// Load buffering: forbidden outright — the model preserves poRW (§9.1).
pub static LB: LitmusTest = LitmusTest {
    name: "LB",
    description: "load buffering: forbidden (poRW preserved, §9.1)",
    source: "nonatomic a b;
             thread P0 { r0 = a; b = 1; }
             thread P1 { r1 = b; a = 1; }",
    checks: &[OutcomeCheck {
        description: "r0 = 1 ∧ r1 = 1",
        predicate: |o| r(o, "P0", "r0") == 1 && r(o, "P1", "r1") == 1,
        allowed: false,
    }],
};

/// Load buffering with control dependencies: also forbidden (no
/// out-of-thin-air values, §9.1's second example).
pub static LB_CTRL: LitmusTest = LitmusTest {
    name: "LB+ctrl",
    description: "load buffering with control dependency: no thin air (§9.1)",
    source: "nonatomic a b;
             thread P0 { r0 = a; if (r0 == 1) { b = 1; } }
             thread P1 { r1 = b; a = r1; }",
    checks: &[OutcomeCheck {
        description: "r0 = 1 ∧ r1 = 1 (out of thin air)",
        predicate: |o| r(o, "P0", "r0") == 1 && r(o, "P1", "r1") == 1,
        allowed: false,
    }],
};

/// Read-read coherence on one nonatomic location, *while racing*: this
/// model deliberately has weaker coherence than C++ relaxed atomics (§9.2)
/// — reads do not advance the thread's frontier, so a racing thread may
/// see the new value and then the old one. This is precisely what keeps
/// CSE legal (treating reads as non-side-effecting); the guarantee of §2.3
/// only covers reads with *no concurrent writes* (see [`CORR_SYNC`]).
pub static CORR: LitmusTest = LitmusTest {
    name: "CoRR",
    description: "racy read-read: new-then-old ALLOWED (weak coherence, §9.2)",
    source: "nonatomic a;
             thread P0 { a = 1; }
             thread P1 { r0 = a; r1 = a; }",
    checks: &[
        OutcomeCheck {
            description: "r0 = 1 ∧ r1 = 0",
            predicate: |o| r(o, "P1", "r0") == 1 && r(o, "P1", "r1") == 0,
            allowed: true,
        },
        OutcomeCheck {
            description: "r0 = 0 ∧ r1 = 1",
            predicate: |o| r(o, "P1", "r0") == 0 && r(o, "P1", "r1") == 1,
            allowed: true,
        },
    ],
};

/// Read-read coherence *after synchronisation*: once the writer is
/// ordered before the reads (no concurrent writes), §2.3's guarantee
/// applies — both reads agree.
pub static CORR_SYNC: LitmusTest = LitmusTest {
    name: "CoRR+sync",
    description: "synchronised read-read: reads agree (§2.3 guarantee)",
    source: "nonatomic a; atomic F;
             thread P0 { a = 1; F = 1; }
             thread P1 { r = F; if (r == 1) { r0 = a; r1 = a; } }",
    checks: &[
        OutcomeCheck {
            description: "r = 1 ∧ r0 ≠ r1",
            predicate: |o| r(o, "P1", "r") == 1 && r(o, "P1", "r0") != r(o, "P1", "r1"),
            allowed: false,
        },
        OutcomeCheck {
            description: "r = 1 ∧ r0 = r1 = 1",
            predicate: |o| r(o, "P1", "r") == 1 && r(o, "P1", "r0") == 1 && r(o, "P1", "r1") == 1,
            allowed: true,
        },
    ],
};

/// IRIW with atomic locations: atomics are globally coherent here, so the
/// two readers may not disagree on the write order.
pub static IRIW_AT: LitmusTest = LitmusTest {
    name: "IRIW+at",
    description: "independent reads of independent atomic writes: agree",
    source: "atomic A B;
             thread P0 { A = 1; }
             thread P1 { B = 1; }
             thread P2 { r0 = A; r1 = B; }
             thread P3 { r2 = B; r3 = A; }",
    checks: &[OutcomeCheck {
        description: "readers disagree (1,0)/(1,0)",
        predicate: |o| {
            r(o, "P2", "r0") == 1
                && r(o, "P2", "r1") == 0
                && r(o, "P3", "r2") == 1
                && r(o, "P3", "r3") == 0
        },
        allowed: false,
    }],
};

/// IRIW with nonatomic locations: weak reads let the readers disagree.
pub static IRIW_NA: LitmusTest = LitmusTest {
    name: "IRIW+na",
    description: "independent reads of independent nonatomic writes: may disagree",
    source: "nonatomic a b;
             thread P0 { a = 1; }
             thread P1 { b = 1; }
             thread P2 { r0 = a; r1 = b; }
             thread P3 { r2 = b; r3 = a; }",
    checks: &[OutcomeCheck {
        description: "readers disagree (1,0)/(1,0)",
        predicate: |o| {
            r(o, "P2", "r0") == 1
                && r(o, "P2", "r1") == 0
                && r(o, "P3", "r2") == 1
                && r(o, "P3", "r3") == 0
        },
        allowed: true,
    }],
};

/// §2.1 Example 1: `b = a + 10` with a context racing on `c`. The race on
/// `c` must not affect `b` (data races bounded in space); C++ may
/// miscompile this via rematerialisation.
pub static EXAMPLE1: LitmusTest = LitmusTest {
    name: "Example1",
    description: "§2.1: race on c cannot corrupt b = a + 10 (space bound)",
    source: "nonatomic a b c;
             thread P0 { c = a + 10; b = a + 10; }
             thread P1 { c = 1; }",
    checks: &[
        OutcomeCheck {
            description: "b ≠ a + 10 (b ≠ 10)",
            predicate: |o| m(o, "b") != 10,
            allowed: false,
        },
        OutcomeCheck {
            description: "b = 10 regardless of c",
            predicate: |o| m(o, "b") == 10,
            allowed: true,
        },
    ],
};

/// §2.2 Example 2: after synchronising on the flag, two reads of `a` agree
/// even though `a` was raced on *in the past* (time bound, backwards).
/// Java violates this (appendix D).
pub static EXAMPLE2: LitmusTest = LitmusTest {
    name: "Example2",
    description: "§2.2: past race cannot split b = a; c = a (time bound)",
    source: "nonatomic a b c; atomic flag;
             thread P0 { a = 1; flag = 1; }
             thread P1 { a = 2; f = flag; b = a; c = a; }",
    checks: &[
        OutcomeCheck {
            description: "f = 1 ∧ b ≠ c",
            predicate: |o| r(o, "P1", "f") == 1 && m(o, "b") != m(o, "c"),
            allowed: false,
        },
        OutcomeCheck {
            description: "f = 0 ∧ b ≠ c (race still in progress: allowed)",
            predicate: |o| r(o, "P1", "f") == 0 && m(o, "b") != m(o, "c"),
            allowed: true,
        },
    ],
};

/// §2.2 Example 3: a *future* race cannot reach back: the read of `x`
/// before publication must see 42. Java/ARM allow 7 via load-store
/// reordering; this model forbids it.
pub static EXAMPLE3: LitmusTest = LitmusTest {
    name: "Example3",
    description: "§2.2: future race cannot corrupt a = c.x = 42 (time bound)",
    source: "nonatomic x g out;
             thread P0 { x = 42; out = x; g = 1; }
             thread P1 { r = g; if (r == 1) { x = 7; } }",
    checks: &[
        OutcomeCheck {
            description: "out ≠ 42",
            predicate: |o| m(o, "out") != 42,
            allowed: false,
        },
        OutcomeCheck {
            description: "out = 42",
            predicate: |o| m(o, "out") == 42,
            allowed: true,
        },
    ],
};

/// §9.2: this model's atomic writes are stronger than C++ SC atomics —
/// `A = 2` finally implies `x = 0`.
pub static SEC92: LitmusTest = LitmusTest {
    name: "§9.2",
    description: "atomic writes stronger than C++ SC atomics (stlr unsound)",
    source: "nonatomic b; atomic A;
             thread P0 { x = b; A = 1; }
             thread P1 { A = 2; b = 1; }",
    checks: &[OutcomeCheck {
        description: "A = 2 ∧ x = 1",
        predicate: |o| m(o, "A") == 2 && r(o, "P0", "x") == 1,
        allowed: false,
    }],
};

/// Coherence of write-write within a thread: later write wins.
pub static COWW: LitmusTest = LitmusTest {
    name: "CoWW",
    description: "program-order writes keep their coherence order",
    source: "nonatomic a;
             thread P0 { a = 1; a = 2; }",
    checks: &[
        OutcomeCheck {
            description: "final a = 1",
            predicate: |o| m(o, "a") == 1,
            allowed: false,
        },
        OutcomeCheck {
            description: "final a = 2",
            predicate: |o| m(o, "a") == 2,
            allowed: true,
        },
    ],
};

/// 2+2W: antagonistic write pairs. The outcome with *both* first writes
/// winning is impossible under SC (it needs a cycle of interleaving
/// constraints) but allowed here: write-write order to distinct locations
/// is relaxed, and Write-NA may place a write behind one it never saw.
/// x86-TSO forbids it (poghb keeps W×W), so the hardware is strictly
/// stronger on this shape — allowed, but never observed on the metal.
pub static TWO_PLUS_TWO_W: LitmusTest = LitmusTest {
    name: "2+2W",
    description: "antagonistic writes: both-first-writes-win allowed (SC forbids)",
    source: "nonatomic a b;
             thread P0 { a = 1; b = 2; }
             thread P1 { b = 1; a = 2; }",
    checks: &[
        OutcomeCheck {
            description: "final a = 1 ∧ b = 1",
            predicate: |o| m(o, "a") == 1 && m(o, "b") == 1,
            allowed: true,
        },
        OutcomeCheck {
            description: "final a = 2 ∧ b = 2",
            predicate: |o| m(o, "a") == 2 && m(o, "b") == 2,
            allowed: true,
        },
    ],
};

/// Write-to-read causality (WRC): transitive publication through a chain
/// of atomics works.
pub static WRC: LitmusTest = LitmusTest {
    name: "WRC",
    description: "write-read causality through two atomic hops",
    source: "nonatomic a; atomic F G;
             thread P0 { a = 1; F = 1; }
             thread P1 { r0 = F; if (r0 == 1) { G = 1; } }
             thread P2 { r1 = G; if (r1 == 1) { r2 = a; } }",
    checks: &[
        OutcomeCheck {
            description: "r1 = 1 ∧ r2 = 0",
            predicate: |o| r(o, "P2", "r1") == 1 && r(o, "P2", "r2") == 0,
            allowed: false,
        },
        OutcomeCheck {
            description: "r1 = 1 ∧ r2 = 1",
            predicate: |o| r(o, "P2", "r1") == 1 && r(o, "P2", "r2") == 1,
            allowed: true,
        },
    ],
};

/// Three-thread store buffering around a cycle of locations: every
/// combination of stale and fresh reads is reachable — the fully relaxed
/// shape, and (three threads × three locations) a stress test for the
/// partial-order reduction, which prunes interleavings that only permute
/// accesses to different locations.
pub static SB3: LitmusTest = LitmusTest {
    name: "SB3",
    description: "three-thread store buffering: all read combinations allowed",
    source: "nonatomic a b c;
             thread P0 { a = 1; r0 = b; }
             thread P1 { b = 1; r1 = c; }
             thread P2 { c = 1; r2 = a; }",
    checks: &[
        OutcomeCheck {
            description: "r0 = 0 ∧ r1 = 0 ∧ r2 = 0",
            predicate: |o| r(o, "P0", "r0") == 0 && r(o, "P1", "r1") == 0 && r(o, "P2", "r2") == 0,
            allowed: true,
        },
        OutcomeCheck {
            description: "r0 = 1 ∧ r1 = 1 ∧ r2 = 1",
            predicate: |o| r(o, "P0", "r0") == 1 && r(o, "P1", "r1") == 1 && r(o, "P2", "r2") == 1,
            allowed: true,
        },
    ],
};

/// Three-thread load buffering around a cycle: the all-ones outcome needs
/// every read to see the *next* thread's future write — a poRW cycle,
/// forbidden just like two-thread [`LB`] (§9.1).
pub static LB3: LitmusTest = LitmusTest {
    name: "LB3",
    description: "three-thread load buffering: all-ones forbidden (poRW cycle)",
    source: "nonatomic a b c;
             thread P0 { r0 = a; b = 1; }
             thread P1 { r1 = b; c = 1; }
             thread P2 { r2 = c; a = 1; }",
    checks: &[
        OutcomeCheck {
            description: "r0 = 1 ∧ r1 = 1 ∧ r2 = 1",
            predicate: |o| r(o, "P0", "r0") == 1 && r(o, "P1", "r1") == 1 && r(o, "P2", "r2") == 1,
            allowed: false,
        },
        OutcomeCheck {
            description: "r0 = 1 ∧ r1 = 1 ∧ r2 = 0 (two of three see the future)",
            predicate: |o| r(o, "P0", "r0") == 1 && r(o, "P1", "r1") == 1 && r(o, "P2", "r2") == 0,
            allowed: true,
        },
    ],
};

/// Message passing with *two* nonatomic payloads behind one atomic flag:
/// publication covers every write before the release, so a reader that
/// sees the flag sees both payloads — there is no partially published
/// state.
pub static MP2: LitmusTest = LitmusTest {
    name: "MP2",
    description: "two payloads, one atomic flag: publication is all-or-nothing",
    source: "nonatomic a b; atomic f;
             thread P0 { a = 1; b = 2; f = 1; }
             thread P1 { r0 = f; if (r0 == 1) { r1 = a; r2 = b; } }",
    checks: &[
        OutcomeCheck {
            description: "r0 = 1 ∧ (r1 ≠ 1 ∨ r2 ≠ 2)",
            predicate: |o| {
                r(o, "P1", "r0") == 1 && (r(o, "P1", "r1") != 1 || r(o, "P1", "r2") != 2)
            },
            allowed: false,
        },
        OutcomeCheck {
            description: "r0 = 1 ∧ r1 = 1 ∧ r2 = 2",
            predicate: |o| r(o, "P1", "r0") == 1 && r(o, "P1", "r1") == 1 && r(o, "P1", "r2") == 2,
            allowed: true,
        },
    ],
};

/// 2+2W on *atomic* locations: unlike the nonatomic [`TWO_PLUS_TWO_W`],
/// atomic writes join the location's frontier before publishing, so the
/// both-first-writes-win outcome (which needs each thread's second write
/// to slot behind a write it already saw) is forbidden — the SC verdict.
pub static TWO_PLUS_TWO_W_AT: LitmusTest = LitmusTest {
    name: "2+2W+at",
    description: "antagonistic atomic writes: both-first-writes-win forbidden",
    source: "atomic A B;
             thread P0 { A = 1; B = 2; }
             thread P1 { B = 1; A = 2; }",
    checks: &[
        OutcomeCheck {
            description: "final A = 1 ∧ B = 1",
            predicate: |o| m(o, "A") == 1 && m(o, "B") == 1,
            allowed: false,
        },
        OutcomeCheck {
            description: "final A = 2 ∧ B = 2",
            predicate: |o| m(o, "A") == 2 && m(o, "B") == 2,
            allowed: true,
        },
    ],
};

/// Store buffering on atomics: §9.2's point in litmus form — this model's
/// atomics are *stronger* than C++ SC atomics, and the relaxed SB outcome
/// (both loads stale) is forbidden outright.
pub static SB_AT: LitmusTest = LitmusTest {
    name: "SB+at",
    description: "store buffering on atomics: relaxed outcome forbidden (§9.2)",
    source: "atomic A B;
             thread P0 { A = 1; r0 = B; }
             thread P1 { B = 1; r1 = A; }",
    checks: &[
        OutcomeCheck {
            description: "r0 = 0 ∧ r1 = 0",
            predicate: |o| r(o, "P0", "r0") == 0 && r(o, "P1", "r1") == 0,
            allowed: false,
        },
        OutcomeCheck {
            description: "r0 = 1 ∧ r1 = 1",
            predicate: |o| r(o, "P0", "r0") == 1 && r(o, "P1", "r1") == 1,
            allowed: true,
        },
    ],
};

/// Wide scatter-write stress: 64 nonatomic locations, two threads writing
/// disjoint scattered slots. No same-location conflicts, so the program is
/// race-free and its outcome set is a singleton; what it stresses is the
/// *store*: every write path-copies an O(log n) sliver of a 64-slot pmap
/// while the other 60 slots stay structurally shared across all
/// interleavings (the bench store lane measures exactly this shape).
pub static WIDE_SCATTER: LitmusTest = LitmusTest {
    name: "Wide+scatter",
    description: "64-location disjoint scatter writes: race-free, single outcome",
    source: "nonatomic w0 w1 w2 w3 w4 w5 w6 w7 w8 w9 w10 w11 w12 w13 w14 w15 w16 w17 w18 w19 w20 w21 w22 w23 w24 w25 w26 w27 w28 w29 w30 w31 w32 w33 w34 w35 w36 w37 w38 w39 w40 w41 w42 w43 w44 w45 w46 w47 w48 w49 w50 w51 w52 w53 w54 w55 w56 w57 w58 w59 w60 w61 w62 w63;
             thread P0 { w0 = 1; w1 = 1; w2 = 1; w3 = 1; }
             thread P1 { w32 = 1; w33 = 1; w34 = 1; w35 = 1; }",
    checks: &[
        OutcomeCheck {
            description: "all eight written slots hold 1",
            predicate: |o| {
                m(o, "w0") == 1 && m(o, "w3") == 1 && m(o, "w32") == 1 && m(o, "w35") == 1
            },
            allowed: true,
        },
        OutcomeCheck {
            description: "some written slot lost its write",
            predicate: |o| m(o, "w3") == 0 || m(o, "w35") == 0,
            allowed: false,
        },
    ],
};

/// Wide message passing: the MP chain across a 64-location store, with the
/// payload reads control-guarded on the flag (the CoRR+sync discipline), so
/// the program is race-free and flag = 1 implies both scattered payloads.
pub static WIDE_MP: LitmusTest = LitmusTest {
    name: "Wide+mp",
    description: "64-location guarded message passing: stale payload after flag forbidden",
    source: "nonatomic w0 w1 w2 w3 w4 w5 w6 w7 w8 w9 w10 w11 w12 w13 w14 w15 w16 w17 w18 w19 w20 w21 w22 w23 w24 w25 w26 w27 w28 w29 w30 w31 w32 w33 w34 w35 w36 w37 w38 w39 w40 w41 w42 w43 w44 w45 w46 w47 w48 w49 w50 w51 w52 w53 w54 w55 w56 w57 w58 w59 w60 w61 w62; atomic f;
             thread P0 { w7 = 1; w40 = 2; f = 1; }
             thread P1 { r0 = f; if (r0 == 1) { r1 = w7; r2 = w40; } }",
    checks: &[
        OutcomeCheck {
            description: "r0 = 1 ∧ r1 = 1 ∧ r2 = 2",
            predicate: |o| {
                r(o, "P1", "r0") == 1 && r(o, "P1", "r1") == 1 && r(o, "P1", "r2") == 2
            },
            allowed: true,
        },
        OutcomeCheck {
            description: "r0 = 1 ∧ (r1 = 0 ∨ r2 = 0) (stale payload after flag)",
            predicate: |o| {
                r(o, "P1", "r0") == 1 && (r(o, "P1", "r1") == 0 || r(o, "P1", "r2") == 0)
            },
            allowed: false,
        },
        OutcomeCheck {
            description: "r0 = 0 (flag not yet seen)",
            predicate: |o| r(o, "P1", "r0") == 0,
            allowed: true,
        },
    ],
};

/// Wide racy read: one unguarded nonatomic read racing one write in the
/// middle of a 64-location store — the racy polarity of the wide family.
pub static WIDE_RACE: LitmusTest = LitmusTest {
    name: "Wide+race",
    description: "64-location racy read: both values observable (race)",
    source: "nonatomic w0 w1 w2 w3 w4 w5 w6 w7 w8 w9 w10 w11 w12 w13 w14 w15 w16 w17 w18 w19 w20 w21 w22 w23 w24 w25 w26 w27 w28 w29 w30 w31 w32 w33 w34 w35 w36 w37 w38 w39 w40 w41 w42 w43 w44 w45 w46 w47 w48 w49 w50 w51 w52 w53 w54 w55 w56 w57 w58 w59 w60 w61 w62 w63;
             thread P0 { w31 = 1; }
             thread P1 { r0 = w31; }",
    checks: &[
        OutcomeCheck {
            description: "r0 = 0 (write not seen)",
            predicate: |o| r(o, "P1", "r0") == 0,
            allowed: true,
        },
        OutcomeCheck {
            description: "r0 = 1 (write seen)",
            predicate: |o| r(o, "P1", "r0") == 1,
            allowed: true,
        },
    ],
};

/// All corpus tests, in presentation order.
pub fn all_tests() -> Vec<&'static LitmusTest> {
    vec![
        &SB,
        &SB3,
        &SB_AT,
        &MP,
        &MP_NA,
        &MP2,
        &LB,
        &LB_CTRL,
        &LB3,
        &CORR,
        &CORR_SYNC,
        &COWW,
        &TWO_PLUS_TWO_W,
        &TWO_PLUS_TWO_W_AT,
        &WRC,
        &IRIW_AT,
        &IRIW_NA,
        &EXAMPLE1,
        &EXAMPLE2,
        &EXAMPLE3,
        &SEC92,
        &WIDE_SCATTER,
        &WIDE_MP,
        &WIDE_RACE,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdrst_lang::Program;

    #[test]
    fn all_sources_parse() {
        for t in all_tests() {
            Program::parse(t.source).unwrap_or_else(|e| panic!("{}: {e}", t.name));
        }
    }

    #[test]
    fn corpus_has_both_polarities() {
        let tests = all_tests();
        assert!(tests.len() >= 20);
        let allowed = tests
            .iter()
            .flat_map(|t| t.checks)
            .filter(|c| c.allowed)
            .count();
        let forbidden = tests
            .iter()
            .flat_map(|t| t.checks)
            .filter(|c| !c.allowed)
            .count();
        assert!(allowed >= 5 && forbidden >= 5);
    }
}
