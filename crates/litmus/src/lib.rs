//! # bdrst-litmus — the litmus corpus and multi-model runner
//!
//! A corpus of litmus tests ([`corpus`]) covering the classic shapes (SB,
//! MP, LB, CoRR, CoWW, IRIW) and the paper's running examples (§2
//! Examples 1–3, §9.2), each annotated with the verdict the local-DRF
//! model assigns; and a runner ([`runner`]) that evaluates every test
//! against the operational semantics, the axiomatic semantics, and — on
//! request — the compiled-program behaviours under the x86-TSO and ARMv8
//! hardware models.
//!
//! [`runner::RunConfig::strategy`] selects the exploration engine
//! (DFS / BFS / parallel frontier expansion), and the batched sweep entry
//! points [`runner::run_corpus`] / [`runner::run_corpus_sharded`] run the
//! whole corpus — the sharded variant distributes tests across the core
//! engine's work-claiming parallel map.
//!
//! ```
//! use bdrst_litmus::{corpus, runner};
//!
//! let report = runner::run_test(&corpus::MP, runner::RunConfig::default())?;
//! assert!(report.passes());
//!
//! let sweep = runner::run_corpus_sharded(runner::RunConfig::default(), 0);
//! assert!(runner::corpus_passes(&sweep));
//! # Ok::<(), bdrst_litmus::runner::RunError>(())
//! ```

pub mod corpus;
pub mod runner;

pub use corpus::{all_tests, LitmusTest, OutcomeCheck};
pub use runner::{
    classify_entries, corpus_passes, format_reports, hardware_flags, report_from_outcomes,
    run_corpus, run_corpus_sharded, run_test, CheckVerdict, CorpusEntry, CorpusVerdict, RunConfig,
    RunError, TestReport,
};
