//! Live server counters, exposed over the protocol's `metrics` command.
//!
//! One [`Metrics`] instance is shared by the accept path, the readers
//! (or the reactor), and the worker pool of a running server. Every
//! counter is a plain atomic — recording is lock-free and wait-free on
//! the request path — and the `metrics` command renders a snapshot
//! through the same JSON shape the `cache-stats` command uses
//! (`{"id":..,"ok":true,"metrics":{...}}`).
//!
//! Counters:
//!
//! * connections: admitted / rejected / currently active / the
//!   **high-water mark** of simultaneously active connections (the
//!   observable witness that admission never exceeds
//!   [`crate::server::ServeConfig::max_conns`]);
//! * requests by command (fixed slots per protocol command plus an
//!   `other` slot for unknown commands);
//! * errors by kind (`proto`, `parse`, `budget`, `engine`,
//!   `overloaded`, `too-large`, `rate-limited`, `shutting-down`);
//! * rate-limit rejections (also counted under `errors.rate-limited`);
//! * job-queue depth high-water;
//! * slow requests (end-to-end time over [`crate::server::ServeConfig::slow_ms`]);
//! * a per-command latency histogram (fixed exponential buckets,
//!   100µs → 10s, plus overflow).
//!
//! Beyond the counters, a [`Metrics`] also carries the server's **live
//! introspection state**: the in-flight request registry behind the
//! `status` protocol command (request ID, command, phase — queue-wait /
//! execute / write-back — and per-request engine progress derived from
//! the process-wide `StatesVisited` counter) and the static
//! [`ServerInfo`] the `health` command reports against.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::json::Json;

/// The protocol commands with dedicated counter slots; anything else
/// lands in the trailing `other` slot.
pub const COMMANDS: [&str; 12] = [
    "parse",
    "outcomes",
    "check",
    "check-localdrf",
    "check-global",
    "check-races",
    "corpus",
    "cache-stats",
    "metrics",
    "status",
    "health",
    "dump",
];

/// The error kinds with dedicated counter slots; anything else lands in
/// the trailing `other` slot.
pub const ERROR_KINDS: [&str; 8] = [
    "proto",
    "parse",
    "budget",
    "engine",
    "overloaded",
    "too-large",
    "rate-limited",
    "shutting-down",
];

/// Upper bounds (µs) of the latency histogram buckets; one overflow
/// bucket follows.
pub const LATENCY_BOUNDS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Bucket labels, rendered as the keys of each per-command histogram.
pub const LATENCY_LABELS: [&str; 7] = [
    "le_100us", "le_1ms", "le_10ms", "le_100ms", "le_1s", "le_10s", "inf",
];

const CMD_SLOTS: usize = COMMANDS.len() + 1;
const KIND_SLOTS: usize = ERROR_KINDS.len() + 1;
const BUCKETS: usize = LATENCY_LABELS.len();

/// What a live request is doing right now, as the `status` command
/// reports it: waiting in the job queue, executing on a worker, or
/// written but not yet flushed to the client socket.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReqPhase {
    /// Queued (including backpressure time before the queue took it).
    QueueWait,
    /// A worker is computing the response.
    Execute,
    /// The response is written; the socket has not drained it yet.
    WriteBack,
}

impl ReqPhase {
    /// The phase's wire name.
    pub const fn name(self) -> &'static str {
        match self {
            ReqPhase::QueueWait => "queue-wait",
            ReqPhase::Execute => "execute",
            ReqPhase::WriteBack => "write-back",
        }
    }
}

/// One live request in the registry. `states_at_start` snapshots the
/// process-wide `StatesVisited` counter when execution begins, so the
/// request's own progress is the (monotone) delta against it.
struct Inflight {
    cmd: Option<String>,
    client_id: Json,
    phase: ReqPhase,
    enqueue_ns: u64,
    states_at_start: u64,
}

/// Static facts about the running server, registered once at bind time
/// and reported by the `status` / `health` commands.
#[derive(Clone, Copy, Debug)]
pub struct ServerInfo {
    /// Worker threads popping the job queue.
    pub workers: usize,
    /// Job-queue depth bound.
    pub queue_capacity: usize,
    /// Simultaneous-connection bound.
    pub max_conns: usize,
    /// `bdrst_obs::now_ns` at bind time (uptime = now − this).
    pub start_ns: u64,
}

/// Lock-free live counters of one running server.
#[derive(Default)]
pub struct Metrics {
    conns_admitted: AtomicU64,
    conns_rejected: AtomicU64,
    conns_active: AtomicU64,
    conns_high_water: AtomicU64,
    queue_high_water: AtomicU64,
    rate_limited: AtomicU64,
    slow_requests: AtomicU64,
    requests: [AtomicU64; CMD_SLOTS],
    errors: [AtomicU64; KIND_SLOTS],
    latency: [[AtomicU64; BUCKETS]; CMD_SLOTS],
    latency_sum_us: [AtomicU64; CMD_SLOTS],
    /// Live requests by server-minted request ID. Touched once per
    /// phase transition (a short mutex hold), never per state visited —
    /// the engine-progress reads go through the lock-free counter
    /// registry instead.
    inflight: Mutex<HashMap<u64, Inflight>>,
    server: OnceLock<ServerInfo>,
}

/// A percentile (`q` in `[0,1]`) estimated from histogram bucket counts
/// by linear interpolation inside the containing bucket.
///
/// `counts` follows [`LATENCY_BOUNDS_US`]: one count per finite bound
/// plus a trailing overflow bucket. The first bucket interpolates from
/// 0; the overflow bucket has no upper bound, so any rank landing there
/// clamps to the last finite bound (10s) — a deliberate floor that
/// keeps the estimate finite rather than inventing a tail shape.
/// Returns 0.0 for an empty histogram.
pub fn percentile_from_counts(counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut below = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let upto = below + c;
        if rank <= upto as f64 {
            let lo = if i == 0 {
                0.0
            } else {
                LATENCY_BOUNDS_US[i.min(LATENCY_BOUNDS_US.len()) - 1] as f64
            };
            let hi = match LATENCY_BOUNDS_US.get(i) {
                Some(b) => *b as f64,
                None => return *LATENCY_BOUNDS_US.last().unwrap() as f64, // overflow clamps
            };
            let frac = (rank - below as f64) / c as f64;
            return lo + (hi - lo) * frac.clamp(0.0, 1.0);
        }
        below = upto;
    }
    *LATENCY_BOUNDS_US.last().unwrap() as f64
}

/// The fixed slot of a command name (`COMMANDS.len()` = other).
fn cmd_slot(cmd: &str) -> usize {
    COMMANDS
        .iter()
        .position(|c| *c == cmd)
        .unwrap_or(COMMANDS.len())
}

fn kind_slot(kind: &str) -> usize {
    ERROR_KINDS
        .iter()
        .position(|k| *k == kind)
        .unwrap_or(ERROR_KINDS.len())
}

impl Metrics {
    /// Fresh (all-zero) counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Atomic connection admission: takes a slot in the active count
    /// and returns true, **or** observes the count already at
    /// `max_conns`, backs the increment out, records a rejection, and
    /// returns false. The increment-first shape is what makes two
    /// racing admissions safe: the loser sees the winner's increment,
    /// so the active count (and its high-water mark) never exceeds the
    /// limit.
    pub(crate) fn try_acquire_conn(&self, max_conns: usize) -> bool {
        let prev = self.conns_active.fetch_add(1, Ordering::SeqCst);
        if prev as usize >= max_conns {
            self.conns_active.fetch_sub(1, Ordering::SeqCst);
            self.conns_rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.conns_admitted.fetch_add(1, Ordering::Relaxed);
        self.conns_high_water.fetch_max(prev + 1, Ordering::SeqCst);
        true
    }

    /// Releases a slot taken by [`Metrics::try_acquire_conn`].
    pub(crate) fn release_conn(&self) {
        self.conns_active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Counts one request dispatched to `cmd`.
    pub fn count_request(&self, cmd: &str) {
        self.requests[cmd_slot(cmd)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one error response of `kind`.
    pub fn count_error(&self, kind: &str) {
        self.errors[kind_slot(kind)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one rate-limit rejection (plus its error-kind slot).
    pub fn count_rate_limited(&self) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
        self.count_error("rate-limited");
    }

    /// Records one completed request's wall-clock latency under `cmd`.
    pub fn observe_latency(&self, cmd: &str, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|b| us <= *b)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        let slot = cmd_slot(cmd);
        self.latency[slot][bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us[slot].fetch_add(us, Ordering::Relaxed);
    }

    /// Records an observed job-queue depth (keeps the maximum).
    pub fn note_queue_depth(&self, depth: usize) {
        self.queue_high_water
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Counts one slow request (end-to-end time over the server's
    /// `--slow-ms` threshold).
    pub fn count_slow_request(&self) {
        self.slow_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers the server's static facts; first call wins.
    pub(crate) fn set_server_info(&self, info: ServerInfo) {
        let _ = self.server.set(info);
    }

    /// Registers a request entering the queue. Must happen before the
    /// job becomes visible to a worker, so the executing transition
    /// below always finds its entry.
    pub(crate) fn inflight_enqueued(&self, req_id: u64, enqueue_ns: u64) {
        self.inflight.lock().unwrap().insert(
            req_id,
            Inflight {
                cmd: None,
                client_id: Json::Null,
                phase: ReqPhase::QueueWait,
                enqueue_ns,
                states_at_start: 0,
            },
        );
    }

    /// Marks a request as executing, snapshotting the engine's visited
    /// count. Update-only: a request the reactor already reaped (its
    /// connection died) stays gone.
    pub(crate) fn inflight_executing(&self, req_id: u64, states_at_start: u64) {
        if let Some(e) = self.inflight.lock().unwrap().get_mut(&req_id) {
            e.phase = ReqPhase::Execute;
            e.states_at_start = states_at_start;
        }
    }

    /// Fills in the parsed command and client-chosen `id` once the
    /// worker has decoded the request line.
    pub(crate) fn inflight_describe(&self, req_id: u64, cmd: &str, client_id: &Json) {
        if let Some(e) = self.inflight.lock().unwrap().get_mut(&req_id) {
            e.cmd = Some(cmd.to_string());
            e.client_id = client_id.clone();
        }
    }

    /// Marks a request's response as written but not yet flushed.
    pub(crate) fn inflight_write_back(&self, req_id: u64) {
        if let Some(e) = self.inflight.lock().unwrap().get_mut(&req_id) {
            e.phase = ReqPhase::WriteBack;
        }
    }

    /// Removes a finished (or abandoned) request from the registry.
    pub(crate) fn inflight_done(&self, req_id: u64) {
        self.inflight.lock().unwrap().remove(&req_id);
    }

    /// Live requests currently waiting in the job queue — the `health`
    /// command's current-depth gauge (the atomic only keeps high-water).
    fn queue_waiting(&self) -> u64 {
        self.inflight
            .lock()
            .unwrap()
            .values()
            .filter(|e| e.phase == ReqPhase::QueueWait)
            .count() as u64
    }

    /// The `status` command's response object: server facts, live
    /// gauges, every in-flight request (ID, command, phase, elapsed
    /// time, engine progress), and the engine gauge snapshot.
    pub fn status_json(&self) -> Json {
        let now = bdrst_obs::now_ns();
        let visited = bdrst_obs::counter_get(bdrst_obs::Counter::StatesVisited);
        let mut entries: Vec<(u64, Json)> = self
            .inflight
            .lock()
            .unwrap()
            .iter()
            .map(|(req_id, e)| {
                // Progress is meaningful only once execution started;
                // the delta is monotone because the registry counter
                // only grows.
                let states = match e.phase {
                    ReqPhase::QueueWait => 0,
                    _ => visited.saturating_sub(e.states_at_start),
                };
                let obj = Json::obj([
                    ("req_id", Json::Int(*req_id as i64)),
                    ("id", e.client_id.clone()),
                    ("cmd", e.cmd.clone().map(Json::Str).unwrap_or(Json::Null)),
                    ("phase", Json::Str(e.phase.name().to_string())),
                    (
                        "elapsed_ms",
                        Json::Num(now.saturating_sub(e.enqueue_ns) as f64 / 1e6),
                    ),
                    ("states_visited", Json::Int(states as i64)),
                ]);
                (*req_id, obj)
            })
            .collect();
        entries.sort_by_key(|(id, _)| *id);
        let info = self.server.get();
        Json::obj([
            (
                "uptime_ms",
                Json::Num(
                    info.map(|i| now.saturating_sub(i.start_ns) as f64 / 1e6)
                        .unwrap_or(0.0),
                ),
            ),
            ("workers", Json::Int(info.map_or(0, |i| i.workers as i64))),
            (
                "queue",
                Json::obj([
                    ("depth", Json::Int(self.queue_waiting() as i64)),
                    (
                        "capacity",
                        Json::Int(info.map_or(0, |i| i.queue_capacity as i64)),
                    ),
                    (
                        "high_water",
                        Json::Int(self.queue_high_water.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "conns",
                Json::obj([
                    (
                        "active",
                        Json::Int(self.conns_active.load(Ordering::SeqCst) as i64),
                    ),
                    ("max", Json::Int(info.map_or(0, |i| i.max_conns as i64))),
                ]),
            ),
            (
                "slow_requests",
                Json::Int(self.slow_requests.load(Ordering::Relaxed) as i64),
            ),
            (
                "inflight",
                Json::Arr(entries.into_iter().map(|(_, e)| e).collect()),
            ),
            ("engine", engine_gauges_json()),
        ])
    }

    /// The `health` command's verdict: `ok`, or `degraded` when the job
    /// queue is full or the connection count is at its cap (clients
    /// should back off before errors start). The server appends cache
    /// stats before responding.
    pub fn health_json(&self) -> Json {
        let info = self.server.get();
        let queue_depth = self.queue_waiting();
        let conns = self.conns_active.load(Ordering::SeqCst);
        let queue_full = info.is_some_and(|i| queue_depth >= i.queue_capacity as u64);
        let conns_full = info.is_some_and(|i| conns >= i.max_conns as u64);
        Json::obj([
            (
                "status",
                Json::Str(
                    if queue_full || conns_full {
                        "degraded"
                    } else {
                        "ok"
                    }
                    .into(),
                ),
            ),
            ("queue_full", Json::Bool(queue_full)),
            ("conns_full", Json::Bool(conns_full)),
            ("queue_depth", Json::Int(queue_depth as i64)),
            (
                "queue_capacity",
                Json::Int(info.map_or(0, |i| i.queue_capacity as i64)),
            ),
            ("conns_active", Json::Int(conns as i64)),
            (
                "max_conns",
                Json::Int(info.map_or(0, |i| i.max_conns as i64)),
            ),
            ("workers", Json::Int(info.map_or(0, |i| i.workers as i64))),
            (
                "inflight",
                Json::Int(self.inflight.lock().unwrap().len() as i64),
            ),
        ])
    }

    /// The high-water mark of simultaneously active connections.
    pub fn conns_high_water(&self) -> u64 {
        self.conns_high_water.load(Ordering::SeqCst)
    }

    /// A snapshot of every counter as the `metrics` JSON object. Maps
    /// (`requests`, `errors`, `latency`) carry only nonzero slots, so
    /// the line stays compact on lightly-used servers.
    pub fn to_json(&self) -> Json {
        let load = |a: &AtomicU64| Json::Int(a.load(Ordering::Relaxed) as i64);
        let slot_name = |names: &[&'static str], i: usize| names.get(i).copied().unwrap_or("other");
        let requests: Vec<(String, Json)> = self
            .requests
            .iter()
            .enumerate()
            .filter(|(_, a)| a.load(Ordering::Relaxed) > 0)
            .map(|(i, a)| (slot_name(&COMMANDS, i).to_string(), load(a)))
            .collect();
        let errors: Vec<(String, Json)> = self
            .errors
            .iter()
            .enumerate()
            .filter(|(_, a)| a.load(Ordering::Relaxed) > 0)
            .map(|(i, a)| (slot_name(&ERROR_KINDS, i).to_string(), load(a)))
            .collect();
        let latency: Vec<(String, Json)> = self
            .latency
            .iter()
            .enumerate()
            .filter(|(_, row)| row.iter().any(|b| b.load(Ordering::Relaxed) > 0))
            .map(|(i, row)| {
                let counts: Vec<u64> = row.iter().map(|b| b.load(Ordering::Relaxed)).collect();
                let mut buckets: Vec<(String, Json)> = LATENCY_LABELS
                    .iter()
                    .zip(&counts)
                    .map(|(label, c)| (label.to_string(), Json::Int(*c as i64)))
                    .collect();
                buckets.push(("sum_us".to_string(), load(&self.latency_sum_us[i])));
                for (key, q) in [("p50_us", 0.5), ("p95_us", 0.95), ("p99_us", 0.99)] {
                    buckets.push((
                        key.to_string(),
                        Json::Num(percentile_from_counts(&counts, q)),
                    ));
                }
                (slot_name(&COMMANDS, i).to_string(), Json::Obj(buckets))
            })
            .collect();
        Json::obj([
            (
                "conns",
                Json::obj([
                    ("admitted", load(&self.conns_admitted)),
                    ("rejected", load(&self.conns_rejected)),
                    (
                        "active",
                        Json::Int(self.conns_active.load(Ordering::SeqCst) as i64),
                    ),
                    ("high_water", Json::Int(self.conns_high_water() as i64)),
                ]),
            ),
            (
                "queue",
                Json::obj([
                    ("depth", Json::Int(self.queue_waiting() as i64)),
                    ("high_water", load(&self.queue_high_water)),
                ]),
            ),
            ("rate_limited", load(&self.rate_limited)),
            ("slow_requests", load(&self.slow_requests)),
            ("requests", Json::Obj(requests)),
            ("errors", Json::Obj(errors)),
            ("latency", Json::Obj(latency)),
            ("engine", engine_gauges_json()),
        ])
    }

    /// The Prometheus text exposition (version 0.0.4) of every counter:
    /// request/error counters, connection and queue gauges, per-command
    /// cumulative latency histograms, and the process-wide engine gauges
    /// from the observability registry. Every series is emitted even at
    /// zero — scrapers prefer stable series sets over compact output.
    pub fn to_prom(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let g = |out: &mut String, name: &str, kind: &str, help: &str| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
        };
        let slot_name = |names: &[&'static str], i: usize| names.get(i).copied().unwrap_or("other");

        g(
            &mut out,
            "bdrst_connections_total",
            "counter",
            "Connections by admission outcome.",
        );
        for (state, a) in [
            ("admitted", &self.conns_admitted),
            ("rejected", &self.conns_rejected),
        ] {
            let _ = writeln!(
                out,
                "bdrst_connections_total{{state=\"{state}\"}} {}",
                a.load(Ordering::Relaxed)
            );
        }
        g(
            &mut out,
            "bdrst_connections_active",
            "gauge",
            "Currently active connections.",
        );
        let _ = writeln!(
            out,
            "bdrst_connections_active {}",
            self.conns_active.load(Ordering::SeqCst)
        );
        g(
            &mut out,
            "bdrst_connections_high_water",
            "gauge",
            "High-water mark of simultaneously active connections.",
        );
        let _ = writeln!(
            out,
            "bdrst_connections_high_water {}",
            self.conns_high_water()
        );
        g(
            &mut out,
            "bdrst_queue_depth",
            "gauge",
            "Requests currently waiting in the job queue.",
        );
        let _ = writeln!(out, "bdrst_queue_depth {}", self.queue_waiting());
        g(
            &mut out,
            "bdrst_queue_depth_high_water",
            "gauge",
            "High-water mark of the job-queue depth.",
        );
        let _ = writeln!(
            out,
            "bdrst_queue_depth_high_water {}",
            self.queue_high_water.load(Ordering::Relaxed)
        );
        g(
            &mut out,
            "bdrst_inflight_requests",
            "gauge",
            "Live requests (queued, executing, or flushing).",
        );
        let _ = writeln!(
            out,
            "bdrst_inflight_requests {}",
            self.inflight.lock().unwrap().len()
        );
        g(
            &mut out,
            "bdrst_rate_limited_total",
            "counter",
            "Requests rejected by the per-connection rate limiter.",
        );
        let _ = writeln!(
            out,
            "bdrst_rate_limited_total {}",
            self.rate_limited.load(Ordering::Relaxed)
        );
        g(
            &mut out,
            "bdrst_slow_requests_total",
            "counter",
            "Requests whose end-to-end time reached the slow threshold.",
        );
        let _ = writeln!(
            out,
            "bdrst_slow_requests_total {}",
            self.slow_requests.load(Ordering::Relaxed)
        );

        g(
            &mut out,
            "bdrst_requests_total",
            "counter",
            "Requests by protocol command.",
        );
        for (i, a) in self.requests.iter().enumerate() {
            let _ = writeln!(
                out,
                "bdrst_requests_total{{cmd=\"{}\"}} {}",
                slot_name(&COMMANDS, i),
                a.load(Ordering::Relaxed)
            );
        }
        g(
            &mut out,
            "bdrst_errors_total",
            "counter",
            "Error responses by kind.",
        );
        for (i, a) in self.errors.iter().enumerate() {
            let _ = writeln!(
                out,
                "bdrst_errors_total{{kind=\"{}\"}} {}",
                slot_name(&ERROR_KINDS, i),
                a.load(Ordering::Relaxed)
            );
        }

        g(
            &mut out,
            "bdrst_request_latency_us",
            "histogram",
            "Request wall-clock latency (microseconds) by command.",
        );
        for (i, row) in self.latency.iter().enumerate() {
            let cmd = slot_name(&COMMANDS, i);
            // Prometheus buckets are cumulative; ours are disjoint.
            let mut cum = 0u64;
            for (j, b) in row.iter().enumerate() {
                cum += b.load(Ordering::Relaxed);
                let le = match LATENCY_BOUNDS_US.get(j) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(
                    out,
                    "bdrst_request_latency_us_bucket{{cmd=\"{cmd}\",le=\"{le}\"}} {cum}"
                );
            }
            let _ = writeln!(
                out,
                "bdrst_request_latency_us_sum{{cmd=\"{cmd}\"}} {}",
                self.latency_sum_us[i].load(Ordering::Relaxed)
            );
            let _ = writeln!(out, "bdrst_request_latency_us_count{{cmd=\"{cmd}\"}} {cum}");
        }

        g(
            &mut out,
            "bdrst_engine",
            "gauge",
            "Process-wide engine gauges from the observability registry.",
        );
        for (name, value) in bdrst_obs::counters_snapshot() {
            let _ = writeln!(out, "bdrst_engine{{gauge=\"{name}\"}} {value}");
        }
        out
    }
}

/// Derived engine gauges from the process-wide observability registry:
/// raw counters plus the rates the raw values only imply (states/sec,
/// digest hit rate, DPOR pruning ratio).
pub fn engine_gauges_json() -> Json {
    use bdrst_obs::Counter;
    let get = |c: Counter| bdrst_obs::counter_get(c);
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            Json::Num(0.0)
        } else {
            Json::Num(num as f64 / den as f64)
        }
    };
    let visited = get(Counter::StatesVisited);
    let explore_ns = get(Counter::ExploreNanos);
    let states_per_sec = if explore_ns == 0 {
        Json::Num(0.0)
    } else {
        Json::Num(visited as f64 / (explore_ns as f64 / 1e9))
    };
    let hits = get(Counter::DigestHits);
    let misses = get(Counter::DigestMisses);
    let branches = get(Counter::DporBranches);
    let blocked = get(Counter::DporSleepBlocked);
    Json::obj([
        ("states_visited", Json::Int(visited as i64)),
        (
            "states_interned",
            Json::Int(get(Counter::StatesInterned) as i64),
        ),
        ("explore_nanos", Json::Int(explore_ns as i64)),
        ("states_per_sec", states_per_sec),
        (
            "frontier_high_water",
            Json::Int(get(Counter::FrontierHighWater) as i64),
        ),
        (
            "interner_occupancy",
            Json::Int(get(Counter::InternerOccupancy) as i64),
        ),
        (
            "fingerprint_calls",
            Json::Int(get(Counter::FingerprintCalls) as i64),
        ),
        ("digest_hits", Json::Int(hits as i64)),
        ("digest_misses", Json::Int(misses as i64)),
        ("digest_hit_rate", ratio(hits, hits + misses)),
        ("dpor_branches", Json::Int(branches as i64)),
        ("dpor_sleep_blocked", Json::Int(blocked as i64)),
        (
            "dpor_backtrack_points",
            Json::Int(get(Counter::DporBacktrackPoints) as i64),
        ),
        ("dpor_pruning_ratio", ratio(blocked, branches + blocked)),
        (
            "semantics_probes",
            Json::Int(get(Counter::SemanticsProbes) as i64),
        ),
        (
            "race_events_live",
            Json::Int(get(Counter::RaceEventsLive) as i64),
        ),
        (
            "race_events_replayed",
            Json::Int(get(Counter::RaceEventsReplayed) as i64),
        ),
        (
            "spans_dropped",
            Json::Int(get(Counter::SpansDropped) as i64),
        ),
    ])
}

/// The human rendering of a `metrics` response object (the JSON the
/// server's `metrics` command returns): connection/queue gauges, request
/// and error counts, and a per-command latency table whose p50/p95/p99
/// are recomputed from the histogram buckets client-side via
/// [`percentile_from_counts`] — the CLI needs no server-side percentile
/// support to render a snapshot from an older server.
pub fn render_human(metrics: &Json) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let int = |v: Option<&Json>| v.and_then(Json::as_i64).unwrap_or(0);
    if let Some(conns) = metrics.get("conns") {
        let _ = writeln!(
            out,
            "connections: {} admitted, {} rejected, {} active (high water {})",
            int(conns.get("admitted")),
            int(conns.get("rejected")),
            int(conns.get("active")),
            int(conns.get("high_water")),
        );
    }
    let _ = writeln!(
        out,
        "queue depth: {} (high water {})",
        int(metrics.get_in(&["queue", "depth"])),
        int(metrics.get_in(&["queue", "high_water"])),
    );
    let _ = writeln!(out, "rate limited: {}", int(metrics.get("rate_limited")));
    let _ = writeln!(out, "slow requests: {}", int(metrics.get("slow_requests")));
    for (key, title) in [("requests", "requests"), ("errors", "errors")] {
        if let Some(Json::Obj(fields)) = metrics.get(key) {
            if !fields.is_empty() {
                let _ = writeln!(out, "{title}:");
                for (name, v) in fields {
                    let _ = writeln!(out, "  {name:<16} {}", int(Some(v)));
                }
            }
        }
    }
    if let Some(Json::Obj(rows)) = metrics.get("latency") {
        if !rows.is_empty() {
            let _ = writeln!(
                out,
                "latency (us):\n  {:<16} {:>8} {:>10} {:>10} {:>10}",
                "command", "count", "p50", "p95", "p99"
            );
            for (cmd, row) in rows {
                let counts: Vec<u64> = LATENCY_LABELS
                    .iter()
                    .map(|l| int(row.get(l)).max(0) as u64)
                    .collect();
                let count: u64 = counts.iter().sum();
                let _ = writeln!(
                    out,
                    "  {cmd:<16} {count:>8} {:>10.1} {:>10.1} {:>10.1}",
                    percentile_from_counts(&counts, 0.5),
                    percentile_from_counts(&counts, 0.95),
                    percentile_from_counts(&counts, 0.99),
                );
            }
        }
    }
    if let Some(Json::Obj(fields)) = metrics.get("engine") {
        let _ = writeln!(out, "engine:");
        for (name, v) in fields {
            match v {
                Json::Num(x) => {
                    let _ = writeln!(out, "  {name:<24} {x:.3}");
                }
                other => {
                    let _ = writeln!(out, "  {name:<24} {}", int(Some(other)));
                }
            }
        }
    }
    out
}

/// The human rendering of a `status` response object: uptime and
/// capacity gauges, then one line per in-flight request.
pub fn render_status_human(status: &Json) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let int = |v: Option<&Json>| v.and_then(Json::as_i64).unwrap_or(0);
    let num = |v: Option<&Json>| {
        v.and_then(|j| match j {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        })
        .unwrap_or(0.0)
    };
    let _ = writeln!(
        out,
        "uptime: {:.1}s, {} workers",
        num(status.get("uptime_ms")) / 1e3,
        int(status.get("workers")),
    );
    let _ = writeln!(
        out,
        "queue: {} waiting / {} capacity (high water {})",
        int(status.get_in(&["queue", "depth"])),
        int(status.get_in(&["queue", "capacity"])),
        int(status.get_in(&["queue", "high_water"])),
    );
    let _ = writeln!(
        out,
        "connections: {} active / {} max",
        int(status.get_in(&["conns", "active"])),
        int(status.get_in(&["conns", "max"])),
    );
    let _ = writeln!(out, "slow requests: {}", int(status.get("slow_requests")));
    match status.get("inflight") {
        Some(Json::Arr(entries)) if !entries.is_empty() => {
            let _ = writeln!(
                out,
                "in flight:\n  {:<8} {:<16} {:<12} {:>12} {:>14}",
                "req", "cmd", "phase", "elapsed", "states"
            );
            for e in entries {
                let cmd = e
                    .get("cmd")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                let phase = e.get("phase").and_then(Json::as_str).unwrap_or("?");
                let _ = writeln!(
                    out,
                    "  {:<8} {:<16} {:<12} {:>10.1}ms {:>14}",
                    int(e.get("req_id")),
                    cmd,
                    phase,
                    num(e.get("elapsed_ms")),
                    int(e.get("states_visited")),
                );
            }
        }
        _ => {
            let _ = writeln!(out, "in flight: none");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_increment_first() {
        let m = Metrics::new();
        assert!(m.try_acquire_conn(2));
        assert!(m.try_acquire_conn(2));
        assert!(!m.try_acquire_conn(2), "third slot over a 2-conn limit");
        assert_eq!(m.conns_high_water(), 2);
        m.release_conn();
        assert!(m.try_acquire_conn(2));
        assert_eq!(m.conns_high_water(), 2, "high water never exceeds the cap");
    }

    #[test]
    fn snapshot_carries_only_nonzero_slots() {
        let m = Metrics::new();
        m.count_request("outcomes");
        m.count_error("budget");
        m.observe_latency("outcomes", Duration::from_millis(2));
        let j = m.to_json();
        assert_eq!(
            j.get("requests")
                .unwrap()
                .get("outcomes")
                .and_then(Json::as_i64),
            Some(1)
        );
        assert!(j.get("requests").unwrap().get("parse").is_none());
        assert_eq!(
            j.get("errors")
                .unwrap()
                .get("budget")
                .and_then(Json::as_i64),
            Some(1)
        );
        let lat = j.get("latency").unwrap().get("outcomes").unwrap();
        assert_eq!(lat.get("le_10ms").and_then(Json::as_i64), Some(1));
        assert_eq!(lat.get("inf").and_then(Json::as_i64), Some(0));
    }

    #[test]
    fn percentile_interpolation_pinned_at_bucket_boundaries() {
        // Empty histogram: no invented latency.
        assert_eq!(percentile_from_counts(&[0; 7], 0.99), 0.0);

        // First bucket interpolates from 0, and its top rank lands
        // exactly on the first bound.
        let first = [4, 0, 0, 0, 0, 0, 0];
        assert_eq!(percentile_from_counts(&first, 0.5), 50.0);
        assert_eq!(percentile_from_counts(&first, 1.0), 100.0);

        // A rank on the edge between two buckets resolves in the lower
        // bucket (<= boundary), and the next rank interpolates from the
        // lower bucket's bound.
        let split = [1, 1, 0, 0, 0, 0, 0];
        assert_eq!(percentile_from_counts(&split, 0.5), 100.0);
        assert_eq!(percentile_from_counts(&split, 0.75), 550.0);

        // Last finite bucket interpolates between 1s and 10s.
        let last = [0, 0, 0, 0, 0, 8, 0];
        assert_eq!(percentile_from_counts(&last, 0.5), 5_500_000.0);
        assert_eq!(percentile_from_counts(&last, 1.0), 10_000_000.0);

        // Overflow bucket has no upper bound: estimates clamp to the
        // last finite bound instead of inventing a tail.
        let overflow = [0, 0, 0, 0, 0, 0, 5];
        assert_eq!(percentile_from_counts(&overflow, 0.5), 10_000_000.0);
        assert_eq!(percentile_from_counts(&overflow, 0.99), 10_000_000.0);
    }

    #[test]
    fn inflight_registry_tracks_phases_and_health_degrades() {
        let m = Metrics::new();
        m.set_server_info(ServerInfo {
            workers: 2,
            queue_capacity: 1,
            max_conns: 8,
            start_ns: 0,
        });
        m.inflight_enqueued(7, bdrst_obs::now_ns());
        let h = m.health_json();
        assert_eq!(h.get("status").and_then(Json::as_str), Some("degraded"));
        assert_eq!(h.get("queue_depth").and_then(Json::as_i64), Some(1));

        m.inflight_executing(7, 0);
        m.inflight_describe(7, "check", &Json::Int(42));
        let s = m.status_json();
        let inflight = s.get("inflight").and_then(Json::as_arr).unwrap();
        assert_eq!(inflight.len(), 1);
        let e = &inflight[0];
        assert_eq!(e.get("req_id").and_then(Json::as_i64), Some(7));
        assert_eq!(e.get("id").and_then(Json::as_i64), Some(42));
        assert_eq!(e.get("cmd").and_then(Json::as_str), Some("check"));
        assert_eq!(e.get("phase").and_then(Json::as_str), Some("execute"));
        // Queue drained: healthy again, even with the request executing.
        let h = m.health_json();
        assert_eq!(h.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(h.get("inflight").and_then(Json::as_i64), Some(1));

        m.inflight_write_back(7);
        m.inflight_done(7);
        assert!(m
            .status_json()
            .get("inflight")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
        // Update-only transitions never resurrect a reaped request.
        m.inflight_executing(7, 0);
        assert_eq!(
            m.health_json().get("inflight").and_then(Json::as_i64),
            Some(0)
        );
    }

    #[test]
    fn slow_requests_render_everywhere() {
        let m = Metrics::new();
        m.count_slow_request();
        m.count_slow_request();
        assert_eq!(
            m.to_json().get("slow_requests").and_then(Json::as_i64),
            Some(2)
        );
        assert!(m.to_prom().contains("bdrst_slow_requests_total 2"));
        assert!(render_human(&m.to_json()).contains("slow requests: 2"));
    }

    #[test]
    fn unknown_slots_fold_into_other() {
        let m = Metrics::new();
        m.count_request("definitely-not-a-command");
        m.count_error("weird");
        let j = m.to_json();
        assert_eq!(
            j.get("requests")
                .unwrap()
                .get("other")
                .and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(
            j.get("errors").unwrap().get("other").and_then(Json::as_i64),
            Some(1)
        );
    }
}
