//! Live server counters, exposed over the protocol's `metrics` command.
//!
//! One [`Metrics`] instance is shared by the accept path, the readers
//! (or the reactor), and the worker pool of a running server. Every
//! counter is a plain atomic — recording is lock-free and wait-free on
//! the request path — and the `metrics` command renders a snapshot
//! through the same JSON shape the `cache-stats` command uses
//! (`{"id":..,"ok":true,"metrics":{...}}`).
//!
//! Counters:
//!
//! * connections: admitted / rejected / currently active / the
//!   **high-water mark** of simultaneously active connections (the
//!   observable witness that admission never exceeds
//!   [`crate::server::ServeConfig::max_conns`]);
//! * requests by command (fixed slots per protocol command plus an
//!   `other` slot for unknown commands);
//! * errors by kind (`proto`, `parse`, `budget`, `engine`,
//!   `overloaded`, `too-large`, `rate-limited`, `shutting-down`);
//! * rate-limit rejections (also counted under `errors.rate-limited`);
//! * job-queue depth high-water;
//! * a per-command latency histogram (fixed exponential buckets,
//!   100µs → 10s, plus overflow).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::json::Json;

/// The protocol commands with dedicated counter slots; anything else
/// lands in the trailing `other` slot.
pub const COMMANDS: [&str; 9] = [
    "parse",
    "outcomes",
    "check",
    "check-localdrf",
    "check-global",
    "check-races",
    "corpus",
    "cache-stats",
    "metrics",
];

/// The error kinds with dedicated counter slots; anything else lands in
/// the trailing `other` slot.
pub const ERROR_KINDS: [&str; 8] = [
    "proto",
    "parse",
    "budget",
    "engine",
    "overloaded",
    "too-large",
    "rate-limited",
    "shutting-down",
];

/// Upper bounds (µs) of the latency histogram buckets; one overflow
/// bucket follows.
pub const LATENCY_BOUNDS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Bucket labels, rendered as the keys of each per-command histogram.
pub const LATENCY_LABELS: [&str; 7] = [
    "le_100us", "le_1ms", "le_10ms", "le_100ms", "le_1s", "le_10s", "inf",
];

const CMD_SLOTS: usize = COMMANDS.len() + 1;
const KIND_SLOTS: usize = ERROR_KINDS.len() + 1;
const BUCKETS: usize = LATENCY_LABELS.len();

/// Lock-free live counters of one running server.
#[derive(Default)]
pub struct Metrics {
    conns_admitted: AtomicU64,
    conns_rejected: AtomicU64,
    conns_active: AtomicU64,
    conns_high_water: AtomicU64,
    queue_high_water: AtomicU64,
    rate_limited: AtomicU64,
    requests: [AtomicU64; CMD_SLOTS],
    errors: [AtomicU64; KIND_SLOTS],
    latency: [[AtomicU64; BUCKETS]; CMD_SLOTS],
}

/// The fixed slot of a command name (`COMMANDS.len()` = other).
fn cmd_slot(cmd: &str) -> usize {
    COMMANDS
        .iter()
        .position(|c| *c == cmd)
        .unwrap_or(COMMANDS.len())
}

fn kind_slot(kind: &str) -> usize {
    ERROR_KINDS
        .iter()
        .position(|k| *k == kind)
        .unwrap_or(ERROR_KINDS.len())
}

impl Metrics {
    /// Fresh (all-zero) counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Atomic connection admission: takes a slot in the active count
    /// and returns true, **or** observes the count already at
    /// `max_conns`, backs the increment out, records a rejection, and
    /// returns false. The increment-first shape is what makes two
    /// racing admissions safe: the loser sees the winner's increment,
    /// so the active count (and its high-water mark) never exceeds the
    /// limit.
    pub(crate) fn try_acquire_conn(&self, max_conns: usize) -> bool {
        let prev = self.conns_active.fetch_add(1, Ordering::SeqCst);
        if prev as usize >= max_conns {
            self.conns_active.fetch_sub(1, Ordering::SeqCst);
            self.conns_rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.conns_admitted.fetch_add(1, Ordering::Relaxed);
        self.conns_high_water.fetch_max(prev + 1, Ordering::SeqCst);
        true
    }

    /// Releases a slot taken by [`Metrics::try_acquire_conn`].
    pub(crate) fn release_conn(&self) {
        self.conns_active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Counts one request dispatched to `cmd`.
    pub(crate) fn count_request(&self, cmd: &str) {
        self.requests[cmd_slot(cmd)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one error response of `kind`.
    pub(crate) fn count_error(&self, kind: &str) {
        self.errors[kind_slot(kind)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one rate-limit rejection (plus its error-kind slot).
    pub(crate) fn count_rate_limited(&self) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
        self.count_error("rate-limited");
    }

    /// Records one completed request's wall-clock latency under `cmd`.
    pub(crate) fn observe_latency(&self, cmd: &str, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|b| us <= *b)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        self.latency[cmd_slot(cmd)][bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records an observed job-queue depth (keeps the maximum).
    pub(crate) fn note_queue_depth(&self, depth: usize) {
        self.queue_high_water
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// The high-water mark of simultaneously active connections.
    pub fn conns_high_water(&self) -> u64 {
        self.conns_high_water.load(Ordering::SeqCst)
    }

    /// A snapshot of every counter as the `metrics` JSON object. Maps
    /// (`requests`, `errors`, `latency`) carry only nonzero slots, so
    /// the line stays compact on lightly-used servers.
    pub fn to_json(&self) -> Json {
        let load = |a: &AtomicU64| Json::Int(a.load(Ordering::Relaxed) as i64);
        let slot_name = |names: &[&'static str], i: usize| names.get(i).copied().unwrap_or("other");
        let requests: Vec<(String, Json)> = self
            .requests
            .iter()
            .enumerate()
            .filter(|(_, a)| a.load(Ordering::Relaxed) > 0)
            .map(|(i, a)| (slot_name(&COMMANDS, i).to_string(), load(a)))
            .collect();
        let errors: Vec<(String, Json)> = self
            .errors
            .iter()
            .enumerate()
            .filter(|(_, a)| a.load(Ordering::Relaxed) > 0)
            .map(|(i, a)| (slot_name(&ERROR_KINDS, i).to_string(), load(a)))
            .collect();
        let latency: Vec<(String, Json)> = self
            .latency
            .iter()
            .enumerate()
            .filter(|(_, row)| row.iter().any(|b| b.load(Ordering::Relaxed) > 0))
            .map(|(i, row)| {
                let buckets = LATENCY_LABELS
                    .iter()
                    .zip(row)
                    .map(|(label, b)| (label.to_string(), load(b)))
                    .collect();
                (slot_name(&COMMANDS, i).to_string(), Json::Obj(buckets))
            })
            .collect();
        Json::obj([
            (
                "conns",
                Json::obj([
                    ("admitted", load(&self.conns_admitted)),
                    ("rejected", load(&self.conns_rejected)),
                    (
                        "active",
                        Json::Int(self.conns_active.load(Ordering::SeqCst) as i64),
                    ),
                    ("high_water", Json::Int(self.conns_high_water() as i64)),
                ]),
            ),
            (
                "queue",
                Json::obj([("high_water", load(&self.queue_high_water))]),
            ),
            ("rate_limited", load(&self.rate_limited)),
            ("requests", Json::Obj(requests)),
            ("errors", Json::Obj(errors)),
            ("latency", Json::Obj(latency)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_increment_first() {
        let m = Metrics::new();
        assert!(m.try_acquire_conn(2));
        assert!(m.try_acquire_conn(2));
        assert!(!m.try_acquire_conn(2), "third slot over a 2-conn limit");
        assert_eq!(m.conns_high_water(), 2);
        m.release_conn();
        assert!(m.try_acquire_conn(2));
        assert_eq!(m.conns_high_water(), 2, "high water never exceeds the cap");
    }

    #[test]
    fn snapshot_carries_only_nonzero_slots() {
        let m = Metrics::new();
        m.count_request("outcomes");
        m.count_error("budget");
        m.observe_latency("outcomes", Duration::from_millis(2));
        let j = m.to_json();
        assert_eq!(
            j.get("requests")
                .unwrap()
                .get("outcomes")
                .and_then(Json::as_i64),
            Some(1)
        );
        assert!(j.get("requests").unwrap().get("parse").is_none());
        assert_eq!(
            j.get("errors")
                .unwrap()
                .get("budget")
                .and_then(Json::as_i64),
            Some(1)
        );
        let lat = j.get("latency").unwrap().get("outcomes").unwrap();
        assert_eq!(lat.get("le_10ms").and_then(Json::as_i64), Some(1));
        assert_eq!(lat.get("inf").and_then(Json::as_i64), Some(0));
    }

    #[test]
    fn unknown_slots_fold_into_other() {
        let m = Metrics::new();
        m.count_request("definitely-not-a-command");
        m.count_error("weird");
        let j = m.to_json();
        assert_eq!(
            j.get("requests")
                .unwrap()
                .get("other")
                .and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(
            j.get("errors").unwrap().get("other").and_then(Json::as_i64),
            Some(1)
        );
    }
}
