//! Live server counters, exposed over the protocol's `metrics` command.
//!
//! One [`Metrics`] instance is shared by the accept path, the readers
//! (or the reactor), and the worker pool of a running server. Every
//! counter is a plain atomic — recording is lock-free and wait-free on
//! the request path — and the `metrics` command renders a snapshot
//! through the same JSON shape the `cache-stats` command uses
//! (`{"id":..,"ok":true,"metrics":{...}}`).
//!
//! Counters:
//!
//! * connections: admitted / rejected / currently active / the
//!   **high-water mark** of simultaneously active connections (the
//!   observable witness that admission never exceeds
//!   [`crate::server::ServeConfig::max_conns`]);
//! * requests by command (fixed slots per protocol command plus an
//!   `other` slot for unknown commands);
//! * errors by kind (`proto`, `parse`, `budget`, `engine`,
//!   `overloaded`, `too-large`, `rate-limited`, `shutting-down`);
//! * rate-limit rejections (also counted under `errors.rate-limited`);
//! * job-queue depth high-water;
//! * a per-command latency histogram (fixed exponential buckets,
//!   100µs → 10s, plus overflow).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::json::Json;

/// The protocol commands with dedicated counter slots; anything else
/// lands in the trailing `other` slot.
pub const COMMANDS: [&str; 9] = [
    "parse",
    "outcomes",
    "check",
    "check-localdrf",
    "check-global",
    "check-races",
    "corpus",
    "cache-stats",
    "metrics",
];

/// The error kinds with dedicated counter slots; anything else lands in
/// the trailing `other` slot.
pub const ERROR_KINDS: [&str; 8] = [
    "proto",
    "parse",
    "budget",
    "engine",
    "overloaded",
    "too-large",
    "rate-limited",
    "shutting-down",
];

/// Upper bounds (µs) of the latency histogram buckets; one overflow
/// bucket follows.
pub const LATENCY_BOUNDS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Bucket labels, rendered as the keys of each per-command histogram.
pub const LATENCY_LABELS: [&str; 7] = [
    "le_100us", "le_1ms", "le_10ms", "le_100ms", "le_1s", "le_10s", "inf",
];

const CMD_SLOTS: usize = COMMANDS.len() + 1;
const KIND_SLOTS: usize = ERROR_KINDS.len() + 1;
const BUCKETS: usize = LATENCY_LABELS.len();

/// Lock-free live counters of one running server.
#[derive(Default)]
pub struct Metrics {
    conns_admitted: AtomicU64,
    conns_rejected: AtomicU64,
    conns_active: AtomicU64,
    conns_high_water: AtomicU64,
    queue_high_water: AtomicU64,
    rate_limited: AtomicU64,
    requests: [AtomicU64; CMD_SLOTS],
    errors: [AtomicU64; KIND_SLOTS],
    latency: [[AtomicU64; BUCKETS]; CMD_SLOTS],
    latency_sum_us: [AtomicU64; CMD_SLOTS],
}

/// A percentile (`q` in `[0,1]`) estimated from histogram bucket counts
/// by linear interpolation inside the containing bucket.
///
/// `counts` follows [`LATENCY_BOUNDS_US`]: one count per finite bound
/// plus a trailing overflow bucket. The first bucket interpolates from
/// 0; the overflow bucket has no upper bound, so any rank landing there
/// clamps to the last finite bound (10s) — a deliberate floor that
/// keeps the estimate finite rather than inventing a tail shape.
/// Returns 0.0 for an empty histogram.
pub fn percentile_from_counts(counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut below = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let upto = below + c;
        if rank <= upto as f64 {
            let lo = if i == 0 {
                0.0
            } else {
                LATENCY_BOUNDS_US[i.min(LATENCY_BOUNDS_US.len()) - 1] as f64
            };
            let hi = match LATENCY_BOUNDS_US.get(i) {
                Some(b) => *b as f64,
                None => return *LATENCY_BOUNDS_US.last().unwrap() as f64, // overflow clamps
            };
            let frac = (rank - below as f64) / c as f64;
            return lo + (hi - lo) * frac.clamp(0.0, 1.0);
        }
        below = upto;
    }
    *LATENCY_BOUNDS_US.last().unwrap() as f64
}

/// The fixed slot of a command name (`COMMANDS.len()` = other).
fn cmd_slot(cmd: &str) -> usize {
    COMMANDS
        .iter()
        .position(|c| *c == cmd)
        .unwrap_or(COMMANDS.len())
}

fn kind_slot(kind: &str) -> usize {
    ERROR_KINDS
        .iter()
        .position(|k| *k == kind)
        .unwrap_or(ERROR_KINDS.len())
}

impl Metrics {
    /// Fresh (all-zero) counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Atomic connection admission: takes a slot in the active count
    /// and returns true, **or** observes the count already at
    /// `max_conns`, backs the increment out, records a rejection, and
    /// returns false. The increment-first shape is what makes two
    /// racing admissions safe: the loser sees the winner's increment,
    /// so the active count (and its high-water mark) never exceeds the
    /// limit.
    pub(crate) fn try_acquire_conn(&self, max_conns: usize) -> bool {
        let prev = self.conns_active.fetch_add(1, Ordering::SeqCst);
        if prev as usize >= max_conns {
            self.conns_active.fetch_sub(1, Ordering::SeqCst);
            self.conns_rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.conns_admitted.fetch_add(1, Ordering::Relaxed);
        self.conns_high_water.fetch_max(prev + 1, Ordering::SeqCst);
        true
    }

    /// Releases a slot taken by [`Metrics::try_acquire_conn`].
    pub(crate) fn release_conn(&self) {
        self.conns_active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Counts one request dispatched to `cmd`.
    pub fn count_request(&self, cmd: &str) {
        self.requests[cmd_slot(cmd)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one error response of `kind`.
    pub fn count_error(&self, kind: &str) {
        self.errors[kind_slot(kind)].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one rate-limit rejection (plus its error-kind slot).
    pub fn count_rate_limited(&self) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
        self.count_error("rate-limited");
    }

    /// Records one completed request's wall-clock latency under `cmd`.
    pub fn observe_latency(&self, cmd: &str, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let bucket = LATENCY_BOUNDS_US
            .iter()
            .position(|b| us <= *b)
            .unwrap_or(LATENCY_BOUNDS_US.len());
        let slot = cmd_slot(cmd);
        self.latency[slot][bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us[slot].fetch_add(us, Ordering::Relaxed);
    }

    /// Records an observed job-queue depth (keeps the maximum).
    pub fn note_queue_depth(&self, depth: usize) {
        self.queue_high_water
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// The high-water mark of simultaneously active connections.
    pub fn conns_high_water(&self) -> u64 {
        self.conns_high_water.load(Ordering::SeqCst)
    }

    /// A snapshot of every counter as the `metrics` JSON object. Maps
    /// (`requests`, `errors`, `latency`) carry only nonzero slots, so
    /// the line stays compact on lightly-used servers.
    pub fn to_json(&self) -> Json {
        let load = |a: &AtomicU64| Json::Int(a.load(Ordering::Relaxed) as i64);
        let slot_name = |names: &[&'static str], i: usize| names.get(i).copied().unwrap_or("other");
        let requests: Vec<(String, Json)> = self
            .requests
            .iter()
            .enumerate()
            .filter(|(_, a)| a.load(Ordering::Relaxed) > 0)
            .map(|(i, a)| (slot_name(&COMMANDS, i).to_string(), load(a)))
            .collect();
        let errors: Vec<(String, Json)> = self
            .errors
            .iter()
            .enumerate()
            .filter(|(_, a)| a.load(Ordering::Relaxed) > 0)
            .map(|(i, a)| (slot_name(&ERROR_KINDS, i).to_string(), load(a)))
            .collect();
        let latency: Vec<(String, Json)> = self
            .latency
            .iter()
            .enumerate()
            .filter(|(_, row)| row.iter().any(|b| b.load(Ordering::Relaxed) > 0))
            .map(|(i, row)| {
                let counts: Vec<u64> = row.iter().map(|b| b.load(Ordering::Relaxed)).collect();
                let mut buckets: Vec<(String, Json)> = LATENCY_LABELS
                    .iter()
                    .zip(&counts)
                    .map(|(label, c)| (label.to_string(), Json::Int(*c as i64)))
                    .collect();
                buckets.push(("sum_us".to_string(), load(&self.latency_sum_us[i])));
                for (key, q) in [("p50_us", 0.5), ("p95_us", 0.95), ("p99_us", 0.99)] {
                    buckets.push((
                        key.to_string(),
                        Json::Num(percentile_from_counts(&counts, q)),
                    ));
                }
                (slot_name(&COMMANDS, i).to_string(), Json::Obj(buckets))
            })
            .collect();
        Json::obj([
            (
                "conns",
                Json::obj([
                    ("admitted", load(&self.conns_admitted)),
                    ("rejected", load(&self.conns_rejected)),
                    (
                        "active",
                        Json::Int(self.conns_active.load(Ordering::SeqCst) as i64),
                    ),
                    ("high_water", Json::Int(self.conns_high_water() as i64)),
                ]),
            ),
            (
                "queue",
                Json::obj([("high_water", load(&self.queue_high_water))]),
            ),
            ("rate_limited", load(&self.rate_limited)),
            ("requests", Json::Obj(requests)),
            ("errors", Json::Obj(errors)),
            ("latency", Json::Obj(latency)),
            ("engine", engine_gauges_json()),
        ])
    }

    /// The Prometheus text exposition (version 0.0.4) of every counter:
    /// request/error counters, connection and queue gauges, per-command
    /// cumulative latency histograms, and the process-wide engine gauges
    /// from the observability registry. Every series is emitted even at
    /// zero — scrapers prefer stable series sets over compact output.
    pub fn to_prom(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let g = |out: &mut String, name: &str, kind: &str, help: &str| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
        };
        let slot_name = |names: &[&'static str], i: usize| names.get(i).copied().unwrap_or("other");

        g(
            &mut out,
            "bdrst_connections_total",
            "counter",
            "Connections by admission outcome.",
        );
        for (state, a) in [
            ("admitted", &self.conns_admitted),
            ("rejected", &self.conns_rejected),
        ] {
            let _ = writeln!(
                out,
                "bdrst_connections_total{{state=\"{state}\"}} {}",
                a.load(Ordering::Relaxed)
            );
        }
        g(
            &mut out,
            "bdrst_connections_active",
            "gauge",
            "Currently active connections.",
        );
        let _ = writeln!(
            out,
            "bdrst_connections_active {}",
            self.conns_active.load(Ordering::SeqCst)
        );
        g(
            &mut out,
            "bdrst_connections_high_water",
            "gauge",
            "High-water mark of simultaneously active connections.",
        );
        let _ = writeln!(
            out,
            "bdrst_connections_high_water {}",
            self.conns_high_water()
        );
        g(
            &mut out,
            "bdrst_queue_depth_high_water",
            "gauge",
            "High-water mark of the job-queue depth.",
        );
        let _ = writeln!(
            out,
            "bdrst_queue_depth_high_water {}",
            self.queue_high_water.load(Ordering::Relaxed)
        );
        g(
            &mut out,
            "bdrst_rate_limited_total",
            "counter",
            "Requests rejected by the per-connection rate limiter.",
        );
        let _ = writeln!(
            out,
            "bdrst_rate_limited_total {}",
            self.rate_limited.load(Ordering::Relaxed)
        );

        g(
            &mut out,
            "bdrst_requests_total",
            "counter",
            "Requests by protocol command.",
        );
        for (i, a) in self.requests.iter().enumerate() {
            let _ = writeln!(
                out,
                "bdrst_requests_total{{cmd=\"{}\"}} {}",
                slot_name(&COMMANDS, i),
                a.load(Ordering::Relaxed)
            );
        }
        g(
            &mut out,
            "bdrst_errors_total",
            "counter",
            "Error responses by kind.",
        );
        for (i, a) in self.errors.iter().enumerate() {
            let _ = writeln!(
                out,
                "bdrst_errors_total{{kind=\"{}\"}} {}",
                slot_name(&ERROR_KINDS, i),
                a.load(Ordering::Relaxed)
            );
        }

        g(
            &mut out,
            "bdrst_request_latency_us",
            "histogram",
            "Request wall-clock latency (microseconds) by command.",
        );
        for (i, row) in self.latency.iter().enumerate() {
            let cmd = slot_name(&COMMANDS, i);
            // Prometheus buckets are cumulative; ours are disjoint.
            let mut cum = 0u64;
            for (j, b) in row.iter().enumerate() {
                cum += b.load(Ordering::Relaxed);
                let le = match LATENCY_BOUNDS_US.get(j) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_string(),
                };
                let _ = writeln!(
                    out,
                    "bdrst_request_latency_us_bucket{{cmd=\"{cmd}\",le=\"{le}\"}} {cum}"
                );
            }
            let _ = writeln!(
                out,
                "bdrst_request_latency_us_sum{{cmd=\"{cmd}\"}} {}",
                self.latency_sum_us[i].load(Ordering::Relaxed)
            );
            let _ = writeln!(out, "bdrst_request_latency_us_count{{cmd=\"{cmd}\"}} {cum}");
        }

        g(
            &mut out,
            "bdrst_engine",
            "gauge",
            "Process-wide engine gauges from the observability registry.",
        );
        for (name, value) in bdrst_obs::counters_snapshot() {
            let _ = writeln!(out, "bdrst_engine{{gauge=\"{name}\"}} {value}");
        }
        out
    }
}

/// Derived engine gauges from the process-wide observability registry:
/// raw counters plus the rates the raw values only imply (states/sec,
/// digest hit rate, DPOR pruning ratio).
pub fn engine_gauges_json() -> Json {
    use bdrst_obs::Counter;
    let get = |c: Counter| bdrst_obs::counter_get(c);
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            Json::Num(0.0)
        } else {
            Json::Num(num as f64 / den as f64)
        }
    };
    let visited = get(Counter::StatesVisited);
    let explore_ns = get(Counter::ExploreNanos);
    let states_per_sec = if explore_ns == 0 {
        Json::Num(0.0)
    } else {
        Json::Num(visited as f64 / (explore_ns as f64 / 1e9))
    };
    let hits = get(Counter::DigestHits);
    let misses = get(Counter::DigestMisses);
    let branches = get(Counter::DporBranches);
    let blocked = get(Counter::DporSleepBlocked);
    Json::obj([
        ("states_visited", Json::Int(visited as i64)),
        (
            "states_interned",
            Json::Int(get(Counter::StatesInterned) as i64),
        ),
        ("explore_nanos", Json::Int(explore_ns as i64)),
        ("states_per_sec", states_per_sec),
        (
            "frontier_high_water",
            Json::Int(get(Counter::FrontierHighWater) as i64),
        ),
        (
            "interner_occupancy",
            Json::Int(get(Counter::InternerOccupancy) as i64),
        ),
        (
            "fingerprint_calls",
            Json::Int(get(Counter::FingerprintCalls) as i64),
        ),
        ("digest_hits", Json::Int(hits as i64)),
        ("digest_misses", Json::Int(misses as i64)),
        ("digest_hit_rate", ratio(hits, hits + misses)),
        ("dpor_branches", Json::Int(branches as i64)),
        ("dpor_sleep_blocked", Json::Int(blocked as i64)),
        (
            "dpor_backtrack_points",
            Json::Int(get(Counter::DporBacktrackPoints) as i64),
        ),
        ("dpor_pruning_ratio", ratio(blocked, branches + blocked)),
        (
            "semantics_probes",
            Json::Int(get(Counter::SemanticsProbes) as i64),
        ),
        (
            "race_events_live",
            Json::Int(get(Counter::RaceEventsLive) as i64),
        ),
        (
            "race_events_replayed",
            Json::Int(get(Counter::RaceEventsReplayed) as i64),
        ),
        (
            "spans_dropped",
            Json::Int(get(Counter::SpansDropped) as i64),
        ),
    ])
}

/// The human rendering of a `metrics` response object (the JSON the
/// server's `metrics` command returns): connection/queue gauges, request
/// and error counts, and a per-command latency table whose p50/p95/p99
/// are recomputed from the histogram buckets client-side via
/// [`percentile_from_counts`] — the CLI needs no server-side percentile
/// support to render a snapshot from an older server.
pub fn render_human(metrics: &Json) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let int = |v: Option<&Json>| v.and_then(Json::as_i64).unwrap_or(0);
    if let Some(conns) = metrics.get("conns") {
        let _ = writeln!(
            out,
            "connections: {} admitted, {} rejected, {} active (high water {})",
            int(conns.get("admitted")),
            int(conns.get("rejected")),
            int(conns.get("active")),
            int(conns.get("high_water")),
        );
    }
    let _ = writeln!(
        out,
        "queue depth high water: {}",
        int(metrics.get_in(&["queue", "high_water"])),
    );
    let _ = writeln!(out, "rate limited: {}", int(metrics.get("rate_limited")));
    for (key, title) in [("requests", "requests"), ("errors", "errors")] {
        if let Some(Json::Obj(fields)) = metrics.get(key) {
            if !fields.is_empty() {
                let _ = writeln!(out, "{title}:");
                for (name, v) in fields {
                    let _ = writeln!(out, "  {name:<16} {}", int(Some(v)));
                }
            }
        }
    }
    if let Some(Json::Obj(rows)) = metrics.get("latency") {
        if !rows.is_empty() {
            let _ = writeln!(
                out,
                "latency (us):\n  {:<16} {:>8} {:>10} {:>10} {:>10}",
                "command", "count", "p50", "p95", "p99"
            );
            for (cmd, row) in rows {
                let counts: Vec<u64> = LATENCY_LABELS
                    .iter()
                    .map(|l| int(row.get(l)).max(0) as u64)
                    .collect();
                let count: u64 = counts.iter().sum();
                let _ = writeln!(
                    out,
                    "  {cmd:<16} {count:>8} {:>10.1} {:>10.1} {:>10.1}",
                    percentile_from_counts(&counts, 0.5),
                    percentile_from_counts(&counts, 0.95),
                    percentile_from_counts(&counts, 0.99),
                );
            }
        }
    }
    if let Some(Json::Obj(fields)) = metrics.get("engine") {
        let _ = writeln!(out, "engine:");
        for (name, v) in fields {
            match v {
                Json::Num(x) => {
                    let _ = writeln!(out, "  {name:<24} {x:.3}");
                }
                other => {
                    let _ = writeln!(out, "  {name:<24} {}", int(Some(other)));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_increment_first() {
        let m = Metrics::new();
        assert!(m.try_acquire_conn(2));
        assert!(m.try_acquire_conn(2));
        assert!(!m.try_acquire_conn(2), "third slot over a 2-conn limit");
        assert_eq!(m.conns_high_water(), 2);
        m.release_conn();
        assert!(m.try_acquire_conn(2));
        assert_eq!(m.conns_high_water(), 2, "high water never exceeds the cap");
    }

    #[test]
    fn snapshot_carries_only_nonzero_slots() {
        let m = Metrics::new();
        m.count_request("outcomes");
        m.count_error("budget");
        m.observe_latency("outcomes", Duration::from_millis(2));
        let j = m.to_json();
        assert_eq!(
            j.get("requests")
                .unwrap()
                .get("outcomes")
                .and_then(Json::as_i64),
            Some(1)
        );
        assert!(j.get("requests").unwrap().get("parse").is_none());
        assert_eq!(
            j.get("errors")
                .unwrap()
                .get("budget")
                .and_then(Json::as_i64),
            Some(1)
        );
        let lat = j.get("latency").unwrap().get("outcomes").unwrap();
        assert_eq!(lat.get("le_10ms").and_then(Json::as_i64), Some(1));
        assert_eq!(lat.get("inf").and_then(Json::as_i64), Some(0));
    }

    #[test]
    fn percentile_interpolation_pinned_at_bucket_boundaries() {
        // Empty histogram: no invented latency.
        assert_eq!(percentile_from_counts(&[0; 7], 0.99), 0.0);

        // First bucket interpolates from 0, and its top rank lands
        // exactly on the first bound.
        let first = [4, 0, 0, 0, 0, 0, 0];
        assert_eq!(percentile_from_counts(&first, 0.5), 50.0);
        assert_eq!(percentile_from_counts(&first, 1.0), 100.0);

        // A rank on the edge between two buckets resolves in the lower
        // bucket (<= boundary), and the next rank interpolates from the
        // lower bucket's bound.
        let split = [1, 1, 0, 0, 0, 0, 0];
        assert_eq!(percentile_from_counts(&split, 0.5), 100.0);
        assert_eq!(percentile_from_counts(&split, 0.75), 550.0);

        // Last finite bucket interpolates between 1s and 10s.
        let last = [0, 0, 0, 0, 0, 8, 0];
        assert_eq!(percentile_from_counts(&last, 0.5), 5_500_000.0);
        assert_eq!(percentile_from_counts(&last, 1.0), 10_000_000.0);

        // Overflow bucket has no upper bound: estimates clamp to the
        // last finite bound instead of inventing a tail.
        let overflow = [0, 0, 0, 0, 0, 0, 5];
        assert_eq!(percentile_from_counts(&overflow, 0.5), 10_000_000.0);
        assert_eq!(percentile_from_counts(&overflow, 0.99), 10_000_000.0);
    }

    #[test]
    fn unknown_slots_fold_into_other() {
        let m = Metrics::new();
        m.count_request("definitely-not-a-command");
        m.count_error("weird");
        let j = m.to_json();
        assert_eq!(
            j.get("requests")
                .unwrap()
                .get("other")
                .and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(
            j.get("errors").unwrap().get("other").and_then(Json::as_i64),
            Some(1)
        );
    }
}
