//! # bdrst-service — litmus checking as a service
//!
//! PRs 1–3 made exploration pluggable, parallel, and recordable; this
//! crate makes it *servable*: litmus programs in the surface syntax go
//! in (over a socket or the `bdrst` CLI), verdicts come out, and every
//! repeated query is answered from a content-addressed cache without
//! running the transition semantics at all. Three layers:
//!
//! * **[`store`]** — the [`store::ResultStore`]: outcome sets, checker
//!   verdicts and interned successor graphs keyed by the program's
//!   canonical fingerprint plus a semantics/config version tag; sharded
//!   in memory, optionally persisted in a hand-rolled versioned binary
//!   format ([`bdrst_core::wire`]). Corrupt, stale, or colliding entries
//!   fall back to recompute — never to a wrong verdict.
//! * **[`service`]** — the [`service::CheckService`]: the cache-first
//!   compute path (parse → fingerprint → lookup → on miss, explore once
//!   through `Program::state_graph` and the axiomatic enumerator).
//! * **[`server`] / [`reactor`] / the `bdrst` binary** — a
//!   `std::net::TcpListener` service speaking newline-delimited JSON
//!   ([`json`]): a std-only readiness-loop reactor (nonblocking
//!   sockets, per-connection buffers — idle connections cost memory,
//!   not threads) feeding a bounded job queue and a worker pool, with
//!   atomic connection admission, per-connection token-bucket rate
//!   limiting, live counters ([`metrics`], served by the `metrics`
//!   command), and drain-then-close shutdown (every accepted request
//!   gets exactly one response line). The CLI (`check`, `corpus`,
//!   `races`, `serve`, `metrics`, `cache stats|clear`) makes programs
//!   checkable without recompiling anything.
//!
//! The whole crate is std-only, like the rest of the workspace.
//!
//! ## Example: checking a program through the cache, twice
//!
//! ```
//! use std::sync::Arc;
//! use bdrst_service::service::CheckService;
//! use bdrst_service::store::ResultStore;
//!
//! let service = CheckService::new(
//!     Arc::new(ResultStore::in_memory()),
//!     bdrst_litmus::RunConfig::default(),
//! );
//! let src = "nonatomic a; thread P0 { a = 1; } thread P1 { r0 = a; }";
//! let cold = service.check_source(src)?;
//! assert!(!cold.cached);
//! let warm = service.check_source(src)?;
//! assert!(warm.cached);
//! assert_eq!(cold.entry.op, warm.entry.op);
//! # Ok::<(), bdrst_litmus::RunError>(())
//! ```

pub mod corpusdir;
pub mod json;
pub mod metrics;
pub mod reactor;
pub mod server;
pub mod service;
pub mod store;

pub use json::Json;
pub use metrics::Metrics;
pub use server::{serve, ServeConfig, ServeModel, ServerHandle};
pub use service::{CheckService, Checked};
pub use store::{version_tag, CacheEntry, CacheKey, CacheStats, ResultStore, StoreConfig};
