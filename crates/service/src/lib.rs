//! # bdrst-service — litmus checking as a service
//!
//! PRs 1–3 made exploration pluggable, parallel, and recordable; this
//! crate makes it *servable*: litmus programs in the surface syntax go
//! in (over a socket or the `bdrst` CLI), verdicts come out, and every
//! repeated query is answered from a content-addressed cache without
//! running the transition semantics at all. Three layers:
//!
//! * **[`store`]** — the [`store::ResultStore`]: outcome sets, checker
//!   verdicts and interned successor graphs keyed by the program's
//!   canonical fingerprint plus a semantics/config version tag; sharded
//!   in memory, optionally persisted in a hand-rolled versioned binary
//!   format ([`bdrst_core::wire`]). Corrupt, stale, or colliding entries
//!   fall back to recompute — never to a wrong verdict.
//! * **[`service`]** — the [`service::CheckService`]: the cache-first
//!   compute path (parse → fingerprint → lookup → on miss, explore once
//!   through `Program::state_graph` and the axiomatic enumerator).
//! * **[`server`] / the `bdrst` binary** — a multi-threaded
//!   `std::net::TcpListener` service speaking newline-delimited JSON
//!   ([`json`]) behind a bounded job queue, and the CLI (`check`,
//!   `corpus`, `serve`, `cache stats|clear`) so programs are checkable
//!   without recompiling anything.
//!
//! The whole crate is std-only, like the rest of the workspace.
//!
//! ## Example: checking a program through the cache, twice
//!
//! ```
//! use std::sync::Arc;
//! use bdrst_service::service::CheckService;
//! use bdrst_service::store::ResultStore;
//!
//! let service = CheckService::new(
//!     Arc::new(ResultStore::in_memory()),
//!     bdrst_litmus::RunConfig::default(),
//! );
//! let src = "nonatomic a; thread P0 { a = 1; } thread P1 { r0 = a; }";
//! let cold = service.check_source(src)?;
//! assert!(!cold.cached);
//! let warm = service.check_source(src)?;
//! assert!(warm.cached);
//! assert_eq!(cold.entry.op, warm.entry.op);
//! # Ok::<(), bdrst_litmus::RunError>(())
//! ```

pub mod corpusdir;
pub mod json;
pub mod server;
pub mod service;
pub mod store;

pub use json::Json;
pub use server::{serve, ServeConfig, ServerHandle};
pub use service::{CheckService, Checked};
pub use store::{version_tag, CacheEntry, CacheKey, CacheStats, ResultStore, StoreConfig};
