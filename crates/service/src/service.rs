//! The cache-first check service: the one compute path shared by the CLI
//! and the TCP server.
//!
//! Every query resolves the program's [`CacheKey`] (canonical fingerprint
//! plus version tag) and consults the [`ResultStore`] first. On a hit the
//! response is assembled purely from the cached entry — **zero
//! transition-semantics steps**, which the test suite asserts through the
//! engine's probe counter ([`bdrst_core::machine::semantics_probes`]).
//! On a miss the program is explored exactly once through the existing
//! engine machinery (`Program::state_graph` records the interned
//! successor graph; outcomes are read off its terminal states;
//! [`bdrst_axiomatic::axiomatic_outcomes`] supplies the axiomatic set)
//! and the entry is inserted for every later query — including later
//! *processes*, when the store is disk-backed.

use std::collections::BTreeSet;
use std::sync::Arc;

use bdrst_core::engine::{EngineConfig, TraceEngine, TraceGraph};
use bdrst_core::localdrf::{
    check_local_drf, check_local_drf_replayed, sc_race_freedom_reduced, CheckError, DrfStatus,
};
use bdrst_core::trace::LocPredicate;
use bdrst_lang::Program;
use bdrst_litmus::{report_from_outcomes, LitmusTest, RunConfig, RunError, TestReport};
use bdrst_race::{detect_races_program, detect_races_replayed, DetectorConfig, RaceReport};

use crate::store::{version_tag, CacheEntry, CacheStats, ResultStore};

/// A cache-aware checking façade over one (shared) [`ResultStore`] and
/// one [`RunConfig`].
pub struct CheckService {
    store: Arc<ResultStore>,
    config: RunConfig,
    version: u64,
}

/// One resolved query: the parsed program, its store entry, and whether
/// the entry came from the cache.
#[derive(Debug)]
pub struct Checked {
    /// The parsed program (needed for name-based outcome rendering).
    pub program: Program,
    /// The (possibly just-computed) cache entry.
    pub entry: Arc<CacheEntry>,
    /// True iff the entry was served from the store.
    pub cached: bool,
}

impl CheckService {
    /// A service over `store` running every miss under `config`.
    pub fn new(store: Arc<ResultStore>, config: RunConfig) -> CheckService {
        let version = version_tag(&config);
        CheckService {
            store,
            config,
            version,
        }
    }

    /// A sibling service over the same store and configuration.
    pub fn fork(&self) -> CheckService {
        CheckService::new(Arc::clone(&self.store), self.config)
    }

    /// A sibling over the same store under a different run configuration
    /// (per-request budget tightening). The version tag follows the
    /// configuration, so differently-budgeted results live under
    /// disjoint keys.
    pub fn fork_with_config(&self, config: RunConfig) -> CheckService {
        CheckService::new(Arc::clone(&self.store), config)
    }

    /// A sibling with per-request budget caps applied: each present cap
    /// is clamped to this service's own limit (a request can tighten
    /// its budgets, never exceed the server's). `None` fields keep the
    /// server's value.
    pub fn fork_tightened(
        &self,
        max_states: Option<usize>,
        max_traces: Option<usize>,
    ) -> CheckService {
        let mut config = self.config;
        if let Some(s) = max_states {
            config.explore.max_states = config.explore.max_states.min(s);
        }
        if let Some(t) = max_traces {
            config.explore.max_traces = config.explore.max_traces.min(t);
        }
        self.fork_with_config(config)
    }

    /// The run configuration applied to misses.
    pub fn config(&self) -> RunConfig {
        self.config
    }

    /// The underlying store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Store traffic counters.
    pub fn stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Parses and checks a source program, cache-first.
    ///
    /// # Errors
    ///
    /// [`RunError::Parse`] on syntax errors, [`RunError::Operational`] /
    /// [`RunError::Enumeration`] when a miss fails to compute (budget
    /// exhaustion or corruption) — nothing is cached in that case.
    pub fn check_source(&self, source: &str) -> Result<Checked, RunError> {
        let program = Program::parse(source).map_err(|e| RunError::Parse(e.to_string()))?;
        self.check_program(program)
    }

    /// [`CheckService::check_source`] from an already-parsed program.
    ///
    /// # Errors
    ///
    /// As [`CheckService::check_source`], minus the parse case.
    pub fn check_program(&self, program: Program) -> Result<Checked, RunError> {
        let lookup_span = bdrst_obs::span(bdrst_obs::Phase::CacheLookup);
        let key = self
            .store
            .key_for(&program, self.version)
            .map_err(RunError::Operational)?;
        let canonical = program.to_source();
        if let Some(entry) = self.store.lookup(key, &canonical) {
            return Ok(Checked {
                program,
                entry,
                cached: true,
            });
        }
        drop(lookup_span);
        let (graph, stats) = program
            .state_graph_with(self.config.explore, self.config.strategy)
            .map_err(RunError::Operational)?;
        let op = program.outcomes_from_graph(&graph).set().clone();
        let ax = bdrst_axiomatic::axiomatic_outcomes(&program, self.config.enumerate)
            .map_err(RunError::Enumeration)?;
        let entry = CacheEntry {
            source: canonical,
            op,
            ax,
            visited_states: stats.visited as u64,
            graph: self.store.persist_graphs().then_some(graph),
            global_racefree: std::sync::OnceLock::new(),
            trace: std::sync::OnceLock::new(),
            trace_infeasible: std::sync::OnceLock::new(),
        };
        let entry = self.store.insert(key, entry);
        Ok(Checked {
            program,
            entry,
            cached: false,
        })
    }

    /// The global-DRF verdict (Theorem 14 hypothesis — every sequentially
    /// consistent trace race-free) for a checked program, memoized into
    /// its cache entry and re-persisted on first computation.
    ///
    /// Cache misses run the *partial-order-reduced* SC race scan
    /// ([`sc_race_freedom_reduced`]): the memoized value is a pure
    /// classification, which the reduced walk computes identically to
    /// the full enumeration (the differential suites assert this) in a
    /// fraction of the traces. Queries that need a concrete witness
    /// ([`CheckService::check_races`]) keep the full-tree paths.
    ///
    /// # Errors
    ///
    /// [`RunError::Operational`] on trace-budget exhaustion.
    pub fn global_racefree(&self, checked: &Checked) -> Result<bool, RunError> {
        if let Some(v) = checked.entry.global_racefree.get() {
            return Ok(*v);
        }
        let status = sc_race_freedom_reduced(
            &checked.program.locs,
            checked.program.initial_machine(),
            self.engine_config(),
        )
        .map_err(RunError::Operational)?;
        let racefree = matches!(status, DrfStatus::RaceFree);
        if checked.entry.global_racefree.set(racefree).is_ok() {
            if let Ok(key) = self.store.key_for(&checked.program, self.version) {
                self.store.persist(key, &checked.entry);
            }
        }
        Ok(racefree)
    }

    /// The recorded trace tree of a checked program, memoized into its
    /// cache entry (and re-persisted on first recording): record once,
    /// then answer every trace-dependent query — any `L` set of
    /// `check-localdrf`, every `check-races` — by replay, without
    /// re-running the transition semantics.
    ///
    /// # Errors
    ///
    /// [`RunError::Operational`] when the *full* (unfiltered) tree
    /// exceeds the trace budget. Callers that can fall back to a
    /// filtered live walk do so on budget errors.
    pub fn trace_graph<'e>(&self, checked: &'e Checked) -> Result<&'e TraceGraph, RunError> {
        if let Some(t) = checked.entry.trace.get() {
            return Ok(t);
        }
        // A previous attempt already proved the full tree does not fit
        // the budget: don't re-run the doomed recording per request.
        if let Some(e) = checked.entry.trace_infeasible.get() {
            return Err(RunError::Operational(*e));
        }
        let graph = match TraceEngine::new(self.engine_config())
            .record(&checked.program.locs, checked.program.initial_machine())
        {
            Ok((graph, _)) => graph,
            Err(e) => {
                if e.is_budget() {
                    let _ = checked.entry.trace_infeasible.set(e);
                }
                return Err(RunError::Operational(e));
            }
        };
        if checked.entry.trace.set(graph).is_ok() {
            if let Ok(key) = self.store.key_for(&checked.program, self.version) {
                self.store.persist(key, &checked.entry);
            }
        }
        Ok(checked.entry.trace.get().expect("just set"))
    }

    /// Checks Theorem 13's derived local-DRF property for the locations
    /// named in `loc_names` (every nonatomic location when empty). The
    /// verdict replays the cached trace tree ([`CheckService::trace_graph`]
    /// — one recording answers every `L` set); only when recording the
    /// full tree exceeds the trace budget does it fall back to a
    /// filtered live walk.
    ///
    /// # Errors
    ///
    /// `Err(Some(..))` style is avoided: returns `Ok(true)` when the
    /// theorem holds, `Ok(false)` with a violation (impossible for the
    /// paper's semantics), or [`RunError`] on unknown locations and
    /// engine failures.
    pub fn local_drf(&self, checked: &Checked, loc_names: &[String]) -> Result<bool, RunError> {
        let program = &checked.program;
        let mut l = LocPredicate::default();
        if loc_names.is_empty() {
            for loc in program.locs.nonatomic() {
                l.insert(loc);
            }
        } else {
            for name in loc_names {
                let loc = program
                    .locs
                    .by_name(name)
                    .ok_or_else(|| RunError::Parse(format!("unknown location `{name}`")))?;
                l.insert(loc);
            }
        }
        let result = match self.trace_graph(checked) {
            Ok(graph) => check_local_drf_replayed(&program.locs, graph, &l, self.engine_config()),
            Err(e) if e.is_budget() => check_local_drf(
                &program.locs,
                program.initial_machine(),
                &l,
                self.engine_config(),
            ),
            Err(e) => return Err(e),
        };
        match result {
            Ok(_) => Ok(true),
            Err(CheckError::Violation(_)) => Ok(false),
            Err(CheckError::Engine(e)) => Err(RunError::Operational(e)),
        }
    }

    /// Dynamic race detection ([`bdrst_race`]) for a checked program:
    /// replays the detector over the cached trace tree (zero
    /// transition-semantics steps when the entry — including its
    /// recording — is warm), falling back to a live walk only when the
    /// full tree exceeds the trace budget.
    ///
    /// # Errors
    ///
    /// [`RunError::Operational`] on budget exhaustion.
    pub fn check_races(&self, checked: &Checked) -> Result<RaceReport, RunError> {
        let config = DetectorConfig::default();
        match self.trace_graph(checked) {
            Ok(graph) => {
                detect_races_replayed(&checked.program.locs, graph, self.engine_config(), config)
                    .map_err(RunError::Operational)
            }
            Err(e) if e.is_budget() => {
                detect_races_program(&checked.program, self.engine_config(), config)
                    .map_err(RunError::Operational)
            }
            Err(e) => Err(e),
        }
    }

    /// Builds the [`TestReport`] of a built-in corpus test from a checked
    /// entry's cached outcome sets. When the configuration requests
    /// hardware checking, the hardware outcome flags are enumerated per
    /// call ([`bdrst_litmus::hardware_flags`]) — only the
    /// operational/axiomatic sets are cache-backed.
    ///
    /// # Errors
    ///
    /// [`RunError::Enumeration`] when a requested hardware enumeration
    /// exceeds its limits (never, when `config.hardware` is off).
    pub fn report(&self, test: &LitmusTest, checked: &Checked) -> Result<TestReport, RunError> {
        let mut report =
            report_from_outcomes(test, &checked.program, &checked.entry.op, &checked.entry.ax);
        if self.config.hardware {
            let (x86, arm_bal, arm_naive) =
                bdrst_litmus::hardware_flags(test, &checked.program, self.config.enumerate)?;
            report.x86 = Some(x86);
            report.arm_bal = Some(arm_bal);
            report.arm_naive = Some(arm_naive);
        }
        Ok(report)
    }

    /// Runs the whole built-in corpus through the cache, returning
    /// per-test entries in corpus order.
    pub fn check_corpus(&self) -> Vec<(String, Result<TestReport, RunError>)> {
        bdrst_litmus::all_tests()
            .iter()
            .map(|t| {
                let rep = self
                    .check_source(t.source)
                    .and_then(|checked| self.report(t, &checked));
                (t.name.to_string(), rep)
            })
            .collect()
    }

    fn engine_config(&self) -> EngineConfig {
        self.config.explore
    }
}

/// Convenience: the op/ax outcome sets of an entry as (named) display
/// strings, in set order — the shape both the CLI table and the JSON
/// protocol render.
pub fn outcome_strings(program: &Program, set: &BTreeSet<bdrst_lang::Observation>) -> Vec<String> {
    set.iter()
        .map(|obs| {
            let named = program.name_observation(obs);
            let mut parts = Vec::new();
            for t in &program.threads {
                for r in &t.regs {
                    if let Some(v) = named.reg_named(&t.name, r) {
                        parts.push(format!("{}:{}={}", t.name, r, v));
                    }
                }
            }
            for l in program.locs.iter() {
                parts.push(format!(
                    "{}={}",
                    program.locs.name(l),
                    named.mem_named(program.locs.name(l)).unwrap_or(0)
                ));
            }
            parts.join(" ")
        })
        .collect()
}
