//! Loading (and exporting) the on-disk litmus corpus: plain `.litmus`
//! text files in the repository's surface syntax, one test per file, with
//! the test's real name carried in a `// name:` header comment (file
//! names are slugs — `MP+na` lives in `mp-na.litmus`).
//!
//! The shipped `corpus/` directory is generated from the built-in
//! [`bdrst_litmus::corpus`] by `bdrst corpus-export` and locked by a
//! round-trip test: each file must parse to a program α-equivalent to
//! the built-in source's.

use std::io;
use std::path::{Path, PathBuf};

use bdrst_lang::Program;
use bdrst_litmus::LitmusTest;

/// One corpus file: the test's declared name, its source text, and where
/// it came from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorpusFile {
    /// Test name (`// name:` header, else the file stem).
    pub name: String,
    /// The file's full text (parseable as-is; comments are lexed away).
    pub source: String,
    /// The on-disk path.
    pub path: PathBuf,
}

/// A file-name-safe slug for a litmus test name (`MP+na` → `mp-na`,
/// `§9.2` → `sec9-2`). Injective over the built-in corpus (a test
/// asserts it).
pub fn slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        match c {
            'a'..='z' | '0'..='9' | '_' => out.push(c),
            'A'..='Z' => out.push(c.to_ascii_lowercase()),
            '§' => out.push_str("sec"),
            _ => {
                if !out.ends_with('-') {
                    out.push('-');
                }
            }
        }
    }
    out.trim_matches('-').to_string()
}

/// Extracts the `// name:` header from a corpus file's text.
pub fn header_name(source: &str) -> Option<&str> {
    source.lines().find_map(|line| {
        line.trim()
            .strip_prefix("// name:")
            .map(str::trim)
            .filter(|n| !n.is_empty())
    })
}

/// Loads every `*.litmus` file in `dir`, sorted by file name for
/// deterministic sweeps.
///
/// # Errors
///
/// I/O errors reading the directory or a file.
pub fn load_dir(dir: &Path) -> io::Result<Vec<CorpusFile>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "litmus"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|path| {
            let source = std::fs::read_to_string(&path)?;
            let name = header_name(&source)
                .map(str::to_string)
                .or_else(|| path.file_stem().map(|s| s.to_string_lossy().into_owned()))
                .unwrap_or_default();
            Ok(CorpusFile { name, source, path })
        })
        .collect()
}

/// The canonical file text for one built-in test: name/description
/// header plus the canonically printed program.
pub fn render_test(test: &LitmusTest) -> Result<String, String> {
    let program = Program::parse(test.source).map_err(|e| format!("{}: {e}", test.name))?;
    Ok(format!(
        "// name: {}\n// {}\n{}",
        test.name,
        test.description,
        program.to_source()
    ))
}

/// Writes the whole built-in corpus into `dir` (creating it), one file
/// per test, returning the file names written.
///
/// # Errors
///
/// Parse failures (corpus bugs) as strings, I/O errors as strings.
pub fn export_builtin(dir: &Path) -> Result<Vec<String>, String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let mut written = Vec::new();
    for test in bdrst_litmus::all_tests() {
        let file = format!("{}.litmus", slug(test.name));
        let text = render_test(test)?;
        std::fs::write(dir.join(&file), text).map_err(|e| format!("{file}: {e}"))?;
        written.push(file);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_injective_over_the_builtin_corpus() {
        let mut seen = std::collections::BTreeSet::new();
        for t in bdrst_litmus::all_tests() {
            let s = slug(t.name);
            assert!(!s.is_empty());
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_'),
                "bad slug {s:?}"
            );
            assert!(seen.insert(s.clone()), "slug collision: {s}");
        }
    }

    #[test]
    fn header_name_is_extracted() {
        assert_eq!(header_name("// name: MP+na\nnonatomic a;"), Some("MP+na"));
        assert_eq!(header_name("nonatomic a;"), None);
    }

    #[test]
    fn export_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("bdrst-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = export_builtin(&dir).unwrap();
        assert_eq!(written.len(), bdrst_litmus::all_tests().len());
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), written.len());
        for f in &loaded {
            let t = bdrst_litmus::all_tests()
                .into_iter()
                .find(|t| t.name == f.name)
                .unwrap_or_else(|| panic!("unknown corpus file name {:?}", f.name));
            let from_file = Program::parse(&f.source).unwrap();
            let builtin = Program::parse(t.source).unwrap();
            assert!(
                from_file.alpha_eq(&builtin),
                "{} diverges from builtin",
                f.name
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
