//! `bdrst` — check litmus programs from the command line, serve them over
//! TCP, and manage the result cache.
//!
//! ```text
//! bdrst check <file.litmus>...      check programs (outcomes + model agreement)
//! bdrst corpus <dir>                run a corpus directory against the built-in checks
//! bdrst races <file|dir>...         dynamic race detection with bounded witnesses
//! bdrst serve                       start the newline-delimited-JSON check server
//! bdrst metrics                     fetch live counters from a running server
//! bdrst status                      fetch in-flight requests + gauges from a running server
//! bdrst cache stats|clear           inspect / wipe the on-disk cache
//! bdrst corpus-export <dir>         (re)generate corpus/ from the built-in tests
//! ```
//!
//! Common flags: `--cache-dir DIR` (persistent cache; omit for
//! memory-only), `--json` (machine-readable output), `--max-states N`,
//! `--max-traces N` (budgets), `--shrink` (`races` only: ddmin the
//! program and interleaving of each first witness), `--progress`
//! (`check`/`corpus`/`races`: engine progress ticks on stderr every few
//! thousand states).
//!
//! `serve` flags: `--max-conns N`, `--queue-depth N` (admission /
//! backpressure bounds), `--rate-per-sec N` + `--burst N`
//! (per-connection token bucket; 0 = unlimited), `--metrics` (print a
//! metrics JSON snapshot line every 10s), `--thread-per-conn` (legacy
//! connection layer instead of the readiness-loop reactor — baseline
//! comparisons only), `--trace-dir DIR` + `--trace-keep N` + `--slow-ms N`
//! (per-request traces, retention, slow-request flagging/flight dumps),
//! `--log-level L` + `--log-dir DIR` (structured JSON-lines logging;
//! the `BDRST_LOG` environment variable also sets the level). `bdrst
//! metrics --addr HOST:PORT` asks a running server for the same
//! counters over the wire; `bdrst status --addr HOST:PORT` for the
//! live in-flight request table.
//!
//! Exit codes: 0 success / all checks pass / no races, 1 model
//! mismatch, 2 run failure (parse error or budget exhaustion — reported
//! distinctly), 3 races found (`races` only — distinguishable from both
//! a mismatch and a run error), 64 usage.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use bdrst_litmus::{classify_entries, format_reports, CorpusVerdict, RunError};
use bdrst_service::corpusdir;
use bdrst_service::json::Json;
use bdrst_service::server::{self, stats_json, ServeConfig};
use bdrst_service::service::{outcome_strings, CheckService};
use bdrst_service::store::{ResultStore, StoreConfig};

struct Opts {
    json: bool,
    cache_dir: Option<PathBuf>,
    addr: String,
    workers: usize,
    max_states: Option<usize>,
    max_traces: Option<usize>,
    shrink: bool,
    max_conns: Option<usize>,
    queue_depth: Option<usize>,
    rate_per_sec: u32,
    burst: Option<u32>,
    metrics: bool,
    thread_per_conn: bool,
    profile: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    slow_ms: Option<u64>,
    trace_keep: Option<usize>,
    log_level: Option<String>,
    log_dir: Option<PathBuf>,
    progress: bool,
    prom: bool,
    args: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bdrst <check <file>... | corpus <dir> | races <file|dir>... | serve | metrics | status | cache <stats|clear> | corpus-export <dir>>\n\
         flags: --json --cache-dir DIR --addr HOST:PORT --workers N --max-states N --max-traces N --shrink\n\
         profiling: --profile OUT.json (check/corpus/races: Chrome trace export + summary on stderr)\n\
         \x20          --progress (check/corpus/races: engine progress ticks on stderr)\n\
         serve flags: --max-conns N --queue-depth N --rate-per-sec N --burst N --metrics --thread-per-conn\n\
         \x20              --trace-dir DIR (per-request timing files) --trace-keep N (retain newest N) --slow-ms N (slow-request flagging)\n\
         \x20              --log-level error|warn|info|debug|trace (also via BDRST_LOG) --log-dir DIR (JSON-lines log files; default stderr)\n\
         metrics flags: --prom (Prometheus text exposition)\n\
         exit codes: 0 pass/no races · 1 model mismatch · 2 run error (parse/budget/engine) · 3 races found · 64 usage"
    );
    ExitCode::from(64)
}

fn parse_opts(mut argv: std::env::Args) -> Option<(String, Opts)> {
    let _bin = argv.next();
    let cmd = argv.next()?;
    let mut opts = Opts {
        json: false,
        cache_dir: None,
        addr: "127.0.0.1:7433".to_string(),
        workers: 0,
        max_states: None,
        max_traces: None,
        shrink: false,
        max_conns: None,
        queue_depth: None,
        rate_per_sec: 0,
        burst: None,
        metrics: false,
        thread_per_conn: false,
        profile: None,
        trace_dir: None,
        slow_ms: None,
        trace_keep: None,
        log_level: None,
        log_dir: None,
        progress: false,
        prom: false,
        args: Vec::new(),
    };
    let mut argv = argv.peekable();
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--cache-dir" => opts.cache_dir = Some(PathBuf::from(argv.next()?)),
            "--addr" => opts.addr = argv.next()?,
            "--workers" => opts.workers = argv.next()?.parse().ok()?,
            "--max-states" => opts.max_states = Some(argv.next()?.parse().ok()?),
            "--max-traces" => opts.max_traces = Some(argv.next()?.parse().ok()?),
            "--shrink" => opts.shrink = true,
            "--max-conns" => opts.max_conns = Some(argv.next()?.parse().ok()?),
            "--queue-depth" => opts.queue_depth = Some(argv.next()?.parse().ok()?),
            "--rate-per-sec" => opts.rate_per_sec = argv.next()?.parse().ok()?,
            "--burst" => opts.burst = Some(argv.next()?.parse().ok()?),
            "--metrics" => opts.metrics = true,
            "--thread-per-conn" => opts.thread_per_conn = true,
            "--profile" => opts.profile = Some(PathBuf::from(argv.next()?)),
            "--trace-dir" => opts.trace_dir = Some(PathBuf::from(argv.next()?)),
            "--slow-ms" => opts.slow_ms = Some(argv.next()?.parse().ok()?),
            "--trace-keep" => opts.trace_keep = Some(argv.next()?.parse().ok()?),
            "--log-level" => opts.log_level = Some(argv.next()?),
            "--log-dir" => opts.log_dir = Some(PathBuf::from(argv.next()?)),
            "--progress" => opts.progress = true,
            "--prom" => opts.prom = true,
            _ if a.starts_with("--") => return None,
            _ => opts.args.push(a),
        }
    }
    Some((cmd, opts))
}

fn service_for(opts: &Opts) -> Result<CheckService, String> {
    let store = ResultStore::new(StoreConfig {
        disk_dir: opts.cache_dir.clone(),
        ..StoreConfig::default()
    })
    .map_err(|e| format!("cache dir: {e}"))?;
    let mut config = server::default_run_config();
    if let Some(s) = opts.max_states {
        config.explore.max_states = s;
    }
    if let Some(t) = opts.max_traces {
        config.explore.max_traces = t;
    }
    Ok(CheckService::new(Arc::new(store), config))
}

fn run_failure(e: &RunError) -> ExitCode {
    eprintln!("error ({}): {e}", e.kind());
    ExitCode::from(2)
}

/// Runs a command under the span recorder when `--profile OUT.json` was
/// given: the Chrome trace goes to the file, the per-phase summary to
/// stderr (so `--json` output on stdout stays machine-readable).
fn with_profile(profile: Option<&PathBuf>, f: impl FnOnce() -> ExitCode) -> ExitCode {
    let Some(path) = profile else {
        return f();
    };
    bdrst_obs::Recorder::install();
    let code = f();
    let prof = bdrst_obs::Recorder::stop_and_collect();
    if let Err(e) = std::fs::write(path, prof.to_chrome_json()) {
        eprintln!("profile {}: {e}", path.display());
        return ExitCode::from(2);
    }
    eprint!("{}", prof.render_summary());
    eprintln!("profile written to {}", path.display());
    code
}

fn cmd_check(opts: &Opts) -> ExitCode {
    if opts.args.is_empty() {
        return usage();
    }
    let service = match service_for(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut agree = true;
    let mut out_json = Vec::new();
    for path in &opts.args {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(2);
            }
        };
        let checked = match service.check_source(&source) {
            Ok(c) => c,
            Err(e) => return run_failure(&e),
        };
        let models_agree = checked.entry.op == checked.entry.ax;
        agree &= models_agree;
        let op = outcome_strings(&checked.program, &checked.entry.op);
        let ax = outcome_strings(&checked.program, &checked.entry.ax);
        if opts.json {
            out_json.push(Json::obj([
                ("file", Json::Str(path.clone())),
                ("cached", Json::Bool(checked.cached)),
                ("states", Json::Int(checked.entry.visited_states as i64)),
                ("models_agree", Json::Bool(models_agree)),
                (
                    "operational",
                    Json::Arr(op.into_iter().map(Json::Str).collect()),
                ),
                (
                    "axiomatic",
                    Json::Arr(ax.into_iter().map(Json::Str).collect()),
                ),
            ]));
        } else {
            println!(
                "{path}: {} canonical states{}, operational/axiomatic {}",
                checked.entry.visited_states,
                if checked.cached { " (cached)" } else { "" },
                if models_agree { "AGREE" } else { "DIVERGE" },
            );
            for o in &op {
                println!("  {o}");
            }
        }
    }
    if opts.json {
        println!(
            "{}",
            Json::obj([
                ("checks", Json::Arr(out_json)),
                ("cache", stats_json(service.store())),
            ])
            .render()
        );
    }
    if agree {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_corpus(opts: &Opts) -> ExitCode {
    let Some(dir) = opts.args.first() else {
        return usage();
    };
    let service = match service_for(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let files = match corpusdir::load_dir(std::path::Path::new(dir)) {
        Ok(f) if !f.is_empty() => f,
        Ok(_) => {
            eprintln!("{dir}: no .litmus files");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("{dir}: {e}");
            return ExitCode::from(2);
        }
    };
    let builtin = bdrst_litmus::all_tests();
    let mut entries: Vec<(String, Result<bdrst_litmus::TestReport, RunError>)> = Vec::new();
    // Per-test global-DRF verdicts from the DPOR-reduced analysis
    // (memoized into each cache entry, so warm sweeps stay zero-probe).
    let mut drf: Vec<(String, Option<bool>)> = Vec::new();
    for f in &files {
        let result = match builtin.iter().find(|t| t.name == f.name) {
            None => Err(RunError::Parse(format!(
                "no built-in checks for test named {:?}",
                f.name
            ))),
            Some(test) => service.check_source(&f.source).and_then(|checked| {
                drf.push((f.name.clone(), service.global_racefree(&checked).ok()));
                service.report(test, &checked)
            }),
        };
        entries.push((f.name.clone(), result));
    }
    let verdict = classify_entries(&entries);
    let stats = service.stats();
    if opts.json {
        let mut out = server::corpus_json(&entries, service.store());
        if let Json::Obj(fields) = &mut out {
            fields.push((
                "global_drf".to_string(),
                Json::Obj(
                    drf.iter()
                        .map(|(name, v)| (name.clone(), v.map(Json::Bool).unwrap_or(Json::Null)))
                        .collect(),
                ),
            ));
        }
        println!("{}", out.render());
    } else {
        print!("{}", format_reports(&entries));
        let racefree = drf.iter().filter(|(_, v)| *v == Some(true)).count();
        let racy = drf.iter().filter(|(_, v)| *v == Some(false)).count();
        println!("global DRF: {racefree} race-free, {racy} racy");
        println!(
            "cache: {} hits, {} misses, {} entries{}",
            stats.hits,
            stats.misses,
            stats.entries,
            if stats.disk_errors > 0 {
                format!(", {} corrupt entries recomputed", stats.disk_errors)
            } else {
                String::new()
            }
        );
    }
    match verdict {
        CorpusVerdict::Pass => ExitCode::SUCCESS,
        CorpusVerdict::CheckFailed => ExitCode::from(1),
        CorpusVerdict::RunFailed => ExitCode::from(2),
    }
}

/// Collects the `.litmus` inputs of `races`: directories are swept via
/// [`corpusdir::load_dir`], plain paths are read as single programs.
fn race_inputs(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut inputs = Vec::new();
    for arg in args {
        let path = std::path::Path::new(arg);
        if path.is_dir() {
            let files = corpusdir::load_dir(path).map_err(|e| format!("{arg}: {e}"))?;
            if files.is_empty() {
                return Err(format!("{arg}: no .litmus files"));
            }
            for f in files {
                inputs.push((f.name, f.source));
            }
        } else {
            let source = std::fs::read_to_string(path).map_err(|e| format!("{arg}: {e}"))?;
            // Same naming as a directory sweep: the `// name:` header
            // wins, so `races corpus/sb.litmus` and `races corpus/`
            // report the same file under the same name.
            let name = corpusdir::header_name(&source)
                .map(str::to_string)
                .unwrap_or_else(|| arg.clone());
            inputs.push((name, source));
        }
    }
    Ok(inputs)
}

fn cmd_races(opts: &Opts) -> ExitCode {
    if opts.args.is_empty() {
        return usage();
    }
    let service = match service_for(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let inputs = match race_inputs(&opts.args) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut any_racy = false;
    let mut any_failed = false;
    let mut out_json = Vec::new();
    // Per-file run errors are reported in place and the sweep continues
    // — matching `corpus`, where one budget-tripped test never hides
    // the rest of the results. A run error dominates the exit code.
    for (name, source) in &inputs {
        let result = service.check_source(source).and_then(|checked| {
            // "cached" means warm end to end — entry AND trace recording
            // from the store, captured *before* detection records one —
            // the same definition the server's `check-races` uses.
            let warm = checked.cached && checked.entry.trace.get().is_some();
            service.check_races(&checked).map(|r| (checked, warm, r))
        });
        let (checked, warm, report) = match result {
            Ok(ok) => ok,
            Err(e) => {
                any_failed = true;
                if opts.json {
                    out_json.push(Json::obj([
                        ("name", Json::Str(name.clone())),
                        (
                            "error",
                            Json::obj([
                                ("kind", Json::Str(e.kind().to_string())),
                                ("message", Json::Str(e.to_string())),
                            ]),
                        ),
                    ]));
                } else {
                    println!("{name}: ⚠ ERROR ({}): {e}", e.kind());
                }
                continue;
            }
        };
        any_racy |= report.racy();
        let shrunk = if opts.shrink && report.racy() {
            match bdrst_race::shrink_witness(
                &checked.program,
                &report.witnesses[0],
                service.config().explore,
                Default::default(),
            ) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("{name}: shrink failed: {e}");
                    None
                }
            }
        } else {
            None
        };
        if opts.json {
            let mut fields = vec![
                ("name".to_string(), Json::Str(name.clone())),
                ("cached".to_string(), Json::Bool(warm)),
                ("racy".to_string(), Json::Bool(report.racy())),
                ("events".to_string(), Json::Int(report.events as i64)),
                (
                    "witnesses".to_string(),
                    Json::Arr(
                        report
                            .witnesses
                            .iter()
                            .map(|w| server::witness_json(&checked.program, w))
                            .collect(),
                    ),
                ),
            ];
            if let Some(s) = &shrunk {
                fields.push((
                    "shrunk".to_string(),
                    Json::obj([
                        ("program", Json::Str(s.program.to_source())),
                        ("witness", server::witness_json(&s.program, &s.witness)),
                    ]),
                ));
            }
            out_json.push(Json::Obj(fields));
        } else if report.racy() {
            println!(
                "{name}: RACY — {} witness(es) over {} events",
                report.witnesses.len(),
                report.events
            );
            for w in &report.witnesses {
                print!("{}", w.render(&checked.program.locs));
            }
            if let Some(s) = &shrunk {
                println!("  shrunk program:");
                for line in s.program.to_source().lines() {
                    println!("    {line}");
                }
                print!("{}", s.witness.render(&s.program.locs));
            }
        } else {
            println!("{name}: race-free ({} events scanned)", report.events);
        }
    }
    if opts.json {
        println!(
            "{}",
            Json::obj([
                ("races", Json::Arr(out_json)),
                ("cache", stats_json(service.store())),
            ])
            .render()
        );
    }
    // Exit precedence mirrors `classify_entries`: a run failure means
    // the sweep is not a complete verdict, so it dominates; races found
    // (3) stays distinguishable from both it and a model mismatch.
    if any_failed {
        ExitCode::from(2)
    } else if any_racy {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

/// Resolves the server log level: `--log-level` wins, then the
/// `BDRST_LOG` environment variable, then the library default (warn).
fn log_level_for(opts: &Opts) -> Result<bdrst_obs::log::Level, String> {
    use bdrst_obs::log::Level;
    if let Some(s) = &opts.log_level {
        return Level::parse(s).ok_or_else(|| format!("--log-level {s}: unknown level"));
    }
    if let Ok(s) = std::env::var("BDRST_LOG") {
        if !s.is_empty() {
            return Level::parse(&s).ok_or_else(|| format!("BDRST_LOG={s}: unknown level"));
        }
    }
    Ok(bdrst_obs::log::LogConfig::default().level)
}

fn cmd_serve(opts: &Opts) -> ExitCode {
    let level = match log_level_for(opts) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    if let Err(e) = bdrst_obs::log::install(bdrst_obs::log::LogConfig {
        level,
        dir: opts.log_dir.clone(),
        ..bdrst_obs::log::LogConfig::default()
    }) {
        eprintln!("log dir: {e}");
        return ExitCode::from(2);
    }
    let service = match service_for(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        workers: opts.workers,
        max_conns: opts.max_conns.unwrap_or(defaults.max_conns),
        queue_depth: opts.queue_depth.unwrap_or(defaults.queue_depth),
        rate_per_sec: opts.rate_per_sec,
        burst: opts.burst.unwrap_or(defaults.burst),
        model: if opts.thread_per_conn {
            bdrst_service::ServeModel::ThreadPerConn
        } else {
            bdrst_service::ServeModel::Reactor
        },
        trace_dir: opts.trace_dir.clone(),
        slow_ms: opts.slow_ms,
        trace_keep: opts.trace_keep,
        ..defaults
    };
    match server::serve(Arc::new(service), &opts.addr, config) {
        Ok(handle) => {
            println!("bdrst serving on {}", handle.addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            // Serve until killed; with --metrics, print a counters
            // snapshot line every 10s (same JSON the `metrics` command
            // serves over the wire).
            let metrics = handle.metrics();
            loop {
                if opts.metrics {
                    std::thread::sleep(std::time::Duration::from_secs(10));
                    println!("{}", metrics.to_json().render());
                    let _ = std::io::stdout().flush();
                } else {
                    std::thread::park();
                }
            }
        }
        Err(e) => {
            eprintln!("bind {}: {e}", opts.addr);
            ExitCode::from(2)
        }
    }
}

/// `bdrst metrics`: one `{"cmd":"metrics"}` round-trip against a
/// running server; renders the counters humanly (p50/p95/p99 computed
/// client-side from the latency histograms), the full response line
/// with `--json`, or the Prometheus text exposition with `--prom`.
fn cmd_metrics(opts: &Opts) -> ExitCode {
    use std::io::{BufRead as _, BufReader, Write as _};
    let mut stream = match std::net::TcpStream::connect(&opts.addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("connect {}: {e}", opts.addr);
            return ExitCode::from(2);
        }
    };
    let mut req = vec![("cmd", Json::Str("metrics".into()))];
    if opts.prom {
        req.push(("format", Json::Str("prom".into())));
    }
    if writeln!(stream, "{}", Json::obj(req).render()).is_err() {
        eprintln!("{}: write failed", opts.addr);
        return ExitCode::from(2);
    }
    let mut line = String::new();
    if BufReader::new(stream).read_line(&mut line).is_err() || line.trim().is_empty() {
        eprintln!("{}: no response", opts.addr);
        return ExitCode::from(2);
    }
    let Ok(resp) = Json::parse(line.trim()) else {
        eprintln!("{}: malformed response: {line}", opts.addr);
        return ExitCode::from(2);
    };
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        eprintln!("{}: {}", opts.addr, line.trim());
        return ExitCode::from(2);
    }
    if opts.prom {
        match resp.get("prom").and_then(Json::as_str) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("{}: response carries no exposition: {line}", opts.addr);
                return ExitCode::from(2);
            }
        }
    } else if opts.json {
        println!("{}", resp.render());
    } else {
        match resp.get("metrics") {
            Some(m) => print!("{}", bdrst_service::metrics::render_human(m)),
            None => {
                eprintln!("{}: response carries no metrics: {line}", opts.addr);
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

/// `bdrst status`: one `{"cmd":"status"}` round-trip against a running
/// server; renders the in-flight request table and server gauges humanly
/// or the full response line with `--json`.
fn cmd_status(opts: &Opts) -> ExitCode {
    use std::io::{BufRead as _, BufReader, Write as _};
    let mut stream = match std::net::TcpStream::connect(&opts.addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("connect {}: {e}", opts.addr);
            return ExitCode::from(2);
        }
    };
    if writeln!(
        stream,
        "{}",
        Json::obj([("cmd", Json::Str("status".into()))]).render()
    )
    .is_err()
    {
        eprintln!("{}: write failed", opts.addr);
        return ExitCode::from(2);
    }
    let mut line = String::new();
    if BufReader::new(stream).read_line(&mut line).is_err() || line.trim().is_empty() {
        eprintln!("{}: no response", opts.addr);
        return ExitCode::from(2);
    }
    let Ok(resp) = Json::parse(line.trim()) else {
        eprintln!("{}: malformed response: {line}", opts.addr);
        return ExitCode::from(2);
    };
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        eprintln!("{}: {}", opts.addr, line.trim());
        return ExitCode::from(2);
    }
    if opts.json {
        println!("{}", resp.render());
    } else {
        match resp.get("status") {
            Some(s) => print!("{}", bdrst_service::metrics::render_status_human(s)),
            None => {
                eprintln!("{}: response carries no status: {line}", opts.addr);
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

/// `--progress`: engine progress ticks on stderr — states visited,
/// frontier high water, and the budget fraction when a budget is set.
/// One line every few thousand states keeps the terminal readable while
/// still proving liveness on long explorations.
struct StderrProgress;

impl bdrst_obs::ProgressSink for StderrProgress {
    fn tick(&self, p: &bdrst_obs::Progress) {
        if p.budget_max > 0 {
            eprintln!(
                "progress: {} states visited, frontier high water {}, budget {:.0}%",
                p.states_visited,
                p.frontier_high_water,
                p.budget_fraction() * 100.0
            );
        } else {
            eprintln!(
                "progress: {} states visited, frontier high water {}",
                p.states_visited, p.frontier_high_water
            );
        }
    }
}

fn cmd_cache(opts: &Opts) -> ExitCode {
    let Some(action) = opts.args.first().map(String::as_str) else {
        return usage();
    };
    let Some(dir) = opts.cache_dir.clone() else {
        eprintln!("cache {action}: --cache-dir is required");
        return usage();
    };
    let store = match ResultStore::new(StoreConfig {
        disk_dir: Some(dir.clone()),
        ..StoreConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cache dir: {e}");
            return ExitCode::from(2);
        }
    };
    match action {
        "stats" => {
            let (mut files, mut bytes) = (0u64, 0u64);
            if let Ok(rd) = std::fs::read_dir(&dir) {
                for e in rd.filter_map(|e| e.ok()) {
                    if e.path().extension().is_some_and(|x| x == "bdrst") {
                        files += 1;
                        bytes += e.metadata().map(|m| m.len()).unwrap_or(0);
                    }
                }
            }
            if opts.json {
                println!(
                    "{}",
                    Json::obj([
                        ("dir", Json::Str(dir.display().to_string())),
                        ("files", Json::Int(files as i64)),
                        ("bytes", Json::Int(bytes as i64)),
                        ("cache", stats_json(&store)),
                    ])
                    .render()
                );
            } else {
                println!("{}: {files} entries, {bytes} bytes", dir.display());
            }
            ExitCode::SUCCESS
        }
        "clear" => match store.clear() {
            Ok(n) => {
                if opts.json {
                    println!("{}", Json::obj([("removed", Json::Int(n as i64))]).render());
                } else {
                    println!("removed {n} entries");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("clear: {e}");
                ExitCode::from(2)
            }
        },
        _ => usage(),
    }
}

fn cmd_corpus_export(opts: &Opts) -> ExitCode {
    let Some(dir) = opts.args.first() else {
        return usage();
    };
    match corpusdir::export_builtin(std::path::Path::new(dir)) {
        Ok(files) => {
            println!("wrote {} files to {dir}", files.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("corpus-export: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let Some((cmd, opts)) = parse_opts(std::env::args()) else {
        return usage();
    };
    if opts.progress {
        bdrst_obs::install_progress_sink(Arc::new(StderrProgress), 4096);
    }
    match cmd.as_str() {
        "check" => with_profile(opts.profile.as_ref(), || cmd_check(&opts)),
        "corpus" => with_profile(opts.profile.as_ref(), || cmd_corpus(&opts)),
        "races" => with_profile(opts.profile.as_ref(), || cmd_races(&opts)),
        "serve" => cmd_serve(&opts),
        "metrics" => cmd_metrics(&opts),
        "status" => cmd_status(&opts),
        "cache" => cmd_cache(&opts),
        "corpus-export" => cmd_corpus_export(&opts),
        _ => usage(),
    }
}
