//! A minimal, std-only JSON value for the newline-delimited check
//! protocol and the CLI's `--json` output.
//!
//! No serde in this workspace (the build image is offline), and the
//! protocol needs only a small well-behaved subset: objects keep their
//! insertion order (so responses render deterministically), numbers are
//! `i64` where integral and `f64` otherwise, and parsing is
//! depth-limited so a malicious request line cannot recurse the decoder
//! off the stack. Encoding always produces a single line (no raw
//! newlines — they are escaped), which is what makes one-request-per-line
//! framing sound.

use std::fmt;

/// A JSON value. Object members preserve insertion order.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integral number.
    Int(i64),
    /// A non-integral number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (later duplicates win on lookup is
    /// NOT implemented — first match wins, duplicates are parser-legal).
    Obj(Vec<(String, Json)>),
}

/// Parse failure, with a byte offset into the input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: u32 = 64;

impl Json {
    /// An object from key/value pairs (convenience for response builders).
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup along a path of object keys:
    /// `resp.get_in(&["error", "kind"])` ≡
    /// `resp.get("error").and_then(|e| e.get("kind"))`.
    pub fn get_in(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |v, key| v.get(key))
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON value from the whole input (trailing whitespace
    /// allowed, trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the failing byte offset.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(MAX_DEPTH)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Renders to a single-line JSON string (newlines in payloads are
    /// escaped, so the output never spans lines).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn lit(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth == 0 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.lit("null") => Ok(Json::Null),
            Some(b't') if self.lit("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.lit("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth - 1)?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Ok(Json::Arr(items));
                    }
                    self.expect(b',', "expected `,` or `]`")?;
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':', "expected `:`")?;
                    let v = self.value(depth - 1)?;
                    fields.push((key, v));
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Ok(Json::Obj(fields));
                    }
                    self.expect(b',', "expected `,` or `}`")?;
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    /// Four hex digits at byte offset `at` (does not advance `pos`).
    fn hex4(&self, at: usize) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hi = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            // JSON encodes non-BMP characters as a
                            // surrogate pair of \u escapes; combine a high
                            // surrogate with its following low surrogate.
                            // Unpaired halves (either order) → U+FFFD.
                            let cp = if (0xd800..0xdc00).contains(&hi)
                                && self.bytes.get(self.pos + 1) == Some(&b'\\')
                                && self.bytes.get(self.pos + 2) == Some(&b'u')
                            {
                                let lo = self.hex4(self.pos + 3)?;
                                if (0xdc00..0xe000).contains(&lo) {
                                    self.pos += 6;
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    hi
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is utf-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.eat(b'.') {
            integral = false;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_round_trip() {
        let src =
            r#"{"cmd":"check","id":7,"nested":[1,-2,3.5,true,false,null,"a\nb"],"obj":{"k":"v"}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("check"));
        assert_eq!(v.get("id").and_then(Json::as_i64), Some(7));
        assert_eq!(v.get("nested").unwrap().as_arr().unwrap().len(), 7);
        // render ∘ parse is the identity on the value.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        // rendered output is a single line even with embedded newlines.
        assert!(!v.render().contains('\n'));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote\" backslash\\ newline\n tab\t unicode\u{1f600} ctrl\u{1}";
        let v = Json::Str(s.to_string());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_combine_and_unpaired_halves_degrade() {
        // A proper \uXXXX\uXXXX pair combines into one scalar.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        // Pair in the middle of other content (U+1D465 𝑥).
        assert_eq!(
            Json::parse(r#""a\ud835\udc65b""#).unwrap(),
            Json::Str("a\u{1d465}b".into())
        );
        // Raw (unescaped) non-BMP characters pass straight through.
        assert_eq!(Json::parse("\"😀\"").unwrap(), Json::Str("😀".into()));
        // Unpaired high / low halves become U+FFFD, never a panic.
        assert_eq!(
            Json::parse(r#""\ud83dx""#).unwrap(),
            Json::Str("\u{fffd}x".into())
        );
        assert_eq!(
            Json::parse(r#""\ude00""#).unwrap(),
            Json::Str("\u{fffd}".into())
        );
        // High surrogate followed by a non-surrogate escape: both kept,
        // the high half degraded.
        assert_eq!(
            Json::parse(r#""\ud83dA""#).unwrap(),
            Json::Str("\u{fffd}A".into())
        );
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn errors_are_positions_not_panics() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "01x",
            "{\"a\":1} trailing",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let src = "[".repeat(100) + &"]".repeat(100);
        assert!(matches!(
            Json::parse(&src),
            Err(JsonError {
                message: "nesting too deep",
                ..
            })
        ));
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert!(matches!(Json::parse("1.5").unwrap(), Json::Num(v) if v == 1.5));
        assert!(matches!(Json::parse("1e3").unwrap(), Json::Num(v) if v == 1000.0));
    }
}
