//! The check server: litmus programs over TCP, newline-delimited JSON.
//!
//! # Protocol
//!
//! One request per line, one response line per request, on a plain
//! `std::net::TcpListener` socket. A request is a JSON object with a
//! `cmd` and (usually) a `source`:
//!
//! ```text
//! {"id":1,"cmd":"outcomes","source":"nonatomic a; thread P0 { a = 1; }"}
//! {"id":1,"ok":true,"cached":false,"states":3,"operational":["a=1"],"axiomatic":["a=1"]}
//! ```
//!
//! Commands: `parse`, `outcomes`, `check`, `check-localdrf` (optional
//! `locs` array, default all nonatomics), `check-global`, `check-races`
//! (dynamic detection with space/time-bounded witnesses), `corpus`,
//! `cache-stats`. Requests may lower the exploration budgets with
//! `max_states` / `max_traces` (clamped to the server's own limits);
//! exhaustion surfaces as `{"ok":false,"error":{"kind":"budget",...}}` —
//! the same [`RunError`] classification the CLI exit codes use.
//!
//! The server does not trust its clients: beyond the JSON depth guard,
//! each request line is size-capped ([`ServeConfig::max_request_bytes`],
//! error kind `too-large`, connection closed) and the number of
//! simultaneous connections is bounded
//! ([`ServeConfig::max_conns`], one `overloaded` error line and a clean
//! close for the connection over the limit).
//!
//! # Architecture
//!
//! One accept thread; one reader thread per connection that parses lines
//! and pushes [`Job`]s into a **bounded** queue (backpressure: readers
//! block when `queue_depth` jobs are in flight); `workers` worker threads
//! pop jobs, compute through the shared cache-first [`CheckService`]
//! (whose misses run on the existing engine machinery — the default
//! configuration explores with the work-stealing engine), and write the
//! response line under the connection's write lock — so concurrent
//! requests from one client interleave whole lines, never bytes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use bdrst_core::engine::Strategy;
use bdrst_litmus::{classify_entries, CorpusVerdict, RunConfig, RunError};

use crate::json::Json;
use crate::service::{outcome_strings, CheckService, Checked};
use crate::store::ResultStore;

/// Server knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads popping the job queue (0 = available cores).
    pub workers: usize,
    /// Bound of the job queue; readers block (backpressure) when full.
    pub queue_depth: usize,
    /// Maximum simultaneous client connections. A connection over the
    /// limit receives one `{"ok":false,"error":{"kind":"overloaded"}}`
    /// line and is closed — a clean rejection, never a hang.
    pub max_conns: usize,
    /// Per-request size cap in bytes (on top of the JSON depth guard).
    /// A longer line gets a `kind":"too-large"` error and the
    /// connection is closed: the reader never buffers unbounded input.
    pub max_request_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_depth: 64,
            max_conns: 256,
            max_request_bytes: 1 << 20,
        }
    }
}

/// The default run configuration for served checks: work-stealing
/// exploration (misses ride the engine's worker pool), default budgets.
pub fn default_run_config() -> RunConfig {
    RunConfig {
        strategy: Strategy::WorkStealing,
        ..RunConfig::default()
    }
}

/// One queued request: the raw line and where to write the response.
struct Job {
    line: String,
    out: Arc<Mutex<TcpStream>>,
}

/// A bounded MPMC job queue: `push` blocks while full, `pop` blocks while
/// empty, both wake on close.
struct JobQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    depth: usize,
}

struct QueueInner {
    jobs: std::collections::VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(depth: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: std::collections::VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth: depth.max(1),
        }
    }

    /// Blocks until there is room; returns false when the queue is closed
    /// (job dropped).
    fn push(&self, job: Job) -> bool {
        let mut inner = self.inner.lock().unwrap();
        while inner.jobs.len() >= self.depth && !inner.closed {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.closed {
            return false;
        }
        inner.jobs.push_back(job);
        self.not_empty.notify_one();
        true
    }

    /// Blocks until a job is available; `None` when closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A running check server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<JobQueue>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the queue, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Binds `addr` and serves until [`ServerHandle::shutdown`]. The service
/// (store + run config) is shared across all workers.
///
/// # Errors
///
/// I/O errors binding the listener.
pub fn serve(
    service: Arc<CheckService>,
    addr: &str,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(JobQueue::new(config.queue_depth));

    let worker_count = if config.workers == 0 {
        std::thread::available_parallelism().map_or(2, |n| n.get())
    } else {
        config.workers
    };
    let workers = (0..worker_count)
        .map(|_| {
            let queue = Arc::clone(&queue);
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                while let Some(job) = queue.pop() {
                    let response = handle_line(&service, &job.line);
                    let mut out = job.out.lock().unwrap();
                    let _ = writeln!(out, "{}", response.render());
                    let _ = out.flush();
                }
            })
        })
        .collect();

    let accept = {
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        let conns = Arc::new(AtomicUsize::new(0));
        let max_conns = config.max_conns.max(1);
        let max_request = config.max_request_bytes.max(1);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                // Connection limit: admit-or-reject before spawning
                // anything. The rejected client gets one well-formed
                // error line, so it can distinguish "overloaded" from a
                // network failure and back off.
                if conns.load(Ordering::SeqCst) >= max_conns {
                    let resp = error_response(
                        Json::Null,
                        "overloaded",
                        format!("server at its {max_conns}-connection limit"),
                    );
                    let _ = writeln!(stream, "{}", resp.render());
                    continue;
                }
                let guard = ConnGuard::admit(&conns);
                let queue = Arc::clone(&queue);
                // Reader threads exit with their connection (EOF / error);
                // they are not joined on shutdown — each owns only its
                // client socket (and its slot in the connection count).
                std::thread::spawn(move || {
                    let _guard = guard;
                    let Ok(write_half) = stream.try_clone() else {
                        return;
                    };
                    let out = Arc::new(Mutex::new(write_half));
                    let mut reader = BufReader::new(stream);
                    loop {
                        // Size-capped line read: take() bounds how much a
                        // single request may buffer, so a client cannot
                        // grow the reader's memory without limit.
                        let mut line = Vec::new();
                        let mut limited = Read::take(&mut reader, max_request as u64 + 1);
                        match limited.read_until(b'\n', &mut line) {
                            Ok(0) => break,
                            Err(_) => break,
                            Ok(_) => {}
                        }
                        if !line.ends_with(b"\n") && line.len() > max_request {
                            let resp = error_response(
                                Json::Null,
                                "too-large",
                                format!("request exceeds {max_request} bytes"),
                            );
                            {
                                let mut w = out.lock().unwrap();
                                let _ = writeln!(w, "{}", resp.render());
                                let _ = w.flush();
                            }
                            // Drain whatever else the client already
                            // sent — the rest of the line AND anything
                            // pipelined behind it — bounded in bytes and
                            // time, so the close is a clean FIN: an RST
                            // from unread buffered data could destroy
                            // the error response in flight. The read
                            // timeout bounds how long a silent client
                            // can hold the connection slot.
                            {
                                let w = out.lock().unwrap();
                                let _ =
                                    w.set_read_timeout(Some(std::time::Duration::from_millis(200)));
                            }
                            let mut drained = 0usize;
                            let mut scratch = [0u8; 4096];
                            loop {
                                match reader.read(&mut scratch) {
                                    Ok(0) | Err(_) => break, // EOF or timeout
                                    Ok(n) => {
                                        drained += n;
                                        if drained > 16 * max_request {
                                            break;
                                        }
                                    }
                                }
                            }
                            break;
                        }
                        let Ok(line) = String::from_utf8(line) else {
                            let resp =
                                error_response(Json::Null, "proto", "request is not UTF-8".into());
                            let mut w = out.lock().unwrap();
                            let _ = writeln!(w, "{}", resp.render());
                            let _ = w.flush();
                            continue;
                        };
                        let line = line.trim();
                        if line.is_empty() {
                            continue;
                        }
                        if !queue.push(Job {
                            line: line.to_string(),
                            out: Arc::clone(&out),
                        }) {
                            break;
                        }
                    }
                });
            }
        })
    };

    Ok(ServerHandle {
        addr,
        stop,
        queue,
        accept: Some(accept),
        workers,
    })
}

/// One admitted connection's slot in the live count: incremented at
/// admission, released when the reader thread exits (whatever the path —
/// EOF, error, size-cap close, queue shutdown).
struct ConnGuard(Arc<AtomicUsize>);

impl ConnGuard {
    fn admit(conns: &Arc<AtomicUsize>) -> ConnGuard {
        conns.fetch_add(1, Ordering::SeqCst);
        ConnGuard(Arc::clone(conns))
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn error_response(id: Json, kind: &str, message: String) -> Json {
    Json::obj([
        ("id", id),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("kind", Json::Str(kind.to_string())),
                ("message", Json::Str(message)),
            ]),
        ),
    ])
}

fn run_error_response(id: Json, e: &RunError) -> Json {
    error_response(id, e.kind(), e.to_string())
}

/// Handles one request line; always returns a single JSON response.
pub fn handle_line(service: &CheckService, line: &str) -> Json {
    let req = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return error_response(Json::Null, "proto", e.to_string()),
    };
    let id = req.get("id").cloned().unwrap_or(Json::Null);
    let Some(cmd) = req.get("cmd").and_then(Json::as_str) else {
        return error_response(id, "proto", "missing `cmd`".into());
    };
    match handle_cmd(service, cmd, &req) {
        Ok(mut fields) => {
            let mut all = vec![("id".to_string(), id), ("ok".to_string(), Json::Bool(true))];
            if let Json::Obj(rest) = &mut fields {
                all.append(rest);
            }
            Json::Obj(all)
        }
        Err(HandleError::Run(e)) => run_error_response(id, &e),
        Err(HandleError::Proto(msg)) => error_response(id, "proto", msg),
    }
}

enum HandleError {
    Run(RunError),
    Proto(String),
}

impl From<RunError> for HandleError {
    fn from(e: RunError) -> HandleError {
        HandleError::Run(e)
    }
}

/// Resolves the per-request service: the shared one, or a
/// budget-restricted sibling over the same store when the request lowers
/// `max_states` / `max_traces` (requests can only tighten budgets, never
/// exceed the server's).
fn request_service(service: &CheckService, req: &Json) -> CheckService {
    let base = service.config();
    let states = req.get("max_states").and_then(Json::as_i64);
    let traces = req.get("max_traces").and_then(Json::as_i64);
    if states.is_none() && traces.is_none() {
        return service.fork();
    }
    let mut config = base;
    if let Some(s) = states {
        config.explore.max_states = (s.max(0) as usize).min(base.explore.max_states);
    }
    if let Some(t) = traces {
        config.explore.max_traces = (t.max(0) as usize).min(base.explore.max_traces);
    }
    service.fork_with_config(config)
}

fn checked_for(service: &CheckService, req: &Json) -> Result<Checked, HandleError> {
    let source = req
        .get("source")
        .and_then(Json::as_str)
        .ok_or_else(|| HandleError::Proto("missing `source`".into()))?;
    Ok(service.check_source(source)?)
}

fn handle_cmd(service: &CheckService, cmd: &str, req: &Json) -> Result<Json, HandleError> {
    let service = request_service(service, req);
    match cmd {
        "parse" => {
            let source = req
                .get("source")
                .and_then(Json::as_str)
                .ok_or_else(|| HandleError::Proto("missing `source`".into()))?;
            let program = bdrst_lang::Program::parse(source)
                .map_err(|e| HandleError::Run(RunError::Parse(e.to_string())))?;
            Ok(Json::obj([
                ("canonical", Json::Str(program.to_source())),
                ("threads", Json::Int(program.threads.len() as i64)),
                (
                    "locations",
                    Json::Arr(
                        program
                            .locs
                            .iter()
                            .map(|l| {
                                Json::obj([
                                    ("name", Json::Str(program.locs.name(l).to_string())),
                                    ("kind", Json::Str(program.locs.kind(l).to_string())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]))
        }
        "outcomes" | "check" => {
            let checked = checked_for(&service, req)?;
            let op = outcome_strings(&checked.program, &checked.entry.op);
            let ax = outcome_strings(&checked.program, &checked.entry.ax);
            let mut fields = vec![
                ("cached".to_string(), Json::Bool(checked.cached)),
                (
                    "states".to_string(),
                    Json::Int(checked.entry.visited_states as i64),
                ),
                (
                    "operational".to_string(),
                    Json::Arr(op.into_iter().map(Json::Str).collect()),
                ),
                (
                    "axiomatic".to_string(),
                    Json::Arr(ax.into_iter().map(Json::Str).collect()),
                ),
                (
                    "models_agree".to_string(),
                    Json::Bool(checked.entry.op == checked.entry.ax),
                ),
            ];
            if cmd == "check" {
                // Optional verdicts against a built-in test's checks. An
                // unknown name is a protocol error, not a silent success —
                // clients must not mistake a typo for a pass.
                if let Some(name) = req.get("name").and_then(Json::as_str) {
                    let test = bdrst_litmus::all_tests()
                        .into_iter()
                        .find(|t| t.name == name)
                        .ok_or_else(|| {
                            HandleError::Proto(format!("no built-in test named {name:?}"))
                        })?;
                    let rep = service.report(test, &checked)?;
                    fields.push(("passed".to_string(), Json::Bool(rep.passes())));
                }
            }
            Ok(Json::Obj(fields))
        }
        "check-localdrf" => {
            let checked = checked_for(&service, req)?;
            let locs: Vec<String> = req
                .get("locs")
                .and_then(Json::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|v| v.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default();
            let holds = service.local_drf(&checked, &locs)?;
            Ok(Json::obj([
                ("cached", Json::Bool(checked.cached)),
                ("holds", Json::Bool(holds)),
            ]))
        }
        "check-global" => {
            let checked = checked_for(&service, req)?;
            let had_verdict = checked.entry.global_racefree.get().is_some();
            let racefree = service.global_racefree(&checked)?;
            Ok(Json::obj([
                ("cached", Json::Bool(checked.cached && had_verdict)),
                ("racefree", Json::Bool(racefree)),
            ]))
        }
        "check-races" => {
            let checked = checked_for(&service, req)?;
            // "cached" means the warm path end to end: the entry came
            // from the store *and* already carried its trace recording.
            let had_trace = checked.entry.trace.get().is_some();
            let report = service.check_races(&checked)?;
            Ok(Json::obj([
                ("cached", Json::Bool(checked.cached && had_trace)),
                ("racy", Json::Bool(report.racy())),
                ("events", Json::Int(report.events as i64)),
                (
                    "witnesses",
                    Json::Arr(
                        report
                            .witnesses
                            .iter()
                            .map(|w| witness_json(&checked.program, w))
                            .collect(),
                    ),
                ),
            ]))
        }
        "corpus" => {
            let entries = service.check_corpus();
            Ok(corpus_json(&entries, service.store()))
        }
        "cache-stats" => Ok(Json::obj([("cache", stats_json(service.store()))])),
        other => Err(HandleError::Proto(format!("unknown cmd `{other}`"))),
    }
}

/// One [`bdrst_race::RaceWitness`] as a JSON object — the shape shared
/// by the server's `check-races` response and the CLI's `races --json`
/// output (locations by name, the space/time bounds made explicit, the
/// windowed trace rendered line by line).
pub fn witness_json(program: &bdrst_lang::Program, w: &bdrst_race::RaceWitness) -> Json {
    let name = |l: bdrst_core::loc::Loc| program.locs.name(l).to_string();
    Json::obj([
        ("loc", Json::Str(name(w.loc))),
        (
            "threads",
            Json::Arr(vec![
                Json::Str(w.threads.0.to_string()),
                Json::Str(w.threads.1.to_string()),
            ]),
        ),
        (
            "actions",
            Json::Arr(vec![
                Json::Str(w.actions.0.to_string()),
                Json::Str(w.actions.1.to_string()),
            ]),
        ),
        (
            "window",
            Json::Arr(vec![Json::Int(w.first as i64), Json::Int(w.second as i64)]),
        ),
        ("time_bound", Json::Int(w.time_bound() as i64)),
        (
            "space",
            Json::Arr(
                w.space_bound()
                    .iter()
                    .map(|l| Json::Str(name(*l)))
                    .collect(),
            ),
        ),
        (
            "trace",
            Json::Arr(w.trace.iter().map(|l| Json::Str(l.to_string())).collect()),
        ),
    ])
}

/// The corpus-sweep summary object — `{verdict, tests, cache}` — shared
/// verbatim by the server's `corpus` command and the CLI's `--json`
/// output, so the two surfaces cannot drift.
pub fn corpus_json(
    entries: &[(String, Result<bdrst_litmus::TestReport, RunError>)],
    store: &ResultStore,
) -> Json {
    let verdict = classify_entries(entries);
    let tests = entries
        .iter()
        .map(|(name, r)| {
            Json::obj([
                ("name", Json::Str(name.clone())),
                (
                    "status",
                    Json::Str(match r {
                        Ok(rep) if rep.passes() => "pass".into(),
                        Ok(_) => "mismatch".into(),
                        Err(e) => format!("error:{}", e.kind()),
                    }),
                ),
            ])
        })
        .collect();
    Json::obj([
        (
            "verdict",
            Json::Str(
                match verdict {
                    CorpusVerdict::Pass => "pass",
                    CorpusVerdict::CheckFailed => "check-failed",
                    CorpusVerdict::RunFailed => "run-failed",
                }
                .into(),
            ),
        ),
        ("tests", Json::Arr(tests)),
        ("cache", stats_json(store)),
    ])
}

/// Cache counters as a JSON object (shared with the CLI output).
pub fn stats_json(store: &ResultStore) -> Json {
    let s = store.stats();
    Json::obj([
        ("hits", Json::Int(s.hits as i64)),
        ("misses", Json::Int(s.misses as i64)),
        ("collisions", Json::Int(s.collisions as i64)),
        ("disk_hits", Json::Int(s.disk_hits as i64)),
        ("disk_errors", Json::Int(s.disk_errors as i64)),
        ("insertions", Json::Int(s.insertions as i64)),
        ("entries", Json::Int(s.entries as i64)),
    ])
}
